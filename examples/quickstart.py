#!/usr/bin/env python
"""Quickstart: simulate a small heterogeneous grid in a dozen lines.

This is the shortest end-to-end tour of the public API:

1. generate a synthetic grid (infrastructure + topology) of a few sites;
2. generate a PanDA-like synthetic workload against it;
3. run the simulation with one of the bundled allocation policies;
4. read back the grid-level metrics and print the final dashboard view.

Run it with::

    python examples/quickstart.py
"""
from __future__ import annotations

from repro import (
    ExecutionConfig,
    Simulator,
    SyntheticWorkloadGenerator,
    generate_grid,
)
from repro.analysis.reporting import metrics_table, site_table
from repro.monitoring.dashboard import Dashboard
from repro.workload.generator import WorkloadSpec


def main() -> None:
    # 1. A 6-site grid: heterogeneous core counts and per-core speeds,
    #    star topology around the main server (the CGSim default).
    infrastructure, topology = generate_grid(6, seed=42, topology="star")
    print(f"Grid: {len(infrastructure)} sites, {infrastructure.total_cores} cores total")
    for site in infrastructure.sites:
        print(f"  {site.name:<10} {site.cores:>5} cores @ {site.core_speed / 1e9:.1f} Gop/s")

    # 2. A synthetic PanDA-like workload: 500 jobs, ~40% of them 8-core,
    #    lognormal walltimes with an hours-scale median.
    spec = WorkloadSpec(multicore_fraction=0.4, walltime_median=2 * 3600.0)
    generator = SyntheticWorkloadGenerator(infrastructure, spec=spec, seed=7)
    jobs = generator.generate(500)
    print(f"\nWorkload: {len(jobs)} jobs "
          f"({sum(j.cores > 1 for j in jobs)} multi-core, "
          f"{sum(j.cores == 1 for j in jobs)} single-core)")

    # 3. Run the simulation with the least-loaded allocation policy and
    #    5-minute dashboard snapshots.
    execution = ExecutionConfig(plugin="least_loaded")
    simulator = Simulator(infrastructure, topology, execution)
    result = simulator.run(jobs)

    # 4. Inspect the outcome.
    print(f"\nSimulated {result.metrics.finished_jobs}/{result.metrics.total_jobs} jobs "
          f"in {result.simulated_time / 3600:.1f} simulated hours "
          f"({result.wallclock_seconds:.2f} s of wall-clock time)\n")
    print(metrics_table(result.metrics))
    print()
    print(site_table(result.metrics))
    print()
    print(Dashboard(result.collector).render(result.simulated_time))


if __name__ == "__main__":
    main()
