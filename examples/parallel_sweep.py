#!/usr/bin/env python
"""Parallel sweep: fan a scenario/replication study across worker processes.

The paper's ensemble experiments -- calibration over many sites, the
Figure 4 scaling series, failure-injection studies -- are bags of
*independent* simulations.  The :mod:`repro.experiments` subsystem runs such
bags through a :class:`concurrent.futures.ProcessPoolExecutor`:

1. describe each run with a picklable :class:`~repro.experiments.RunSpec`;
2. expand a cartesian scenario grid (here: policy x failure rate) with seed
   replications via :func:`~repro.experiments.scenario_grid`;
3. execute everything with :class:`~repro.experiments.SweepRunner` -- one
   process per CPU by default, ``--workers 1`` for the sequential reference;
4. aggregate per-scenario means and bootstrap confidence intervals into a
   report table.

Determinism: per-run seeds are *derived* from the sweep's root seed and the
run's identity, so the aggregate numbers are identical for any worker count.

Run it with::

    python examples/parallel_sweep.py [--runs-per-scenario 4] [--workers 0]
"""
from __future__ import annotations

import argparse

from repro.experiments import RunSpec, SweepRunner, scenario_grid


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=6)
    parser.add_argument("--jobs", type=int, default=250, help="jobs per run")
    parser.add_argument("--runs-per-scenario", type=int, default=4,
                        help="independent seed replications per scenario")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes (0 = one per available CPU)")
    parser.add_argument("--seed", type=int, default=11, help="root seed of the sweep")
    args = parser.parse_args()

    # 1.-2. Scenario grid: two allocation policies x two failure regimes,
    #       each replicated with independent derived workload seeds.
    base = RunSpec(sites=args.sites, jobs=args.jobs, seed=args.seed, max_retries=2)
    specs = scenario_grid(
        base,
        replications=args.runs_per_scenario,
        policy=["least_loaded", "round_robin"],
        failure_rate=[0.0, 0.05],
    )

    # 3. Fan out.  SweepRunner(n_workers=1) is the bit-identical sequential
    #    reference; any other worker count yields the same aggregates.
    runner = SweepRunner(n_workers=args.workers or None)
    print(f"Parallel sweep: {len(specs)} runs "
          f"({len(specs) // args.runs_per_scenario} scenarios x "
          f"{args.runs_per_scenario} replications) on {runner.n_workers} worker(s)")
    sweep = runner.run(specs)
    print(f"{len(sweep.ok)}/{len(sweep)} runs succeeded "
          f"in {sweep.wallclock_seconds:.2f} s wall-clock")
    for failed in sweep.failed:
        print(f"  recorded error in {failed.spec.label()}: {failed.error}")

    # 4. Per-scenario aggregate: mean and 95% bootstrap CI over replicates.
    print()
    print(sweep.table(("makespan", "failure_rate", "throughput")))

    # The per-run results remain available for custom analysis.
    if sweep.ok:
        slowest = max(sweep.ok, key=lambda r: r.metric("makespan"))
        print(f"\nSlowest scenario run: {slowest.spec.label()} "
              f"(makespan {slowest.metric('makespan') / 3600:.1f} simulated hours)")


if __name__ == "__main__":
    main()
