#!/usr/bin/env python
"""Event-level dataset generation and a walltime surrogate model.

A key motivation of CGSim is the automatic generation of event-level datasets
"suitable for AI-assisted performance modeling" (paper Sections 1 and 4.3.2):
every run produces a structured record stream that can be exported and used
to train fast surrogate models.

This example:

1. runs a WLCG-like simulation with event monitoring enabled;
2. exports the Table-1-style event dataset and the per-job learning dataset;
3. trains the bundled ridge-regression surrogate to predict job walltime from
   static job/site features;
4. evaluates it on a held-out split (MAE, RMSE, R^2, relative MAE).

Run it with::

    python examples/ml_dataset_surrogate.py [--jobs 1500] [--outdir ml_output]
"""
from __future__ import annotations

import argparse
from pathlib import Path

from repro import ExecutionConfig, Simulator
from repro.atlas import PandaWorkloadModel, wlcg_grid
from repro.config.execution import MonitoringConfig
from repro.mldata import KNNSurrogate, RidgeSurrogate, build_event_dataset, build_job_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1500)
    parser.add_argument("--sites", type=int, default=15)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument(
        "--outdir", type=Path, default=Path("ml_output"),
        help="directory for the exported CSV datasets (default: ./ml_output)",
    )
    args = parser.parse_args()
    args.outdir = args.outdir.resolve()

    # 1. Simulate with full event-level monitoring (Table 1 rows).
    infrastructure, topology = wlcg_grid(site_count=args.sites)
    model = PandaWorkloadModel(infrastructure, seed=args.seed)
    jobs = model.generate_trace(args.jobs)
    execution = ExecutionConfig(
        plugin="panda_dispatcher",
        monitoring=MonitoringConfig(enable_events=True, snapshot_interval=600.0),
    )
    result = Simulator(infrastructure, topology, execution).run(jobs)
    print(f"Simulated {result.metrics.finished_jobs} jobs; "
          f"recorded {len(result.collector.events)} events "
          f"and {len(result.collector.snapshots)} site snapshots")

    # 2. Export the ML-ready datasets.
    args.outdir.mkdir(parents=True, exist_ok=True)
    event_dataset = build_event_dataset(result)
    job_dataset = build_job_dataset(result, infrastructure)
    event_path = event_dataset.to_csv(args.outdir / "events.csv")
    job_path = job_dataset.to_csv(args.outdir / "jobs.csv")
    print(f"Wrote {len(event_dataset)} event rows to {event_path}")
    print(f"Wrote {len(job_dataset)} job rows to {job_path}")

    # 3. Train the surrogate on 75% of the jobs, hold out 25%.
    train, test = job_dataset.train_test_split(test_fraction=0.25, seed=args.seed)
    surrogate = RidgeSurrogate(alpha=1.0, target="walltime", log_target=True).fit(train)

    # 4. Evaluate against the simulator (the surrogate's "ground truth"), and
    #    compare with the non-parametric kNN baseline on the same split.
    evaluation = surrogate.evaluate(test)
    knn_evaluation = KNNSurrogate(k=7).fit(train).evaluate(test)
    print("\nSurrogate quality on the held-out set:")
    print(f"  {'model':<16} {'MAE (h)':>9} {'RMSE (h)':>9} {'R^2':>7} {'relative MAE':>13}")
    for name, ev in [("ridge (log)", evaluation), ("kNN (k=7)", knn_evaluation)]:
        print(f"  {name:<16} {ev.mae / 3600:>9.2f} {ev.rmse / 3600:>9.2f} "
              f"{ev.r2:>7.3f} {ev.relative_mae * 100:>12.1f}%")
    print("\nThe surrogates predict walltimes orders of magnitude faster than the"
          "\nsimulator -- this is the ML-assisted-simulation workflow the dataset"
          "\ngeneration feature exists to enable.")


if __name__ == "__main__":
    main()
