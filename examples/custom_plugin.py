#!/usr/bin/env python
"""Writing a custom allocation-policy plugin.

CGSim's headline feature is that users can test their own workload-allocation
algorithms without touching the simulator core (paper Section 3.3): a plugin
inherits from the abstract base class, implements ``assign_job`` and receives
resource information through the hooks the simulator calls.

This example implements two custom policies:

* ``FastestQueuePolicy`` -- estimates, for every site, when the job would
  start (queue drain time) and finish (drain + execution on that site's
  cores), and picks the site with the earliest estimated completion; and
* ``TierAffinityPolicy`` -- prefers Tier-2 sites for single-core analysis
  jobs and Tier-1/Tier-0 sites for 8-core production jobs, a policy shape
  that actually exists in ATLAS operations.

Both are compared against the bundled baselines on the same workload.

Run it with::

    python examples/custom_plugin.py
"""
from __future__ import annotations

from typing import Optional

from repro import ExecutionConfig, Simulator
from repro.analysis.reporting import format_table
from repro.atlas import PandaWorkloadModel, wlcg_grid
from repro.config.execution import MonitoringConfig
from repro.plugins import AllocationPolicy, ResourceView
from repro.plugins.registry import register_policy
from repro.workload.job import Job


@register_policy("fastest_queue")
class FastestQueuePolicy(AllocationPolicy):
    """Pick the site with the earliest estimated completion time for this job.

    The estimate combines how long the site's current backlog takes to drain
    (backlog core-demand over total cores, scaled by relative speed) with the
    job's own execution time at that site's speed.  This is the kind of
    "minimum expected turnaround" brokerage a production dispatcher
    approximates.
    """

    def __init__(self, reference_speed: float = 10e9, **options) -> None:
        super().__init__(reference_speed=reference_speed, **options)
        self.reference_speed = float(reference_speed)

    def initialize(self, platform_description: dict) -> None:
        zones = platform_description.get("zones", {})
        speeds = [z["mean_core_speed"] for z in zones.values() if z.get("mean_core_speed")]
        if speeds:
            self.reference_speed = float(sum(speeds) / len(speeds))

    def assign_job(self, job: Job, resources: ResourceView) -> Optional[str]:
        eligible = resources.sites_that_fit(job.cores)
        if not eligible:
            return None

        def completion_estimate(site) -> float:
            speed = max(site.core_speed, 1e-9)
            # Drain time of the work already at the site (rough: one core-slot
            # of backlog per queued/running job, at the job's own width).
            backlog_cores = site.backlog * max(1, job.cores)
            drain = backlog_cores / max(site.total_cores, 1)
            # Execution time of this job at this site.
            execution = job.work / (speed * job.cores) if job.work > 0 else 0.0
            return drain * (self.reference_speed / speed) + execution

        return min(eligible, key=lambda s: (completion_estimate(s), s.name)).name


@register_policy("tier_affinity")
class TierAffinityPolicy(AllocationPolicy):
    """Route multi-core production jobs to Tier-0/1, single-core jobs to Tier-2.

    Falls back to the least-loaded eligible site when the preferred tier has
    no site that fits.
    """

    def assign_job(self, job: Job, resources: ResourceView) -> Optional[str]:
        preferred_tiers = {"0", "1"} if job.cores > 1 else {"2"}
        eligible = resources.sites_that_fit(job.cores)
        if not eligible:
            return None
        preferred = [s for s in eligible if s.properties.get("tier") in preferred_tiers]
        pool = preferred or eligible
        return min(pool, key=lambda s: (s.load_fraction, s.backlog, s.name)).name


def main() -> None:
    infrastructure, topology = wlcg_grid(site_count=15)
    model = PandaWorkloadModel(infrastructure, seed=11)
    jobs = model.generate_trace(1500)
    print(f"Grid: {len(infrastructure)} sites; workload: {len(jobs)} jobs\n")

    rows = []
    for policy in ["round_robin", "least_loaded", "panda_dispatcher",
                   "fastest_queue", "tier_affinity"]:
        execution = ExecutionConfig(
            plugin=policy, monitoring=MonitoringConfig(snapshot_interval=0.0)
        )
        result = Simulator(infrastructure, topology, execution).run(
            [job.copy_for_replay() for job in jobs]
        )
        rows.append(
            {
                "policy": policy,
                "makespan_h": result.metrics.makespan / 3600.0,
                "mean_queue_min": result.metrics.mean_queue_time / 60.0,
                "throughput_jobs_per_h": result.metrics.throughput * 3600.0,
            }
        )
    print(format_table(rows))
    print("\nThe two custom policies were registered with @register_policy and used"
          "\nby name through the ExecutionConfig -- no simulator code was modified.")


if __name__ == "__main__":
    main()
