#!/usr/bin/env python
"""Real-time monitoring and the dashboard view (paper Figure 5).

CGSim ships an interactive web dashboard showing node pressure, per-site job
counts and per-job details.  The reproduction renders exactly the same
content from the monitoring collector as a terminal table and as a JSON
document an external viewer could poll.

This example runs a simulation with frequent snapshots, renders the dashboard
at several points of the simulated timeline (by replaying the snapshot
stream), and finally exports the full event-level dataset to SQLite and CSV --
the paper's output layer.

Run it with::

    python examples/dashboard_snapshot.py [--outdir dashboard_output]
"""
from __future__ import annotations

import argparse
import sqlite3
from pathlib import Path

from repro import ExecutionConfig, Simulator
from repro.atlas import PandaWorkloadModel, wlcg_grid
from repro.config.execution import MonitoringConfig, OutputConfig
from repro.monitoring.dashboard import Dashboard


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=8)
    parser.add_argument("--jobs", type=int, default=800)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument(
        "--outdir", type=Path, default=Path("dashboard_output"),
        help="directory for the SQLite/CSV/JSON outputs (default: ./dashboard_output)",
    )
    args = parser.parse_args()
    # Resolve against the cwd once, so every write and every printed path below
    # refers to the same absolute location regardless of how we were launched.
    args.outdir = args.outdir.resolve()
    args.outdir.mkdir(parents=True, exist_ok=True)

    # Run with 10-minute snapshots and both persistent output back-ends.
    infrastructure, topology = wlcg_grid(site_count=args.sites)
    model = PandaWorkloadModel(infrastructure, seed=args.seed)
    jobs = model.generate_trace(args.jobs)
    execution = ExecutionConfig(
        plugin="least_loaded",
        monitoring=MonitoringConfig(enable_events=True, snapshot_interval=600.0),
        output=OutputConfig(
            sqlite_path=str(args.outdir / "simulation.sqlite"),
            csv_directory=str(args.outdir),
        ),
    )
    result = Simulator(infrastructure, topology, execution).run(jobs)

    # The "live" multi-site view at the end of the run.
    dashboard = Dashboard(result.collector)
    print(dashboard.render(result.simulated_time))

    # Per-job detail (the hover-over view of the paper's Figure 5).
    print("\nMost recent job-level events at the busiest site:")
    busiest = max(dashboard.site_rows(), key=lambda r: r["finished_jobs"])["site"]
    for detail in dashboard.job_details(site=busiest, limit=8):
        print(f"  event {detail['event_id']:>6}  t={detail['time']:>10.0f}s  "
              f"job {detail['job_id']:>6}  {detail['state']:<10} "
              f"cores={detail['cores']:.0f}")

    # JSON export for an external viewer.
    json_path = args.outdir / "dashboard.json"
    json_path.write_text(dashboard.to_json(result.simulated_time), encoding="utf-8")
    print(f"\nWrote dashboard JSON to {json_path}")

    # The SQLite store written by the output layer (Table 1 schema).
    db_path = args.outdir / "simulation.sqlite"
    with sqlite3.connect(db_path) as connection:
        events = connection.execute("SELECT COUNT(*) FROM events").fetchone()[0]
        snapshots = connection.execute("SELECT COUNT(*) FROM snapshots").fetchone()[0]
        sample = connection.execute(
            "SELECT event_id, job_id, state, site, available_cores, pending_jobs, "
            "assigned_jobs, finished_jobs FROM events WHERE state = 'finished' LIMIT 4"
        ).fetchall()
    print(f"SQLite store: {events} events, {snapshots} snapshots ({db_path})")
    print("\nSample event-level rows (the paper's Table 1):")
    print(f"{'Event':>6} {'Job':>7} {'State':<10} {'Site':<14} {'Avail.':>7} "
          f"{'Pending':>8} {'Assigned':>9} {'Finished':>9}")
    for row in sample:
        print(f"{row[0]:>6} {row[1]:>7} {row[2]:<10} {row[3]:<14} {row[4]:>7} "
              f"{row[5]:>8} {row[6]:>9} {row[7]:>9}")


if __name__ == "__main__":
    main()
