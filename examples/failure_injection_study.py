#!/usr/bin/env python
"""Failure injection: job failures, site outages and PanDA-style retries.

Job failure rate is one of the operational metrics the paper lists as a
primary output of grid monitoring (Section 1).  This example studies it in
simulation:

1. a baseline run on a WLCG-like grid with no faults;
2. the same workload with an injected per-site job failure probability
   (worker-node losses, storage hiccups) -- failure rate and wasted
   core-hours appear in the metrics;
3. the same faults but with automatic resubmission enabled
   (``max_retries``), showing how retries trade extra attempts for a lower
   effective loss rate;
4. a scheduled outage of the largest site, showing how queued work drains
   around a maintenance window.

Run it with::

    python examples/failure_injection_study.py
"""
from __future__ import annotations

import argparse

from repro import (
    ExecutionConfig,
    JobFailureModel,
    OutageWindow,
    Simulator,
)
from repro.analysis.reporting import format_table
from repro.atlas import PandaWorkloadModel, wlcg_grid
from repro.config.execution import MonitoringConfig
from repro.workload.job import JobState


def run_case(label, infrastructure, topology, jobs, *, failure_model=None,
             outages=None, max_retries=0) -> dict:
    """Run one configuration and summarise the reliability metrics."""
    execution = ExecutionConfig(
        plugin="panda_dispatcher",
        max_retries=max_retries,
        monitoring=MonitoringConfig(snapshot_interval=0.0),
    )
    simulator = Simulator(
        infrastructure,
        topology,
        execution,
        failure_model=failure_model,
        outages=outages or [],
    )
    result = simulator.run([job.copy_for_replay() for job in jobs])
    metrics = result.metrics

    # "Lost" jobs are original jobs that never produced a successful attempt.
    succeeded_originals = {
        int(j.attributes.get("retry_of", j.job_id))
        for j in result.jobs
        if j.state is JobState.FINISHED
    }
    original_ids = {int(j.job_id) for j in jobs}
    lost = len(original_ids - succeeded_originals)
    wasted_core_hours = sum(
        (j.walltime or 0.0) * j.cores for j in result.jobs if j.state is JobState.FAILED
    ) / 3600.0

    return {
        "case": label,
        "attempts": len(result.jobs),
        "failed_attempts": metrics.failed_jobs,
        "attempt_failure_rate": metrics.failure_rate,
        "lost_jobs": lost,
        "wasted_core_hours": wasted_core_hours,
        "makespan_h": metrics.makespan / 3600.0,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=10)
    parser.add_argument("--jobs", type=int, default=800)
    parser.add_argument("--seed", type=int, default=21)
    parser.add_argument("--failure-rate", type=float, default=0.15,
                        help="per-attempt failure probability at every site")
    args = parser.parse_args()

    infrastructure, topology = wlcg_grid(site_count=args.sites)
    model = PandaWorkloadModel(infrastructure, seed=args.seed)
    jobs = model.generate_trace(args.jobs)
    largest = max(infrastructure.sites, key=lambda s: s.cores)
    print(f"Grid: {len(infrastructure)} sites; workload: {len(jobs)} jobs; "
          f"largest site: {largest.name} ({largest.cores} cores)\n")

    faults = JobFailureModel(default_rate=args.failure_rate, seed=args.seed)
    maintenance = [OutageWindow(site=largest.name, start=4 * 3600.0, end=12 * 3600.0)]

    rows = [
        run_case("baseline", infrastructure, topology, jobs),
        run_case("failures", infrastructure, topology, jobs, failure_model=faults),
        run_case("failures + 3 retries", infrastructure, topology, jobs,
                 failure_model=JobFailureModel(default_rate=args.failure_rate, seed=args.seed),
                 max_retries=3),
        run_case(f"8h outage of {largest.name}", infrastructure, topology, jobs,
                 outages=maintenance),
    ]
    print(format_table(rows))

    with_faults = rows[1]
    with_retries = rows[2]
    print(f"\nWithout retries, {with_faults['lost_jobs']} jobs were lost outright; "
          f"with 3 automatic resubmissions only {with_retries['lost_jobs']} were, "
          f"at the cost of {with_retries['attempts'] - len(jobs)} extra attempts and "
          f"{with_retries['wasted_core_hours']:.0f} wasted core-hours.")


if __name__ == "__main__":
    main()
