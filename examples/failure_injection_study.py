#!/usr/bin/env python
"""Failure injection: job failures and PanDA-style retries.

Job failure rate is one of the operational metrics the paper lists as a
primary output of grid monitoring (Section 1).  The study itself lives in the
bundled ``fault-campaign`` scenario pack, which crosses an injected per-site
job-failure probability with PanDA-style automatic resubmission; this script
is a thin wrapper that runs the pack and narrates the resulting table:

* ``repro scenario show fault-campaign`` prints the study's definition;
* ``repro scenario run fault-campaign`` runs it from the command line;
* the ``lost_jobs`` / ``wasted_core_hours`` extras count original jobs that
  never produced a successful attempt and the core-hours burned by failed
  attempts -- the price retries pay for a lower effective loss rate.

Run it with::

    python examples/failure_injection_study.py
"""
from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table
from repro.scenarios import get_scenario_pack, run_scenario_pack


def case_label(rate: float, retries: int) -> str:
    """Human-readable name of one (failure rate, retry budget) combination."""
    base = "baseline" if rate == 0.0 else "failures"
    return base if retries == 0 else f"{base} + {retries} retries"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=10)
    parser.add_argument("--jobs", type=int, default=800)
    parser.add_argument("--seed", type=int, default=21)
    parser.add_argument("--failure-rate", type=float, default=0.15,
                        help="per-attempt failure probability at every site")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (0 = one per CPU)")
    args = parser.parse_args()

    pack = get_scenario_pack("fault-campaign")
    print(f"Scenario pack: {pack.name} -- {pack.title}")
    print(f"Grid: {args.sites} WLCG-like sites; workload: {args.jobs} jobs; "
          f"injected failure rate {args.failure_rate}\n")

    outcome = run_scenario_pack(
        pack,
        workers=args.workers,
        overrides={
            "grid.sites": args.sites,
            "workload.jobs": args.jobs,
            "workload.seed": args.seed,
            "faults.job_failures.seed": args.seed,
            "sweep.axes": {
                "faults.job_failures.default_rate": [0.0, args.failure_rate],
                "execution.max_retries": [0, 3],
            },
        },
    )

    rows = []
    by_label = {}
    for result in outcome.sweep.ok:
        axes = result.spec.params["overrides"]
        rate = axes["faults.job_failures.default_rate"]
        retries = axes["execution.max_retries"]
        metrics = result.metrics
        row = {
            "case": case_label(rate, retries),
            "attempts": int(metrics["attempts"]),
            "failed_attempts": metrics["failed_jobs"],
            "attempt_failure_rate": metrics["failure_rate"],
            "lost_jobs": int(metrics["lost_jobs"]),
            "wasted_core_hours": metrics["wasted_core_hours"],
            "makespan_h": metrics["makespan"] / 3600.0,
        }
        rows.append(row)
        by_label[row["case"]] = row
    print(format_table(rows))

    # With --failure-rate 0 every case degenerates to the baseline and there
    # is no retry trade-off to narrate.
    with_faults = by_label.get("failures")
    with_retries = by_label.get("failures + 3 retries")
    if with_faults is None or with_retries is None:
        print("\nNo failures were injected (rate 0), so automatic resubmissions "
              "had nothing to recover.")
        return
    print(f"\nWithout retries, {with_faults['lost_jobs']} jobs were lost outright; "
          f"with 3 automatic resubmissions only {with_retries['lost_jobs']} were, "
          f"at the cost of {with_retries['attempts'] - args.jobs} extra attempts and "
          f"{with_retries['wasted_core_hours']:.0f} wasted core-hours.")


if __name__ == "__main__":
    main()
