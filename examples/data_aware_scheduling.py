#!/usr/bin/env python
"""Data-aware scheduling with a Rucio-like replica catalogue.

The ATLAS ecosystem pairs PanDA (workload management) with Rucio (data
management): where data lives constrains where jobs should run.  CGSim's
plugin mechanism covers data-movement policies as well as scheduling ones;
this example exercises that path:

1. builds a WLCG-like grid and registers dataset replicas across it with a
   Rucio-like catalogue (2 copies of each dataset);
2. attaches datasets to jobs and enables simulated data transfers, so every
   job stages its input over the network before running;
3. compares a data-aware allocation policy (run where the data already is)
   against a data-blind one (least-loaded), measuring both the volume of data
   moved across the WAN and the overall makespan.

Run it with::

    python examples/data_aware_scheduling.py
"""
from __future__ import annotations

import argparse

from repro import ExecutionConfig, Simulator
from repro.analysis.reporting import format_table
from repro.atlas import PandaWorkloadModel, RucioCatalog, wlcg_grid
from repro.config.execution import MonitoringConfig


def run_policy(policy: str, infrastructure, topology, jobs, datasets, seed: int) -> dict:
    """Run one policy with data transfers enabled and return its headline numbers."""
    execution = ExecutionConfig(
        plugin=policy, monitoring=MonitoringConfig(snapshot_interval=0.0)
    )

    def place_replicas(simulator: Simulator) -> None:
        # Called by the simulator once the platform and data manager exist,
        # before any job is dispatched: the Rucio-like catalogue spreads two
        # copies of every dataset over the grid (deterministic for the seed).
        catalog = RucioCatalog(simulator.data_manager, seed=seed)
        catalog.place_datasets(datasets, infrastructure.site_names, replication_factor=2)

    simulator = Simulator(
        infrastructure,
        topology,
        execution,
        enable_data_transfers=True,
        setup_hook=place_replicas,
    )
    result = simulator.run([job.copy_for_replay() for job in jobs])

    transfers = simulator.data_manager.transfer_log
    wan_bytes = sum(t["size"] for t in transfers if t["source"] != t["destination"])
    return {
        "policy": policy,
        "makespan_h": result.metrics.makespan / 3600.0,
        "mean_queue_min": result.metrics.mean_queue_time / 60.0,
        "wan_transfers": len(transfers),
        "wan_terabytes": wan_bytes / 1e12,
        "finished": result.metrics.finished_jobs,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=10)
    parser.add_argument("--jobs", type=int, default=600)
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args()

    infrastructure, topology = wlcg_grid(site_count=args.sites)
    model = PandaWorkloadModel(infrastructure, seed=args.seed)
    jobs = model.generate_trace(args.jobs)

    # 20 shared 50 GB datasets; every job reads one of them (round-robin), so
    # placement decisions have real consequences for WAN traffic.
    datasets = {f"dataset_{i:03d}": 50e9 for i in range(20)}
    for index, job in enumerate(jobs):
        job.attributes["dataset"] = f"dataset_{index % len(datasets):03d}"

    print(f"Grid: {len(infrastructure)} sites; workload: {len(jobs)} jobs, "
          f"each reading one of {len(datasets)} shared 50 GB datasets\n")

    rows = [
        run_policy("least_loaded", infrastructure, topology, jobs, datasets, args.seed),
        run_policy("data_aware", infrastructure, topology, jobs, datasets, args.seed),
    ]
    print(format_table(rows))

    blind, aware = rows
    if aware["wan_terabytes"] < blind["wan_terabytes"]:
        saved = (1 - aware["wan_terabytes"] / max(blind["wan_terabytes"], 1e-9)) * 100
        print(f"\nThe data-aware policy moved {saved:.0f}% less data across the WAN.")
    print("\nBoth policies ran through the identical plugin interface; the data-aware"
          "\none simply reads the replica locations the resource view exposes.")


if __name__ == "__main__":
    main()
