#!/usr/bin/env python
"""ATLAS/WLCG case study: compare scheduling policies on a WLCG-like grid.

The paper's motivating use case is evaluating new workflow-scheduling and
data-movement policies on the WLCG without touching production.  This example
does exactly that on the built-in WLCG catalogue:

* builds a tiered ATLAS-like grid (Tier-0 / Tier-1 / Tier-2 hierarchy);
* generates a PanDA-like production workload (tasks of similar jobs);
* replays the same workload under several allocation policies;
* reports makespan, mean queue time, throughput and utilisation per policy,
  i.e. the operational metrics the paper lists (Section 1).

Run it with::

    python examples/wlcg_case_study.py [--sites 20] [--jobs 2000]
"""
from __future__ import annotations

import argparse

from repro import ExecutionConfig, Simulator
from repro.analysis.reporting import format_table
from repro.atlas import PandaWorkloadModel, wlcg_grid
from repro.config.execution import MonitoringConfig

POLICIES = [
    "round_robin",
    "random",
    "least_loaded",
    "weighted_capacity",
    "panda_dispatcher",
    "backfill",
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=20)
    parser.add_argument("--jobs", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    # 1. A tiered WLCG-like grid from the built-in catalogue.
    infrastructure, topology = wlcg_grid(site_count=args.sites)
    tiers = {}
    for site in infrastructure.sites:
        tiers[site.properties.get("tier", "?")] = tiers.get(site.properties.get("tier", "?"), 0) + 1
    print(f"WLCG subset: {len(infrastructure)} sites "
          f"({', '.join(f'Tier-{t}: {n}' for t, n in sorted(tiers.items()))}), "
          f"{infrastructure.total_cores} cores")

    # 2. One PanDA-like production workload, reused for every policy so the
    #    comparison is apples-to-apples.
    model = PandaWorkloadModel(infrastructure, seed=args.seed)
    jobs = model.generate_trace(args.jobs)
    print(f"Workload: {len(jobs)} jobs in {len({j.task_id for j in jobs})} tasks\n")

    # 3. Replay under each policy.
    rows = []
    for policy in POLICIES:
        execution = ExecutionConfig(
            plugin=policy,
            monitoring=MonitoringConfig(snapshot_interval=0.0),
        )
        simulator = Simulator(infrastructure, topology, execution)
        result = simulator.run([job.copy_for_replay() for job in jobs])
        metrics = result.metrics
        rows.append(
            {
                "policy": policy,
                "makespan_h": metrics.makespan / 3600.0,
                "mean_queue_min": metrics.mean_queue_time / 60.0,
                "mean_walltime_h": metrics.mean_walltime / 3600.0,
                "throughput_jobs_per_h": metrics.throughput * 3600.0,
                "failure_rate": metrics.failure_rate,
                "sim_wallclock_s": result.wallclock_seconds,
            }
        )
        print(f"  {policy:<20} makespan {metrics.makespan / 3600.0:7.1f} h   "
              f"mean queue {metrics.mean_queue_time / 60.0:7.1f} min")

    # 4. The what-if table a grid operator would look at.
    print()
    print(format_table(rows))
    best = min(rows, key=lambda r: r["makespan_h"])
    print(f"\nShortest makespan: {best['policy']} ({best['makespan_h']:.1f} h)")


if __name__ == "__main__":
    main()
