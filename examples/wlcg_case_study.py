#!/usr/bin/env python
"""ATLAS/WLCG case study: compare scheduling policies on a WLCG-like grid.

The paper's motivating use case is evaluating new workflow-scheduling and
data-movement policies on the WLCG without touching production.  This used to
be ~60 lines of glue code; it is now a thin wrapper over the bundled
``wlcg-baseline`` scenario pack -- the whole study (tiered ATLAS-like grid,
PanDA-like production workload, one run per allocation policy) is data, not
code:

* ``repro scenario show wlcg-baseline`` prints the study's definition;
* ``repro scenario run wlcg-baseline`` runs it from the command line;
* this script does the same through the Python API, then formats the what-if
  table a grid operator would look at.

Run it with::

    python examples/wlcg_case_study.py [--sites 20] [--jobs 2000]
"""
from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table
from repro.scenarios import get_scenario_pack, run_scenario_pack


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=20)
    parser.add_argument("--jobs", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (0 = one per CPU)")
    args = parser.parse_args()

    # The whole study lives in the pack; the CLI knobs become overrides.
    pack = get_scenario_pack("wlcg-baseline")
    policies = pack.sweep.axes["execution.plugin"]
    print(f"Scenario pack: {pack.name} -- {pack.title}")
    print(f"WLCG subset: {args.sites} sites, {args.jobs} jobs, "
          f"{len(policies)} policies\n")

    outcome = run_scenario_pack(
        pack,
        workers=args.workers,
        overrides={
            "grid.sites": args.sites,
            "workload.jobs": args.jobs,
            "workload.seed": args.seed,
        },
    )

    # One run per policy (replications=1): rebuild the per-policy what-if table.
    rows = []
    for result in outcome.sweep.ok:
        policy = result.spec.scenario.split("=", 1)[1]
        metrics = result.metrics
        rows.append(
            {
                "policy": policy,
                "makespan_h": metrics["makespan"] / 3600.0,
                "mean_queue_min": metrics["mean_queue_time"] / 60.0,
                "mean_walltime_h": metrics["mean_walltime"] / 3600.0,
                "throughput_jobs_per_h": metrics["throughput"] * 3600.0,
                "failure_rate": metrics["failure_rate"],
                "sim_wallclock_s": result.wallclock_seconds,
            }
        )
        print(f"  {policy:<20} makespan {rows[-1]['makespan_h']:7.1f} h   "
              f"mean queue {rows[-1]['mean_queue_min']:7.1f} min")

    print()
    print(format_table(rows))
    best = min(rows, key=lambda r: r["makespan_h"])
    print(f"\nShortest makespan: {best['policy']} ({best['makespan_h']:.1f} h)")


if __name__ == "__main__":
    main()
