#!/usr/bin/env python
"""Open workload through the stepped session lifecycle.

A closed ``Simulator.run()`` needs the whole workload up front.  Real grids
do not work that way: jobs keep arriving while the grid runs, operators
watch live dashboards, and studies are cut off once they have answered
their question.  This example drives all of that through
:class:`repro.core.session.SimulationSession`:

1. open a session with the morning batch and advance the clock one hour;
2. inspect live progress and the mid-run dashboard (nothing finalised);
3. submit a second wave of jobs *while the grid is busy*;
4. early-stop once 95% of all attempts have completed;
5. finalize: metrics computed, outputs flushed, exactly once.

Run it with::

    python examples/open_workload_session.py [--jobs 400] [--sites 5]
"""
from __future__ import annotations

import argparse

from repro import (
    ExecutionConfig,
    MonitoringConfig,
    Simulator,
    SyntheticWorkloadGenerator,
    generate_grid,
)
from repro.analysis.reporting import metrics_table
from repro.monitoring.dashboard import Dashboard


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=400,
                        help="size of the first wave (the second is half)")
    parser.add_argument("--sites", type=int, default=5)
    args = parser.parse_args()

    infrastructure, topology = generate_grid(args.sites, seed=11)
    generator = SyntheticWorkloadGenerator(infrastructure, seed=3)
    first_wave = generator.generate(args.jobs)
    second_wave = generator.generate(args.jobs // 2)

    execution = ExecutionConfig(
        plugin="least_loaded", monitoring=MonitoringConfig(snapshot_interval=600.0)
    )
    simulator = Simulator(infrastructure, topology, execution)

    # 1. Open the session with the morning batch and run the first hour.
    session = simulator.session(first_wave)
    session.add_stop_condition(
        lambda s: s.progress().fraction_complete >= 0.95,
        reason="95% of attempts complete",
    )
    session.advance_until(3600.0)

    # 2. Live inspection: counters, metrics and the mid-run dashboard --
    #    the simulation is merely paused, nothing has been finalised.
    print("After one simulated hour:")
    print(f"  {session.progress().describe()}")
    print(f"  live mean queue time: {session.peek_metrics().mean_queue_time:.0f} s")
    print()
    print(Dashboard.live_summary(session))

    # 3. A second wave arrives while the grid is busy.
    session.submit(second_wave)
    total = len(first_wave) + len(second_wave)
    print(f"\nSubmitted a second wave at t=3600s -> {total} jobs expected")

    # 4./5. Run on; the 95%-completion predicate ends the run early.
    result = session.advance_to_completion().finalize()
    print(f"\nStopped early: {result.stopped_reason}")
    print(f"Completed {result.metrics.finished_jobs}/{result.metrics.total_jobs} "
          f"jobs by t={result.simulated_time:.0f}s\n")
    print(metrics_table(result.metrics))


if __name__ == "__main__":
    main()
