#!/usr/bin/env python
"""Calibration workflow: reproduce the paper's Figure 3 methodology end to end.

The paper calibrates CGSim against six months of production ATLAS PanDA job
records: each WLCG site's per-core processing speed is tuned so that simulated
job walltimes match the recorded ones, and the error is reported as the
geometric mean (across sites) of the relative mean absolute error, separately
for single-core and multi-core jobs.

Production records are not public, so this example generates a synthetic
"historical" trace in which every site has a *hidden* true speed that differs
from its nominal configuration -- exactly the configuration-parameter
misalignment the calibration has to recover.

Run it with::

    python examples/calibration_workflow.py [--sites 10] [--jobs-per-site 120]
"""
from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table
from repro.atlas import PandaWorkloadModel, build_wlcg_infrastructure
from repro.calibration import GridCalibrator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=10, help="WLCG catalogue sites to use")
    parser.add_argument("--jobs-per-site", type=int, default=120)
    parser.add_argument("--optimizer", default="random",
                        choices=["random", "bayesian", "cmaes", "brute_force"])
    parser.add_argument("--budget", type=int, default=40,
                        help="candidate evaluations per site")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    # 1. The grid under study: the first N sites of the built-in WLCG catalogue
    #    with their *nominal* (HEPScore-derived) per-core speeds.
    infrastructure = build_wlcg_infrastructure(site_count=args.sites)
    print(f"Calibrating {len(infrastructure)} WLCG sites, "
          f"{args.jobs_per_site} historical jobs per site\n")

    # 2. The "historical" PanDA trace.  The workload model assigns every site a
    #    hidden true speed; recorded walltimes reflect that true speed, so a
    #    simulator configured with nominal speeds starts with a large error.
    model = PandaWorkloadModel(infrastructure, seed=args.seed)
    jobs = []
    for site in infrastructure.site_names:
        jobs.extend(model.generate_site_trace(site, args.jobs_per_site))
    print(f"Generated {len(jobs)} ground-truth job records")

    # 3. Per-site calibration of the core speed (the paper's dominant
    #    parameter) with the chosen black-box optimizer.
    calibrator = GridCalibrator(
        infrastructure,
        jobs,
        optimizer=args.optimizer,
        budget=args.budget,
        seed=args.seed,
    )
    report = calibrator.calibrate()

    # 4. The Figure-3 view: per-site relative MAE before/after calibration plus
    #    the geometric means the paper quotes (76% -> 17% on real data).
    rows = []
    for site_result in report.sites:
        rows.append(
            {
                "site": site_result.site,
                "single-core before": site_result.error_before["single_core"],
                "single-core after": site_result.error_after["single_core"],
                "multi-core before": site_result.error_before["multi_core"],
                "multi-core after": site_result.error_after["multi_core"],
                "speed ratio": site_result.calibrated_speed / site_result.nominal_speed,
            }
        )
    print()
    print(format_table(rows))

    summary = report.summary()
    print()
    print("Geometric-mean relative MAE across sites:")
    print(f"  before calibration : {summary['geomean_before_overall'] * 100:6.1f}%")
    print(f"  after calibration  : {summary['geomean_after_overall'] * 100:6.1f}%")

    # 5. Sanity check against the hidden truth: the calibrated speeds should
    #    land close to the true per-site speeds the workload model used.
    truth = model.true_speeds()
    recovered = report.calibrated_speeds()
    ratios = [recovered[s] / truth[s] for s in recovered]
    mean_ratio = sum(ratios) / len(ratios)
    print(f"\nMean calibrated/true speed ratio: {mean_ratio:.3f} "
          "(1.0 means the hidden truth was recovered exactly)")


if __name__ == "__main__":
    main()
