"""Section 4.2: comparison of the four calibration optimizers.

The paper evaluates four calibration approaches -- brute-force search, random
sampling, Bayesian optimisation (BO) and CMA-ES -- under a per-site
evaluation budget, and reports that random search achieves the lowest average
error across 50 computing sites ("likely due to the parameter optimization
landscape"), while brute force is theoretically optimal but computationally
infeasible at 150 sites.

The reproduction runs the identical per-site calibration with each optimizer
under the same budget and records the geometric-mean relative MAE each one
reaches, plus the wall-clock cost.  Asserted shape: every optimizer improves
on the uncalibrated error, and random search is competitive with (within a
small margin of) the best method, as in the paper.
"""

from __future__ import annotations

import time

import pytest

from repro.atlas import PandaWorkloadModel, build_wlcg_infrastructure
from repro.calibration import GridCalibrator

OPTIMIZERS = ["brute_force", "random", "bayesian", "cmaes"]
SITE_COUNT = 20
JOBS_PER_SITE = 60
BUDGET = 25


def _trace(infrastructure, seed: int = 4):
    model = PandaWorkloadModel(infrastructure, seed=seed)
    jobs = []
    for site in infrastructure.site_names:
        jobs.extend(model.generate_site_trace(site, JOBS_PER_SITE))
    return jobs


def _run_optimizer(name: str, infrastructure, jobs, seed: int = 4):
    calibrator = GridCalibrator(
        infrastructure, jobs, optimizer=name, budget=BUDGET, mode="analytic", seed=seed
    )
    started = time.perf_counter()
    report = calibrator.calibrate()
    elapsed = time.perf_counter() - started
    summary = report.summary()
    return {
        "optimizer": name,
        "geomean_before": summary["geomean_before_overall"],
        "geomean_after": summary["geomean_after_overall"],
        "wallclock_seconds": elapsed,
    }


@pytest.mark.benchmark(group="optimizer-comparison")
def test_all_optimizers_improve_and_random_is_competitive(benchmark, record_result):
    """Every optimizer beats the uncalibrated error; random search is competitive."""
    infrastructure = build_wlcg_infrastructure(site_count=SITE_COUNT)
    jobs = _trace(infrastructure)

    rows = benchmark.pedantic(
        lambda: [_run_optimizer(name, infrastructure, jobs) for name in OPTIMIZERS],
        rounds=1,
        iterations=1,
    )
    record_result(
        "optimizer_comparison",
        {
            "budget_per_site": BUDGET,
            "sites": SITE_COUNT,
            "rows": rows,
            "paper": "random search achieves the lowest average error across 50 sites "
                     "within the evaluation budget",
        },
    )

    for row in rows:
        assert row["geomean_after"] < row["geomean_before"], (
            f"{row['optimizer']} failed to improve on the uncalibrated error"
        )

    by_name = {row["optimizer"]: row for row in rows}
    best_error = min(row["geomean_after"] for row in rows)
    random_error = by_name["random"]["geomean_after"]
    # The paper's observation: under a tight budget random search is at least
    # competitive with the more sophisticated optimizers.  Allow a modest
    # relative margin so the assertion checks the shape, not the noise.
    assert random_error <= best_error * 1.5 + 1e-9, (
        f"random search should be competitive: random={random_error:.3f}, best={best_error:.3f}"
    )


@pytest.mark.benchmark(group="optimizer-comparison")
@pytest.mark.parametrize("name", OPTIMIZERS)
def test_benchmark_optimizer(benchmark, name):
    """pytest-benchmark timing of one full grid calibration per optimizer."""
    infrastructure = build_wlcg_infrastructure(site_count=SITE_COUNT)
    jobs = _trace(infrastructure)
    result = benchmark.pedantic(
        _run_optimizer, args=(name, infrastructure, jobs), rounds=1, iterations=1
    )
    assert result["geomean_after"] <= result["geomean_before"]
