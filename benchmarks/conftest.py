"""Shared fixtures and helpers for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper (or one
ablation DESIGN.md calls out).  Beyond the pytest-benchmark timings, each
module records the *rows/series the paper reports* (relative errors, scaling
series, speed-up factors) through the :func:`record_result` fixture; the
records land in ``benchmarks/results/*.json`` so EXPERIMENTS.md can quote
them verbatim.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

import pytest

#: Directory the per-experiment result files are written to.
RESULTS_DIR = Path(__file__).parent / "results"

# Benchmark sizing (CGSIM_BENCH_SCALE) lives in repro.experiments.bench:
# bench modules must import it from there, not from this conftest -- two
# top-level modules named "conftest" (tests/ and benchmarks/) collide in
# sys.modules when pytest collects both trees in one run.


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting the machine-readable experiment outputs."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir: Path):
    """Write one experiment's rows/series to ``benchmarks/results/<name>.json``.

    Usage::

        def test_fig4a(record_result):
            series = run_sweep()
            record_result("fig4a_job_scaling", {"series": series})
    """

    def _record(name: str, payload: Dict) -> Path:
        path = results_dir / f"{name}.json"
        with path.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    return _record


def format_series(header: List[str], rows: List[List]) -> str:
    """Small fixed-width formatter used by benches when printing their series."""
    widths = [
        max(len(str(header[i])), *(len(f"{row[i]:.4g}" if isinstance(row[i], float) else str(row[i]))
                                   for row in rows))
        for i in range(len(header))
    ]
    lines = ["  ".join(str(header[i]).ljust(widths[i]) for i in range(len(header)))]
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in rows:
        cells = [
            (f"{cell:.4g}" if isinstance(cell, float) else str(cell)).ljust(widths[i])
            for i, cell in enumerate(row)
        ]
        lines.append("  ".join(cells))
    return "\n".join(lines)
