"""Table 1: event-level monitoring data captured during a simulation.

The paper's Table 1 shows a representative sample of the event-level records
CGSim captures at every timestep: Event ID, Job ID, State, Site, Available
Cores, Pending Jobs, Assigned Jobs and Finished Jobs.  The same rows feed the
real-time dashboard and the ML dataset generation.

The reproduction runs a WLCG-like simulation with monitoring enabled, checks
that the recorded events carry exactly the Table 1 columns with consistent
dynamics (cumulative finished counts are monotone, available cores never
exceed the site's capacity, every job reaches a terminal state exactly once),
and writes a representative sample to ``benchmarks/results/table1_events.json``.
The pytest-benchmark measures the monitoring overhead: the same simulation
with and without event collection.
"""

from __future__ import annotations

import pytest

from repro import ExecutionConfig, Simulator
from repro.atlas import PandaWorkloadModel, wlcg_grid
from repro.config.execution import MonitoringConfig

#: Workload used for the monitoring-content checks.
JOB_COUNT = 600
SITE_COUNT = 8


def _run(enable_events: bool, seed: int = 2):
    infrastructure, topology = wlcg_grid(site_count=SITE_COUNT)
    model = PandaWorkloadModel(infrastructure, seed=seed)
    jobs = model.generate_trace(JOB_COUNT)
    execution = ExecutionConfig(
        plugin="panda_dispatcher",
        monitoring=MonitoringConfig(enable_events=enable_events, snapshot_interval=0.0),
    )
    simulator = Simulator(infrastructure, topology, execution)
    return infrastructure, simulator.run(jobs)


@pytest.mark.benchmark(group="table1-event-dataset")
def test_event_records_match_table1_schema(benchmark, record_result):
    """Every recorded event carries the Table 1 columns with sane dynamics."""
    infrastructure, result = benchmark.pedantic(_run, args=(True,), rounds=1, iterations=1)
    events = result.collector.events
    assert events, "monitoring produced no events"

    capacity = {site.name: site.cores for site in infrastructure.sites}
    finished_seen = {}
    terminal_jobs = set()
    previous_event_id = 0
    for event in events:
        row = event.to_row()
        # Table 1 columns.
        for column in (
            "event_id",
            "job_id",
            "state",
            "site",
            "available_cores",
            "pending_jobs",
            "assigned_jobs",
            "finished_jobs",
        ):
            assert column in row
        # Event ids are unique and increasing (the event stream is ordered).
        assert event.event_id > previous_event_id
        previous_event_id = event.event_id
        if event.site:
            assert 0 <= event.available_cores <= capacity[event.site]
            # Cumulative finished counts never decrease per site.
            assert event.finished_jobs >= finished_seen.get(event.site, 0)
            finished_seen[event.site] = event.finished_jobs
        if event.state in ("finished", "failed"):
            assert event.job_id not in terminal_jobs, "job reached a terminal state twice"
            terminal_jobs.add(event.job_id)

    # Every job appears exactly once in a terminal state.
    assert len(terminal_jobs) == JOB_COUNT

    sample = [e.to_row() for e in events if e.state == "finished"][:6]
    record_result(
        "table1_events",
        {
            "total_events": len(events),
            "sample_rows": sample,
            "paper": "Table 1 lists event-level rows: Event ID, Job ID, State, Site, "
                     "Avail. Cores, Pending, Assigned, Finished",
        },
    )


@pytest.mark.benchmark(group="table1-monitoring-overhead")
@pytest.mark.parametrize("enable_events", [False, True], ids=["monitoring-off", "monitoring-on"])
def test_benchmark_monitoring_overhead(benchmark, enable_events):
    """Cost of event-level monitoring: the same run with collection on/off."""
    benchmark.pedantic(_run, args=(enable_events,), rounds=1, iterations=1)
