"""Ablation: allocation-policy comparison through the plugin mechanism.

CGSim's central feature is that scheduling policies are pluggable (paper
Section 3.3); the evaluation repeatedly motivates "testing novel scheduling
algorithms" as the use case.  This ablation runs the identical PanDA-like
workload under every bundled policy and compares the operational metrics the
paper lists (makespan, queue time, throughput), demonstrating that the policy
choice visibly moves the numbers -- i.e. that the plugin seam is where the
interesting decisions live.

Asserted shape: informed policies (least-loaded / PanDA-style dispatcher)
produce far shorter queue times than naive round-robin on a heterogeneous
grid whose site capacities differ by an order of magnitude (100-2,000 cores,
the paper's multi-site configuration) -- blind equal-count placement
overloads the small sites and jobs wait there.  Makespan is recorded as well
but not asserted: with heavy-tailed walltimes it is dominated by whichever
site the longest job happens to land on, so it is a noisy discriminator.
"""

from __future__ import annotations

import pytest

from repro import ExecutionConfig, Simulator
from repro.atlas import PandaWorkloadModel
from repro.config.execution import MonitoringConfig
from repro.config.generators import generate_grid

POLICIES = [
    "round_robin",
    "random",
    "least_loaded",
    "weighted_capacity",
    "panda_dispatcher",
    "backfill",
]
SITE_COUNT = 12
JOB_COUNT = 3000


def _workload(seed: int = 8):
    # Heterogeneous capacities (100-2,000 cores) make placement quality matter:
    # a policy that ignores capacity overloads the small sites.
    infrastructure, topology = generate_grid(
        SITE_COUNT, seed=seed, min_cores=100, max_cores=2000
    )
    model = PandaWorkloadModel(infrastructure, seed=seed)
    jobs = model.generate_trace(JOB_COUNT)
    return infrastructure, topology, jobs


def _run_policy(policy: str, infrastructure, topology, jobs) -> dict:
    execution = ExecutionConfig(
        plugin=policy, monitoring=MonitoringConfig(enable_events=False, snapshot_interval=0.0)
    )
    simulator = Simulator(infrastructure, topology, execution)
    result = simulator.run([job.copy_for_replay() for job in jobs])
    metrics = result.metrics
    return {
        "policy": policy,
        "makespan_s": metrics.makespan,
        "mean_queue_s": metrics.mean_queue_time,
        "throughput_jobs_per_s": metrics.throughput,
        "finished": metrics.finished_jobs,
        "failed": metrics.failed_jobs,
    }


@pytest.mark.benchmark(group="plugin-policies")
def test_policy_choice_changes_grid_behaviour(benchmark, record_result):
    """All bundled policies complete the workload; informed ones beat round-robin."""
    infrastructure, topology, jobs = _workload()
    rows = benchmark.pedantic(
        lambda: [_run_policy(policy, infrastructure, topology, jobs) for policy in POLICIES],
        rounds=1,
        iterations=1,
    )
    record_result(
        "plugin_policy_ablation",
        {
            "sites": SITE_COUNT,
            "jobs": JOB_COUNT,
            "rows": rows,
            "note": "scheduling-policy ablation exercised through the plugin mechanism",
        },
    )

    by_name = {row["policy"]: row for row in rows}
    for row in rows:
        assert row["finished"] == JOB_COUNT, f"{row['policy']} lost jobs"
        assert row["failed"] == 0

    # Load-aware placement should drastically cut queueing compared with blind
    # equal-count placement on a grid whose sites differ 20x in capacity.
    assert by_name["least_loaded"]["mean_queue_s"] < by_name["round_robin"]["mean_queue_s"]
    assert by_name["panda_dispatcher"]["mean_queue_s"] < by_name["round_robin"]["mean_queue_s"]
    # And the policies must actually differ -- otherwise the plugin seam is dead code.
    makespans = {round(row["makespan_s"], 3) for row in rows}
    assert len(makespans) > 1, "every policy produced an identical makespan"
