"""Cost of the checkpoint/restore layer (repro.state).

The snapshottable-state redesign promises that freezing a run is cheap and
that resuming one is never slower than redoing the work: a checkpoint is a
compressed record of the run's inputs + op log + component snapshots, and a
restore *replays* that log.  This bench measures the three quantities the
docs quote:

* **blob size** -- bytes of a mid-run checkpoint at half the workload's
  makespan, and how it scales against job count;
* **checkpoint / restore wall time** -- best-of-``ROUNDS`` time to freeze a
  paused session and to rebuild + fast-forward + verify one from the blob
  (both monitoring modes: ``replay`` re-records retained rows, ``muted``
  trades them for speed);
* **fast-forward vs cold run** -- restoring at t_half and finishing,
  against running the whole workload from scratch.  The replay itself
  re-executes the first half, so the contract is "comparable, never
  pathological" rather than "free"; the recorded ratio feeds the
  scalability notes.

Semantics are asserted alongside the timings: the restored run's result
fingerprint must equal the uninterrupted run's, which makes this bench a
standing end-to-end regression for bit-identical resume at a size the unit
tests do not reach.  Sizes scale with ``CGSIM_BENCH_SCALE``.
"""

from __future__ import annotations

import time

from repro.config.execution import ExecutionConfig, MonitoringConfig
from repro.config.generators import generate_grid
from repro.core.session import SimulationSession
from repro.core.simulator import Simulator
from repro.experiments.bench import BENCH_SCALE
from repro.state import decode_checkpoint, fingerprint_result
from repro.workload.generator import SyntheticWorkloadGenerator
from repro.workload.job import reset_job_id_counter

#: Jobs in the measured workload (floored to stay above timer noise).
N_JOBS = max(300, int(1500 * BENCH_SCALE))
N_SITES = max(3, int(6 * BENCH_SCALE))
#: Interleaved measurement rounds; best-of keeps scheduler noise out.
ROUNDS = 3
#: Job-id counter base so every compared run allocates identical ids.
COUNTER_BASE = 900_000


def _inputs():
    infrastructure, topology = generate_grid(N_SITES, seed=11)
    jobs = SyntheticWorkloadGenerator(infrastructure, seed=7).generate(N_JOBS)
    execution = ExecutionConfig(
        plugin="least_loaded", monitoring=MonitoringConfig(snapshot_interval=0.0)
    )
    return infrastructure, topology, execution, jobs


def _session(infrastructure, topology, execution, jobs):
    reset_job_id_counter(COUNTER_BASE)
    return Simulator(infrastructure, topology, execution).session(
        [job.copy_for_replay() for job in jobs]
    )


def test_checkpoint_restore_costs(record_result):
    infrastructure, topology, execution, jobs = _inputs()

    # Cold reference: the uninterrupted run, timed, and its fingerprint.
    cold_times = []
    cold_fp = None
    makespan = 0.0
    for _ in range(ROUNDS):
        session = _session(infrastructure, topology, execution, jobs)
        started = time.perf_counter()
        session.advance_to_completion()
        cold_times.append(time.perf_counter() - started)
        result = session.finalize()
        cold_fp = fingerprint_result(result)
        makespan = result.simulated_time
    t_half = makespan / 2.0

    checkpoint_times, restore_times, muted_times, finish_times = [], [], [], []
    blob = None
    for _ in range(ROUNDS):
        session = _session(infrastructure, topology, execution, jobs)
        session.advance_until(t_half)
        started = time.perf_counter()
        blob = session.checkpoint()
        checkpoint_times.append(time.perf_counter() - started)

        started = time.perf_counter()
        restored = SimulationSession.restore(None, blob)
        restore_times.append(time.perf_counter() - started)

        started = time.perf_counter()
        SimulationSession.restore(None, blob, monitoring="muted")
        muted_times.append(time.perf_counter() - started)

        started = time.perf_counter()
        restored.advance_to_completion()
        finish_times.append(time.perf_counter() - started)
        # Bit-identity at bench scale: the restored half must finish into
        # exactly the cold run's observable result.
        assert fingerprint_result(restored.finalize()) == cold_fp

    payload = decode_checkpoint(blob)
    cold_best = min(cold_times)
    fast_forward_best = min(restore_times) + min(finish_times)
    record_result(
        "checkpoint",
        {
            "jobs": N_JOBS,
            "sites": N_SITES,
            "rounds": ROUNDS,
            "simulated_makespan_s": makespan,
            "checkpoint_at_s": t_half,
            "blob_bytes": len(blob),
            "blob_bytes_per_job": len(blob) / N_JOBS,
            "ops_recorded": len(payload["ops"]),
            "checkpoint_best_s": min(checkpoint_times),
            "restore_replay_best_s": min(restore_times),
            "restore_muted_best_s": min(muted_times),
            "resume_total_best_s": fast_forward_best,
            "cold_run_best_s": cold_best,
            "resume_vs_cold": fast_forward_best / cold_best,
        },
    )
    print(
        f"\ncheckpoint: blob {len(blob) / 1024:.1f} KiB for {N_JOBS} jobs, "
        f"freeze {min(checkpoint_times) * 1e3:.1f} ms, "
        f"restore(replay) {min(restore_times) * 1e3:.1f} ms, "
        f"restore(muted) {min(muted_times) * 1e3:.1f} ms; "
        f"resume-at-half {fast_forward_best:.3f}s vs cold {cold_best:.3f}s "
        f"({fast_forward_best / cold_best:.2f}x)"
    )

    # Guard rails, generous enough for CI noise: freezing must stay far
    # cheaper than running, and a half-way resume must never cost more than
    # two cold runs (replaying the first half bounds it near ~1.5x).
    assert min(checkpoint_times) < cold_best
    assert fast_forward_best < 2.0 * cold_best
