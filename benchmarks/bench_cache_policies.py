"""Ablation: site-cache eviction policies at scale.

The cache-aware data subsystem (`repro.data`) turns storage from an
infinite replica set into finite per-site caches with pluggable eviction.
This benchmark replays one large skewed (Zipf) data-aware workload under
every bundled eviction policy plus the unbounded baseline and compares the
cache effectiveness counters the monitoring layer reports: hit rate,
evictions, WAN volume absorbed.

Asserted shape: a finite cache under a skewed workload keeps a meaningful
hit rate (the hot datasets stay resident), the unbounded cache bounds every
finite policy's hit rate from above, and eviction activity differs across
policies (otherwise the eviction seam is dead code).  Runs at minimal size
under ``CGSIM_BENCH_SCALE`` in CI's bench-smoke job.
"""

from __future__ import annotations

import pytest

from repro.experiments.bench import scaled
from repro.scenarios import get_scenario_pack
from repro.scenarios.runner import _build_simulator
from repro.scenarios.schema import ScenarioPack

POLICIES = ["lru", "lfu", "size_weighted", "pinned"]

SITES = scaled(6, minimum=2)
JOBS = scaled(2000, minimum=60)
DATASETS = scaled(60, minimum=8)

#: Per-site capacity: the pinned origin replicas (DATASETS/SITES, 10 GB
#: each) plus a handful of churn slots, so eviction pressure exists at every
#: CGSIM_BENCH_SCALE.
CAPACITY = (DATASETS / SITES + 4) * 10e9


def _single_run_pack(policy: str, bounded: bool) -> ScenarioPack:
    """The cache-ablation pack as a single (sweep-free) run of one policy."""
    pack = get_scenario_pack("cache-ablation")
    data = pack.to_dict()
    data.pop("sweep")
    data["grid"]["sites"] = SITES
    data["workload"]["jobs"] = JOBS
    data["data"]["datasets"] = DATASETS
    data["data"]["cache"]["policy"] = policy
    data["data"]["cache"]["capacity"] = CAPACITY
    if not bounded:
        data["data"]["cache"].pop("capacity")
    return ScenarioPack.from_dict(data)


def _run_policy(policy: str, bounded: bool = True) -> dict:
    simulator, jobs = _build_simulator(_single_run_pack(policy, bounded))
    result = simulator.run(jobs)
    summary = simulator.data_manager.cache_summary()
    return {
        "policy": policy if bounded else f"{policy} (unbounded)",
        "hit_rate": summary["cache_hit_rate"],
        "evictions": summary["cache_evictions"],
        "rejections": summary["cache_rejections"],
        "wan_tb": summary["bytes_wan"] / 1e12,
        "from_cache_tb": summary["bytes_from_cache"] / 1e12,
        "finished": result.metrics.finished_jobs,
    }


@pytest.mark.benchmark(group="cache-policies")
def test_eviction_policy_choice_changes_cache_behaviour(benchmark, record_result):
    """Every policy completes the workload; finite caches stay effective."""
    rows = benchmark.pedantic(
        lambda: [_run_policy(policy) for policy in POLICIES]
        + [_run_policy("lru", bounded=False)],
        rounds=1,
        iterations=1,
    )
    record_result(
        "cache_policy_ablation",
        {
            "sites": SITES,
            "jobs": JOBS,
            "datasets": DATASETS,
            "rows": rows,
            "note": "site-cache eviction-policy ablation over a Zipf-skewed workload",
        },
    )

    by_name = {row["policy"]: row for row in rows}
    unbounded = by_name["lru (unbounded)"]
    for row in rows:
        assert row["finished"] == JOBS, f"{row['policy']} lost jobs"
        assert 0.0 <= row["hit_rate"] <= 1.0

    # An unbounded cache never evicts and bounds every finite policy above.
    assert unbounded["evictions"] == 0
    for policy in POLICIES:
        assert by_name[policy]["hit_rate"] <= unbounded["hit_rate"] + 1e-9

    # The skewed workload keeps the hot set resident even under pressure.
    assert by_name["lru"]["hit_rate"] > 0.1

    # Policies must actually differ somewhere, or the eviction seam is dead code.
    activity = {
        (round(by_name[p]["evictions"]), round(by_name[p]["rejections"]))
        for p in POLICIES
    }
    assert len(activity) > 1, "every eviction policy behaved identically"
