"""Ablation: cost of routing ``Simulator.run()`` through the session API.

The stepped-lifecycle redesign made ``Simulator.run()`` a thin wrapper over
:class:`repro.core.session.SimulationSession` (build, advance to completion,
finalize).  The contract is that the wrapper is *free* on the batch hot path:
with no live hooks registered a session advances through exactly one
``env.run(until=all_done)`` -- the same kernel call the pre-redesign code
made -- plus O(1) bookkeeping per run.  This bench holds the contract:

* ``raw`` re-creates the pre-redesign hot path inline (build the actors,
  run the kernel to completion, compute the metrics) with no session object
  anywhere;
* ``wrapped`` is today's ``Simulator.run()``.

Interleaved best-of-``ROUNDS`` wall times must agree within 5% (plus both
paths must produce identical metrics, which doubles as a regression check on
the wrapper's semantics).  A stepped variant (``advance_until`` in chunks)
is also timed and recorded for the scalability notes, without an assertion:
chunked pausing legitimately pays one sentinel event per chunk.

Sizes scale with ``CGSIM_BENCH_SCALE`` (floored high enough that the
measured times stay well above timer noise on the CI smoke job).
"""

from __future__ import annotations

import time

from repro.config.execution import ExecutionConfig, MonitoringConfig
from repro.config.generators import generate_grid
from repro.core.metrics import compute_metrics
from repro.core.simulator import Simulator
from repro.experiments.bench import BENCH_SCALE
from repro.workload.generator import SyntheticWorkloadGenerator

#: Jobs per measured run (floored so smoke runs still measure something real).
N_JOBS = max(400, int(2000 * BENCH_SCALE))
N_SITES = max(3, int(8 * BENCH_SCALE))
#: Interleaved measurement rounds; best-of keeps scheduler noise out.
ROUNDS = 5
#: Allowed wrapper overhead on the batch hot path.
MAX_OVERHEAD = 0.05
#: Chunks used by the stepped variant.
CHUNKS = 20


def _inputs():
    infrastructure, topology = generate_grid(N_SITES, seed=11)
    jobs = SyntheticWorkloadGenerator(infrastructure, seed=7).generate(N_JOBS)
    execution = ExecutionConfig(
        plugin="least_loaded", monitoring=MonitoringConfig(snapshot_interval=0.0)
    )
    return infrastructure, topology, execution, jobs


def _fresh(infrastructure, topology, execution, jobs):
    return Simulator(infrastructure, topology, execution), [
        job.copy_for_replay() for job in jobs
    ]


def _raw_run(simulator, jobs):
    """The pre-session hot path, inlined: build + run + metrics, no session."""
    simulator._build(jobs)
    simulator.env.run(until=simulator.server.all_done)
    all_jobs = jobs + list(simulator.server.retry_jobs)
    return compute_metrics(
        all_jobs, collector=simulator.collector, data_manager=simulator.data_manager
    )


def _stepped_run(simulator, jobs, chunks):
    """Session driven in ``chunks`` pauses (upper bound on pause overhead)."""
    session = simulator.session(jobs)
    horizon = 0.0
    step = max(1.0, 86400.0 / chunks)
    while not session.done:
        horizon += step
        session.advance_until(horizon)
    return session.advance_to_completion().finalize().metrics


def test_session_wrapper_within_5_percent(record_result):
    infrastructure, topology, execution, jobs = _inputs()

    raw_times, wrapped_times, stepped_times = [], [], []
    raw_metrics = wrapped_metrics = stepped_metrics = None
    for _ in range(ROUNDS):
        simulator, batch = _fresh(infrastructure, topology, execution, jobs)
        started = time.perf_counter()
        raw_metrics = _raw_run(simulator, batch)
        raw_times.append(time.perf_counter() - started)

        simulator, batch = _fresh(infrastructure, topology, execution, jobs)
        started = time.perf_counter()
        wrapped_metrics = simulator.run(batch).metrics
        wrapped_times.append(time.perf_counter() - started)

        simulator, batch = _fresh(infrastructure, topology, execution, jobs)
        started = time.perf_counter()
        stepped_metrics = _stepped_run(simulator, batch, CHUNKS)
        stepped_times.append(time.perf_counter() - started)

    # Semantics first: the wrapper (and even the chunked lifecycle) must
    # reproduce the raw path's metrics exactly.
    assert wrapped_metrics.to_dict() == raw_metrics.to_dict()
    assert stepped_metrics.to_dict() == raw_metrics.to_dict()

    raw_best, wrapped_best = min(raw_times), min(wrapped_times)
    overhead = wrapped_best / raw_best - 1.0
    record_result(
        "session_overhead",
        {
            "jobs": N_JOBS,
            "sites": N_SITES,
            "rounds": ROUNDS,
            "raw_best_s": raw_best,
            "wrapped_best_s": wrapped_best,
            "stepped_best_s": min(stepped_times),
            "wrapper_overhead": overhead,
            "chunks": CHUNKS,
        },
    )
    print(
        f"\nsession overhead: raw {raw_best:.4f}s, wrapped {wrapped_best:.4f}s "
        f"({overhead * 100:+.2f}%), stepped x{CHUNKS} {min(stepped_times):.4f}s"
    )
    assert overhead <= MAX_OVERHEAD, (
        f"session-based run() is {overhead * 100:.1f}% slower than the "
        f"pre-redesign hot path (budget {MAX_OVERHEAD * 100:.0f}%)"
    )
