"""Throughput of the multi-tenant session server (repro.service).

Boots a real service -- HTTP socket, two spawned worker processes -- and
pushes a burst of tiny scenario packs through it, measuring end-to-end
session throughput (submit -> queue -> worker -> checkpointed run ->
result) rather than raw simulation speed.  Correctness is asserted
alongside the timing: every session's result fingerprint must equal the
fingerprint of an uninterrupted in-process run of the same pack, which
makes this bench a standing large-N regression for the service's
bit-identity contract (50 concurrent submissions at full scale).

Sizes scale with ``CGSIM_BENCH_SCALE``; full-scale numbers are committed
in BENCH_service.json.
"""

from __future__ import annotations

import time

from repro.experiments.bench import scaled
from repro.service import ServiceConfig, ServiceUnderTest, tiny_pack
from repro.state import fingerprint_result
from repro.workload.job import reset_job_id_counter

#: Sessions pushed through the pool (50 at full scale, floored to keep the
#: queue meaningfully deeper than the pool at smoke scale).
N_SESSIONS = scaled(50, minimum=6)
N_WORKERS = 2
#: Checkpoint cadence in simulated seconds; a tiny pack runs ~45k simulated
#: seconds, so every session writes a handful of blobs.
CHECKPOINT_EVERY = 10_000.0


def _sequential_fingerprint(pack: dict) -> str:
    from repro.scenarios.runner import _build_simulator
    from repro.scenarios.schema import ScenarioPack

    reset_job_id_counter(1)
    simulator, jobs = _build_simulator(ScenarioPack.from_dict(pack))
    session = simulator.session(jobs)
    session.advance_to_completion()
    return fingerprint_result(session.finalize())


def test_service_session_throughput(record_result):
    # Two pack shapes alternate so adjacent sessions are not byte-identical
    # work (their fingerprints differ, which also catches cross-session
    # result mix-ups).
    shapes = [tiny_pack("bench-a"), tiny_pack("bench-b", jobs=5, seed=11)]
    expected = [_sequential_fingerprint(pack) for pack in shapes]
    assert expected[0] != expected[1]

    with ServiceUnderTest(
        ServiceConfig(workers=N_WORKERS, checkpoint_every=CHECKPOINT_EVERY)
    ) as sut:
        sut.wait_idle_workers(N_WORKERS)
        client = sut.client
        started = time.perf_counter()
        views = [
            client.submit(shapes[i % len(shapes)]) for i in range(N_SESSIONS)
        ]
        finals = [
            client.wait(view["id"], "terminal", timeout=300.0) for view in views
        ]
        elapsed = time.perf_counter() - started
        checkpoint_blobs = len(sut.server.store.digests())

    mismatches = [
        (final["id"], final["state"], final["fingerprint"])
        for i, final in enumerate(finals)
        if final["state"] != "done"
        or final["fingerprint"] != expected[i % len(shapes)]
    ]
    assert not mismatches, f"sessions diverged from the sequential run: {mismatches}"

    throughput = N_SESSIONS / elapsed
    record_result(
        "service_throughput",
        {
            "sessions": N_SESSIONS,
            "workers": N_WORKERS,
            "wall_seconds": elapsed,
            "sessions_per_second": throughput,
            "checkpoint_blobs": checkpoint_blobs,
            "bit_identical": True,
        },
    )
    print(
        f"\nservice throughput: {N_SESSIONS} sessions / {elapsed:.2f}s "
        f"= {throughput:.2f} sessions/s on {N_WORKERS} workers "
        f"({checkpoint_blobs} checkpoint blobs)"
    )
