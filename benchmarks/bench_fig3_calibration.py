"""Figure 3: per-site walltime calibration across WLCG sites.

The paper calibrates each site's per-core processing speed against production
PanDA job records (random search, 50 sites) and reports the relative mean
absolute error of simulated walltimes, separately for single-core and
multi-core jobs, before and after calibration.  The headline number is the
geometric mean across sites improving from **76% to 17%**.

The reproduction generates a synthetic "historical" trace in which every site
has a hidden true speed differing from its nominal configuration (the same
kind of configuration misalignment), runs the identical calibration loop with
random search, and records the per-site and geometric-mean errors.  The
asserted shape: calibration reduces the geometric-mean error by a large
factor (>= 2x) and lands it well below the uncalibrated level.
"""

from __future__ import annotations

import pytest

from repro.atlas import PandaWorkloadModel, build_wlcg_infrastructure
from repro.calibration import GridCalibrator

#: Sites calibrated (the paper calibrates 50 and plots 10 of them).
SITE_COUNT = 50
#: Ground-truth jobs per site in the synthetic historical trace.
JOBS_PER_SITE = 80
#: Candidate evaluations allowed per site (random search budget).
BUDGET = 40


def _historical_trace(infrastructure, seed: int = 1):
    """Synthetic PanDA-like historical trace with hidden per-site true speeds."""
    model = PandaWorkloadModel(infrastructure, seed=seed)
    jobs = []
    for site in infrastructure.site_names:
        jobs.extend(model.generate_site_trace(site, JOBS_PER_SITE))
    return model, jobs


def _calibrate(seed: int = 1):
    infrastructure = build_wlcg_infrastructure(site_count=SITE_COUNT)
    _model, jobs = _historical_trace(infrastructure, seed=seed)
    calibrator = GridCalibrator(
        infrastructure, jobs, optimizer="random", budget=BUDGET, mode="analytic", seed=seed
    )
    return calibrator.calibrate()


@pytest.mark.benchmark(group="fig3-calibration")
def test_calibration_improves_geometric_mean_error(benchmark, record_result):
    """Random-search calibration shrinks the geometric-mean relative MAE."""
    report = benchmark.pedantic(_calibrate, rounds=1, iterations=1)
    summary = report.summary()

    rows = [
        {
            "site": result.site,
            "single_core_before": result.error_before["single_core"],
            "single_core_after": result.error_after["single_core"],
            "multi_core_before": result.error_before["multi_core"],
            "multi_core_after": result.error_after["multi_core"],
        }
        for result in report.sites
    ]
    record_result(
        "fig3_calibration",
        {
            "sites": rows,
            "geomean_before_overall": summary["geomean_before_overall"],
            "geomean_after_overall": summary["geomean_after_overall"],
            "geomean_before_single": summary["geomean_before_single"],
            "geomean_after_single": summary["geomean_after_single"],
            "geomean_before_multi": summary["geomean_before_multi"],
            "geomean_after_multi": summary["geomean_after_multi"],
            "paper": "geometric-mean relative MAE improves from 76% to 17% across 50 sites",
        },
    )

    before = summary["geomean_before_overall"]
    after = summary["geomean_after_overall"]
    assert len(report.sites) == SITE_COUNT
    # Shape of the paper's result: a large uncalibrated error (tens of
    # percent) dropping by a sizeable factor once the speed is calibrated.
    assert before > 0.25, f"uncalibrated error unexpectedly small ({before:.2%})"
    assert after < before / 2, (
        f"calibration should at least halve the error (before={before:.2%}, after={after:.2%})"
    )
    assert after < 0.30, f"calibrated error should be small, got {after:.2%}"
    # No site may get worse: SiteCalibrator falls back to the nominal speed.
    assert all(
        result.error_after["overall"] <= result.error_before["overall"] + 1e-9
        for result in report.sites
    )
