"""Figure 4(b): multi-site scaling performance of the simulator.

The paper distributes a fixed per-site workload (200 PanDA jobs per site,
sites configured with 100-2,000 cores) over 1 to 50 sites and reports the
simulator's wall-clock runtime, observing *near-linear* growth (~50 s for one
site to ~400 s for fifty on the authors' machine).

The reproduction sweeps the same dimension, fits ``runtime = a * n_sites ** b``
and asserts the exponent lies in the near-linear band.  The series is written
to ``benchmarks/results/fig4b_multisite_scaling.json``.
"""

from __future__ import annotations

import time

import pytest

from repro import ExecutionConfig, Simulator, SyntheticWorkloadGenerator
from repro.analysis.scaling import fit_power_law, linearity_score
from repro.config.execution import MonitoringConfig
from repro.config.generators import generate_grid
from repro.workload.generator import WorkloadSpec

#: Site counts swept (the paper sweeps 1-50).
SITE_COUNTS = [1, 2, 5, 10, 20, 40]
#: Fixed workload density, as in the paper.
JOBS_PER_SITE = 200


def _run_sites(n_sites: int, seed: int = 0) -> float:
    """Simulate ``JOBS_PER_SITE`` jobs on each of ``n_sites`` sites."""
    infrastructure, topology = generate_grid(
        n_sites, seed=seed, min_cores=100, max_cores=2000
    )
    spec = WorkloadSpec(walltime_median=2 * 3600.0)
    generator = SyntheticWorkloadGenerator(infrastructure, spec=spec, seed=seed)
    jobs = generator.generate_per_site(JOBS_PER_SITE)
    execution = ExecutionConfig(
        plugin="follow_trace",
        monitoring=MonitoringConfig(enable_events=True, snapshot_interval=0.0),
    )
    simulator = Simulator(infrastructure, topology, execution)
    result = simulator.run(jobs)
    assert result.metrics.finished_jobs == n_sites * JOBS_PER_SITE
    return result.wallclock_seconds


def _sweep() -> list:
    """Run the full site-count sweep; return one row per grid size."""
    series = []
    for n_sites in SITE_COUNTS:
        started = time.perf_counter()
        _run_sites(n_sites)
        elapsed = time.perf_counter() - started
        series.append(
            {
                "sites": n_sites,
                "jobs": n_sites * JOBS_PER_SITE,
                "wallclock_seconds": elapsed,
            }
        )
    return series


@pytest.mark.benchmark(group="fig4b-multisite-scaling")
def test_multisite_scaling_series_is_near_linear(benchmark, record_result):
    """Sweep the site counts and assert near-linear runtime growth."""
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    fit = fit_power_law(
        [row["sites"] for row in series],
        [row["wallclock_seconds"] for row in series],
    )
    linear_r2 = linearity_score(
        [row["sites"] for row in series],
        [row["wallclock_seconds"] for row in series],
    )
    record_result(
        "fig4b_multisite_scaling",
        {
            "series": series,
            "power_law_exponent": fit.exponent,
            "linear_fit_r_squared": linear_r2,
            "paper": "runtime grows near-linearly from ~50 s (1 site) to ~400 s (50 sites)",
        },
    )
    # The paper's claim: near-linear scaling with the number of sites.  The
    # fitted exponent must at the very least stay clearly below quadratic and
    # the direct linear fit must explain most of the variance.
    assert fit.exponent < 1.6, f"multi-site scaling exponent too high: {fit.exponent:.2f}"
    assert linear_r2 > 0.8, f"runtime is not close to linear in site count (R^2={linear_r2:.2f})"
    assert series[-1]["wallclock_seconds"] > series[0]["wallclock_seconds"]


@pytest.mark.benchmark(group="fig4b-multisite-scaling")
def test_benchmark_ten_sites(benchmark):
    """pytest-benchmark timing of the 10-site / 2,000-job configuration."""
    benchmark.pedantic(_run_sites, args=(10,), rounds=1, iterations=1)
