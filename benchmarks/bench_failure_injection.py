"""Ablation: fault injection and automatic retries.

The paper lists *job failure rate* among the operational metrics grid
monitoring derives (Section 1) and positions CGSim as the place to study
policies safely.  This ablation exercises the fault-injection subsystem that
DESIGN.md adds for exactly that purpose:

* injected per-attempt failures show up in the failure-rate metric at the
  configured level (the monitoring pipeline reports what was injected);
* automatic resubmission (``max_retries``) converts most outright job losses
  into extra attempts, at a quantified cost in wasted core-hours;
* a scheduled site outage delays the affected site's work without losing it.
"""

from __future__ import annotations

import pytest

from repro.config.execution import ExecutionConfig, MonitoringConfig
from repro.config.generators import generate_grid
from repro.core.simulator import Simulator
from repro.faults import JobFailureModel, OutageWindow
from repro.workload.generator import SyntheticWorkloadGenerator, WorkloadSpec
from repro.workload.job import JobState

SITE_COUNT = 6
JOB_COUNT = 800
FAILURE_RATE = 0.2


def _grid_and_jobs(seed: int = 17):
    infrastructure, topology = generate_grid(
        SITE_COUNT, seed=seed, min_cores=200, max_cores=800
    )
    spec = WorkloadSpec(walltime_median=1800.0, walltime_sigma=0.4)
    jobs = SyntheticWorkloadGenerator(infrastructure, spec=spec, seed=seed).generate(JOB_COUNT)
    return infrastructure, topology, jobs


def _run(infrastructure, topology, jobs, *, failure_model=None, outages=None, max_retries=0):
    execution = ExecutionConfig(
        plugin="least_loaded",
        max_retries=max_retries,
        monitoring=MonitoringConfig(enable_events=False, snapshot_interval=0.0),
    )
    simulator = Simulator(
        infrastructure,
        topology,
        execution,
        failure_model=failure_model,
        outages=outages or [],
    )
    return simulator.run([job.copy_for_replay() for job in jobs])


def _lost_originals(result, original_jobs) -> int:
    succeeded = {
        int(j.attributes.get("retry_of", j.job_id))
        for j in result.jobs
        if j.state is JobState.FINISHED
    }
    return len({int(j.job_id) for j in original_jobs} - succeeded)


@pytest.mark.benchmark(group="failure-injection")
def test_failure_rate_and_retries_behave_as_configured(benchmark, record_result):
    """Injected failure rate is observed; retries recover most lost jobs."""
    infrastructure, topology, jobs = _grid_and_jobs()

    def run_all():
        baseline = _run(infrastructure, topology, jobs)
        faulty = _run(
            infrastructure, topology, jobs,
            failure_model=JobFailureModel(default_rate=FAILURE_RATE, seed=5),
        )
        retried = _run(
            infrastructure, topology, jobs,
            failure_model=JobFailureModel(default_rate=FAILURE_RATE, seed=5),
            max_retries=3,
        )
        return baseline, faulty, retried

    baseline, faulty, retried = benchmark.pedantic(run_all, rounds=1, iterations=1)

    baseline_rate = baseline.metrics.failure_rate
    faulty_rate = faulty.metrics.failure_rate
    lost_without_retries = _lost_originals(faulty, jobs)
    lost_with_retries = _lost_originals(retried, jobs)
    wasted_core_hours = sum(
        (j.walltime or 0.0) * j.cores for j in retried.jobs if j.state is JobState.FAILED
    ) / 3600.0

    record_result(
        "failure_injection",
        {
            "configured_failure_rate": FAILURE_RATE,
            "baseline_failure_rate": baseline_rate,
            "observed_attempt_failure_rate": faulty_rate,
            "lost_jobs_without_retries": lost_without_retries,
            "lost_jobs_with_3_retries": lost_with_retries,
            "extra_attempts_with_retries": len(retried.jobs) - JOB_COUNT,
            "wasted_core_hours_with_retries": wasted_core_hours,
            "note": "job failure rate is one of the paper's operational metrics; "
                    "this ablation exercises the fault-injection subsystem",
        },
    )

    # No spontaneous failures without injection.
    assert baseline_rate == 0.0
    # The observed attempt-level failure rate tracks the configured probability.
    assert faulty_rate == pytest.approx(FAILURE_RATE, abs=0.06)
    assert lost_without_retries > 0
    # Retries recover the overwhelming majority of lost jobs...
    assert lost_with_retries < lost_without_retries * 0.25
    # ...by making extra attempts (which the output keeps visible).
    assert len(retried.jobs) > JOB_COUNT


@pytest.mark.benchmark(group="failure-injection")
def test_scheduled_outage_delays_but_does_not_lose_work(benchmark, record_result):
    """An 8-hour outage of one site delays its jobs; nothing is lost."""
    infrastructure, topology, jobs = _grid_and_jobs(seed=23)
    target = infrastructure.sites[0].name
    outage = OutageWindow(site=target, start=0.0, end=8 * 3600.0)

    def run_both():
        return (
            _run(infrastructure, topology, jobs),
            _run(infrastructure, topology, jobs, outages=[outage]),
        )

    normal, disturbed = benchmark.pedantic(run_both, rounds=1, iterations=1)

    record_result(
        "outage_injection",
        {
            "outage_site": target,
            "outage_hours": 8.0,
            "makespan_normal_h": normal.metrics.makespan / 3600.0,
            "makespan_with_outage_h": disturbed.metrics.makespan / 3600.0,
            "mean_queue_normal_min": normal.metrics.mean_queue_time / 60.0,
            "mean_queue_with_outage_min": disturbed.metrics.mean_queue_time / 60.0,
        },
    )

    assert disturbed.metrics.finished_jobs == JOB_COUNT
    assert disturbed.metrics.failed_jobs == 0
    # The disturbance can only make queueing worse (or equal), never better.
    assert disturbed.metrics.mean_queue_time >= normal.metrics.mean_queue_time - 1e-9
