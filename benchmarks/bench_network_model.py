"""Ablation: flow-level max-min fair network sharing vs. naive serial transfers.

DESIGN.md substitutes SimGrid's validated flow-level network model with a
from-scratch progressive-filling (max-min fair) implementation.  This ablation
checks that the substitution preserves the behaviour the simulation relies on:

* **contention**: N flows crossing the same link each receive ~1/N of its
  bandwidth, so N concurrent transfers take ~N times longer than one;
* **independence**: flows on disjoint links do not slow each other down;
* **fair-sharing vs serialisation**: with fair sharing, the *last* byte of a
  batch of transfers arrives at the same time as plain serialisation, but the
  completion times are spread (which is what drives realistic stage-in
  queueing), and adding capacity on an unrelated link changes nothing.

The pytest-benchmark part measures the cost of the rate re-computation as the
number of concurrent flows grows, since that is the network model's hot loop.
"""

from __future__ import annotations

import pytest

from repro.des import Environment
from repro.platform.link import Link
from repro.platform.network import NetworkModel
from repro.platform.routing import Route

GIGABIT = 1.25e8  # bytes/second
TRANSFER_SIZE = 1.25e9  # 10 seconds alone on a 1 Gbit/s link


def _route_over(links, source="src", destination="dst") -> Route:
    return Route(source=source, destination=destination, links=list(links))


def _run_transfers(flow_count: int, shared: bool) -> list:
    """Start ``flow_count`` transfers, either over one shared link or disjoint links."""
    env = Environment()
    network = NetworkModel(env)
    completions = []
    if shared:
        links = [Link("backbone", bandwidth=GIGABIT, latency=0.0)] * flow_count
    else:
        links = [Link(f"link{i}", bandwidth=GIGABIT, latency=0.0) for i in range(flow_count)]

    def watch(event, index):
        yield event
        completions.append((index, env.now))

    for index in range(flow_count):
        route = _route_over([links[index]])
        done = network.transfer(route, TRANSFER_SIZE)
        env.process(watch(done, index))
    env.run()
    return sorted(time for _index, time in completions)


@pytest.mark.benchmark(group="network-model")
def test_shared_link_contention_scales_with_flow_count(benchmark, record_result):
    """N flows over one link finish ~N times later than one flow alone."""

    def run_all():
        return (
            _run_transfers(1, shared=True)[-1],
            _run_transfers(4, shared=True),
            _run_transfers(4, shared=False),
        )

    alone, contended, disjoint = benchmark.pedantic(run_all, rounds=1, iterations=1)

    record_result(
        "network_model_ablation",
        {
            "single_flow_seconds": alone,
            "four_flows_shared_link_last_completion": contended[-1],
            "four_flows_disjoint_links_last_completion": disjoint[-1],
            "note": "max-min fair sharing: shared-link completion scales with flow count, "
                    "disjoint links are unaffected",
        },
    )

    # Four equal flows over one link: everyone gets ~1/4 of the bandwidth, so
    # the batch finishes ~4x later than a single flow (equal-split fairness).
    assert contended[-1] == pytest.approx(4 * alone, rel=0.05)
    # Disjoint links: no interference at all.
    assert disjoint[-1] == pytest.approx(alone, rel=0.05)
    # Fair sharing means every flow crossing the same bottleneck finishes
    # together (they all drain at the same rate).
    assert contended[0] == pytest.approx(contended[-1], rel=0.05)


@pytest.mark.benchmark(group="network-model")
def test_bottleneck_is_the_narrowest_link_on_the_route(benchmark):
    """A multi-hop route is limited by its slowest link (plus summed latency)."""

    def run() -> float:
        env = Environment()
        network = NetworkModel(env)
        fast = Link("fast", bandwidth=10 * GIGABIT, latency=0.01)
        slow = Link("slow", bandwidth=GIGABIT, latency=0.04)
        route = _route_over([fast, slow])
        done = network.transfer(route, TRANSFER_SIZE)
        result = {}

        def watch():
            yield done
            result["time"] = env.now

        env.process(watch())
        env.run()
        return result["time"]

    completion = benchmark.pedantic(run, rounds=1, iterations=1)
    route_latency = 0.01 + 0.04
    expected = TRANSFER_SIZE / GIGABIT + route_latency
    assert completion == pytest.approx(expected, rel=0.02)


@pytest.mark.benchmark(group="network-model")
@pytest.mark.parametrize("flow_count", [10, 100, 400])
def test_benchmark_concurrent_flow_resharing(benchmark, flow_count):
    """Cost of the progressive-filling re-share as concurrent flows grow."""
    result = benchmark.pedantic(
        _run_transfers, args=(flow_count, True), rounds=1, iterations=1
    )
    assert len(result) == flow_count
