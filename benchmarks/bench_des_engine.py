"""Ablation: raw throughput of the discrete-event kernel.

DESIGN.md substitutes SimGrid's C++ discrete-event engine with the pure-Python
generator-coroutine kernel in :mod:`repro.des`.  The absolute event rate is
obviously far below SimGrid's, but it bounds how large a grid the reproduction
can simulate within a time budget, so it is measured explicitly:

* timeout churn: many short processes yielding timeouts (the pattern job
  executions produce);
* resource contention: many processes competing for a small core pool (the
  pattern site admission produces);
* store ping-pong: producer/consumer pairs over a Store (the pattern the
  sender/receiver actors produce).

Workloads, sizes and the ``CGSIM_BENCH_SCALE`` knob come from :func:`repro.experiments.bench.kernel_workloads`
-- the same source the ``repro bench`` CLI subcommand measures -- scaled by
``CGSIM_BENCH_SCALE`` so the CI smoke job can run them at minimal sizes.
Before/after event rates of the kernel overhaul are recorded in
``BENCH_kernel.json`` at the repo root.  There is nothing to assert against
the paper here beyond "the kernel processes events at a usable rate"; the
numbers feed the scalability discussion in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments.bench import (
    BENCH_SCALE,
    grid_end_to_end,
    kernel_workloads,
    scaled,
    timeout_churn,
)

#: name -> (fn, args, events) at the ambient benchmark scale.
WORKLOADS = {name: (fn, args, events) for name, fn, args, events in kernel_workloads(BENCH_SCALE)}

#: The end-to-end workload is a million jobs at full scale (the throughput
#: trajectory's headline case); CGSIM_BENCH_SCALE shrinks it like the rest.
E2E_JOBS = scaled(1_000_000, minimum=200)


@pytest.mark.benchmark(group="des-kernel")
def test_benchmark_timeout_churn(benchmark):
    """~50k timeout events through the calendar (at full scale)."""
    fn, args, _events = WORKLOADS["timeout_churn"]
    outcome = benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
    assert outcome.final_time > 0


@pytest.mark.benchmark(group="des-kernel")
def test_benchmark_timeout_churn_macro(benchmark):
    """The same churn through one columnar macro batch (bit-identical)."""
    fn, args, _events = WORKLOADS["timeout_churn_macro"]
    outcome = benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
    assert outcome == timeout_churn(*args)


@pytest.mark.benchmark(group="des-kernel")
def test_benchmark_resource_contention(benchmark):
    """2,000 workers x 5 acquisitions over a 64-slot pool (at full scale)."""
    fn, args, _events = WORKLOADS["resource_contention"]
    outcome = benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
    assert outcome.count == args[0]


@pytest.mark.benchmark(group="des-kernel")
def test_benchmark_store_pingpong(benchmark):
    """500 producer/consumer pairs exchanging 40 messages each (at full scale)."""
    fn, args, _events = WORKLOADS["store_pingpong"]
    outcome = benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
    assert outcome.count == args[0] * args[1]


@pytest.mark.benchmark(group="des-e2e")
def test_benchmark_e2e_million_jobs(benchmark):
    """A million-job batch through the full component stack (at full scale)."""
    outcome = benchmark.pedantic(
        grid_end_to_end, args=(E2E_JOBS,), rounds=1, iterations=1
    )
    assert outcome.count == E2E_JOBS


@pytest.mark.benchmark(group="des-e2e")
def test_benchmark_e2e_million_jobs_macro(benchmark):
    """The same million-job batch with the macro-batch lanes on."""
    outcome = benchmark.pedantic(
        grid_end_to_end, args=(E2E_JOBS,), kwargs={"macro": True}, rounds=1, iterations=1
    )
    assert outcome.count == E2E_JOBS


@pytest.mark.benchmark(group="des-e2e")
@pytest.mark.parametrize("shards", [2, 4])
def test_benchmark_e2e_sharded(benchmark, shards):
    """The million-job batch across sharded-clock regions.

    Runs on any machine (regions are plain subprocesses); wall-clock wins
    need >= ``shards`` CPUs, which the trajectory notes record.  The wide
    ``shard_window`` keeps coordinator round-trips out of the measurement:
    the regions are fully independent, so the window only bounds clock skew,
    and the conservative default would cost one IPC round per 60 simulated
    seconds of a multi-week makespan.
    """
    outcome = benchmark.pedantic(
        grid_end_to_end,
        args=(E2E_JOBS,),
        kwargs={"shards": shards, "shard_window": 1_000_000.0},
        rounds=1,
        iterations=1,
    )
    assert outcome.count == E2E_JOBS
