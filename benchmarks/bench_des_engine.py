"""Ablation: raw throughput of the discrete-event kernel.

DESIGN.md substitutes SimGrid's C++ discrete-event engine with the pure-Python
generator-coroutine kernel in :mod:`repro.des`.  The absolute event rate is
obviously far below SimGrid's, but it bounds how large a grid the reproduction
can simulate within a time budget, so it is measured explicitly:

* timeout churn: many short processes yielding timeouts (the pattern job
  executions produce);
* resource contention: many processes competing for a small core pool (the
  pattern site admission produces);
* store ping-pong: producer/consumer pairs over a Store (the pattern the
  sender/receiver actors produce).

There is nothing to assert against the paper here beyond "the kernel
processes events at a usable rate"; the numbers feed the scalability
discussion in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.des import Environment, Resource, Store


def _timeout_churn(process_count: int, hops: int) -> float:
    """Spawn processes that each sleep ``hops`` times; return final sim time."""
    env = Environment()

    def sleeper(delay: float):
        for _ in range(hops):
            yield env.timeout(delay)

    for index in range(process_count):
        env.process(sleeper(1.0 + (index % 7) * 0.1))
    env.run()
    return env.now


def _resource_contention(process_count: int, capacity: int) -> int:
    """Processes repeatedly acquire/release a shared core pool."""
    env = Environment()
    pool = Resource(env, capacity=capacity)
    completed = []

    def worker(index: int):
        for _ in range(5):
            request = pool.request()
            yield request
            yield env.timeout(1.0)
            pool.release(request)
        completed.append(index)

    for index in range(process_count):
        env.process(worker(index))
    env.run()
    return len(completed)


def _store_pingpong(pairs: int, messages: int) -> int:
    """Producer/consumer pairs exchanging messages through stores."""
    env = Environment()
    received = []

    def producer(store: Store):
        for index in range(messages):
            store.put(index)
            yield env.timeout(0.5)

    def consumer(store: Store):
        for _ in range(messages):
            item = yield store.get()
            received.append(item)

    for _ in range(pairs):
        store = Store(env)
        env.process(producer(store))
        env.process(consumer(store))
    env.run()
    return len(received)


@pytest.mark.benchmark(group="des-kernel")
def test_benchmark_timeout_churn(benchmark):
    """~50k timeout events through the calendar."""
    final_time = benchmark.pedantic(
        _timeout_churn, args=(1000, 50), rounds=1, iterations=1
    )
    assert final_time > 0


@pytest.mark.benchmark(group="des-kernel")
def test_benchmark_resource_contention(benchmark):
    """2,000 workers x 5 acquisitions over a 64-slot pool."""
    completed = benchmark.pedantic(
        _resource_contention, args=(2000, 64), rounds=1, iterations=1
    )
    assert completed == 2000


@pytest.mark.benchmark(group="des-kernel")
def test_benchmark_store_pingpong(benchmark):
    """500 producer/consumer pairs exchanging 40 messages each."""
    received = benchmark.pedantic(_store_pingpong, args=(500, 40), rounds=1, iterations=1)
    assert received == 500 * 40
