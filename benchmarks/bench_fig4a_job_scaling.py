"""Figure 4(a): job-scaling performance of the simulator.

The paper increases the workload density on a single site from 1,000 to
10,000 jobs and reports the simulator's wall-clock runtime, observing
*sub-quadratic* growth (roughly 100 s at 1k jobs to ~2,500 s at 10k jobs on
the authors' machine).

The reproduction sweeps the same dimension at laptop-friendly sizes, fits the
power law ``runtime = a * n_jobs ** b`` and asserts ``b < 2`` (the
sub-quadratic claim).  Absolute runtimes are machine-dependent and not
asserted; the series is written to ``benchmarks/results/fig4a_job_scaling.json``.
"""

from __future__ import annotations

import time

import pytest

from repro import ExecutionConfig, Simulator, SyntheticWorkloadGenerator
from repro.analysis.scaling import fit_power_law
from repro.config.execution import MonitoringConfig
from repro.config.generators import generate_grid
from repro.workload.generator import WorkloadSpec

#: Workload densities swept (the paper sweeps 1,000-10,000 on one site).
JOB_COUNTS = [250, 500, 1000, 2000, 4000]
#: Job count used for the single timed pytest-benchmark measurement
#: (honours CGSIM_BENCH_SCALE for the CI smoke job; the sweep above keeps
#: its full sizes because the fitted exponent is meaningless at toy scale).
from repro.experiments.bench import scaled

BENCHMARK_JOBS = scaled(1000, minimum=50)


def _single_site_grid(seed: int = 0):
    """One 2,000-core site, as in the paper's job-scaling experiment."""
    return generate_grid(1, seed=seed, min_cores=2000, max_cores=2000)


def _run_jobs(n_jobs: int, seed: int = 0) -> float:
    """Simulate ``n_jobs`` on the single-site grid; return wall-clock seconds."""
    infrastructure, topology = _single_site_grid(seed)
    spec = WorkloadSpec(walltime_median=2 * 3600.0)
    jobs = SyntheticWorkloadGenerator(infrastructure, spec=spec, seed=seed).generate(n_jobs)
    execution = ExecutionConfig(
        plugin="least_loaded",
        monitoring=MonitoringConfig(enable_events=True, snapshot_interval=0.0),
    )
    simulator = Simulator(infrastructure, topology, execution)
    result = simulator.run(jobs)
    assert result.metrics.finished_jobs == n_jobs
    return result.wallclock_seconds


def _sweep() -> list:
    """Run the full job-count sweep; return one row per workload density."""
    series = []
    for n_jobs in JOB_COUNTS:
        started = time.perf_counter()
        _run_jobs(n_jobs)
        elapsed = time.perf_counter() - started
        series.append({"jobs": n_jobs, "wallclock_seconds": elapsed})
    return series


@pytest.mark.benchmark(group="fig4a-job-scaling")
def test_job_scaling_series_is_subquadratic(benchmark, record_result):
    """Sweep the job counts and assert the fitted exponent stays below 2."""
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    fit = fit_power_law(
        [row["jobs"] for row in series],
        [row["wallclock_seconds"] for row in series],
    )
    record_result(
        "fig4a_job_scaling",
        {
            "series": series,
            "power_law_exponent": fit.exponent,
            "power_law_r_squared": fit.r_squared,
            "paper": "runtime grows sub-quadratically from ~100 s (1k jobs) to ~2,500 s (10k jobs)",
        },
    )
    assert fit.is_subquadratic, (
        f"job scaling should be sub-quadratic; fitted exponent {fit.exponent:.2f}"
    )
    # Runtime must actually grow with the workload (sanity on the shape).
    assert series[-1]["wallclock_seconds"] > series[0]["wallclock_seconds"]


@pytest.mark.benchmark(group="fig4a-job-scaling")
def test_benchmark_single_site_1000_jobs(benchmark):
    """pytest-benchmark timing of the paper's smallest point (1,000 jobs)."""
    benchmark.pedantic(_run_jobs, args=(BENCHMARK_JOBS,), rounds=1, iterations=1)
