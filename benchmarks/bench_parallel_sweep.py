"""Parallel experiment-runner benchmark: speedup and determinism.

The :mod:`repro.experiments` sweep runner exists so ensemble studies (the
paper's calibration sweeps, scaling series and failure-injection studies) use
every core of the machine.  This benchmark checks its two contracts on a
32-run sweep:

* **Determinism** -- the aggregate metrics from ``SweepRunner(n_workers=1)``
  are bit-identical to a hand-rolled sequential loop over the public
  :class:`repro.Simulator` API with the same derived seeds, and to the
  4-worker parallel run.  Asserted unconditionally.
* **Speedup** -- 4 workers beat 1 worker by >= 2x wall-clock.  Parallel
  speedup needs parallel hardware, so this is asserted only when the process
  may use >= 4 CPUs (>= 1.3x when 2-3); on fewer cores the measured factor
  is still recorded in ``benchmarks/results/parallel_sweep.json``.
"""

from __future__ import annotations

import time

import pytest

from repro import ExecutionConfig, Simulator, SyntheticWorkloadGenerator
from repro.config.execution import MonitoringConfig
from repro.config.generators import generate_grid
from repro.experiments import RunSpec, SweepRunner, default_workers, scenario_grid
from repro.workload.generator import WorkloadSpec

#: The sweep: 4 scenarios x 8 replications = 32 independent runs.
SWEEP_RUNS = 32
REPLICATIONS = 8
JOBS_PER_RUN = 400
SITES = [4, 8]
POLICIES = ["least_loaded", "round_robin"]
AGGREGATED = ("makespan", "mean_queue_time", "throughput", "failure_rate")


def _specs() -> list:
    specs = scenario_grid(
        RunSpec(jobs=JOBS_PER_RUN, seed=17),
        replications=REPLICATIONS,
        sites=SITES,
        policy=POLICIES,
    )
    assert len(specs) == SWEEP_RUNS
    return specs


def _sequential_reference(specs) -> list:
    """The pre-existing sequential path: a plain loop over the Simulator API.

    Re-derives every seed exactly as the sweep runner does and aggregates the
    same metrics, without touching the runner -- the independent reference
    the determinism claim is measured against.
    """
    from repro.experiments.aggregate import aggregate_results
    from repro.experiments.spec import RunResult

    results = []
    for spec in specs:
        infrastructure, topology = generate_grid(
            spec.sites, seed=spec.scenario_seed_for("grid"), topology=spec.topology
        )
        generator = SyntheticWorkloadGenerator(
            infrastructure, spec=WorkloadSpec(), seed=spec.seed_for("workload")
        )
        jobs = generator.generate(spec.jobs)
        execution = ExecutionConfig(
            plugin=spec.policy,
            seed=spec.run_seed,
            max_retries=spec.max_retries,
            monitoring=MonitoringConfig(enable_events=False, snapshot_interval=0.0),
        )
        result = Simulator(infrastructure, topology, execution).run(jobs)
        results.append(
            RunResult(
                spec=spec,
                metrics=result.metrics.to_dict(),
                simulated_time=result.simulated_time,
            )
        )
    return aggregate_results(results, metrics=AGGREGATED)


def _timed_sweep(n_workers: int):
    runner = SweepRunner(n_workers=n_workers)
    started = time.perf_counter()
    sweep = runner.run(_specs())
    elapsed = time.perf_counter() - started
    assert not sweep.failed, [r.error for r in sweep.failed]
    return sweep.aggregate(AGGREGATED), elapsed


@pytest.mark.benchmark(group="parallel-sweep")
def test_parallel_sweep_speedup_and_determinism(record_result):
    reference = _sequential_reference(_specs())
    agg_1, seconds_1 = _timed_sweep(1)
    agg_4, seconds_4 = _timed_sweep(4)

    # Determinism: 1 worker == sequential reference == 4 workers, bit for bit.
    assert agg_1 == reference
    assert agg_4 == reference

    cpus = default_workers()
    speedup = seconds_1 / seconds_4 if seconds_4 > 0 else float("inf")
    record_result(
        "parallel_sweep",
        {
            "runs": SWEEP_RUNS,
            "jobs_per_run": JOBS_PER_RUN,
            "seconds_1_worker": seconds_1,
            "seconds_4_workers": seconds_4,
            "speedup_4_vs_1": speedup,
            "usable_cpus": cpus,
            "deterministic_across_worker_counts": True,
        },
    )
    print(
        f"\n32-run sweep: 1 worker {seconds_1:.2f} s, 4 workers {seconds_4:.2f} s "
        f"-> speedup {speedup:.2f}x on {cpus} usable CPU(s)"
    )
    if cpus >= 4:
        assert speedup >= 2.0, f"expected >= 2x speedup on {cpus} CPUs, got {speedup:.2f}x"
    elif cpus >= 2:
        assert speedup >= 1.3, f"expected >= 1.3x speedup on {cpus} CPUs, got {speedup:.2f}x"
