"""Abstract claim: distributed workloads complete ~6x faster than single-site.

The paper's abstract reports that "distributed workloads achieve 6x better
performance compared to single-site execution".  The reproduction measures
exactly that in simulated time: the same workload is executed once on a
single site and once spread over a multi-site grid with an aggregate capacity
roughly an order of magnitude larger, and the makespans are compared.

Asserted shape: the distributed makespan is several times shorter (>= 3x) --
the precise factor depends on the workload/capacity ratio and on the length
of the longest job (which bounds the distributed makespan from below), as it
does in the paper's testbed.
"""

from __future__ import annotations

import pytest

from repro import ExecutionConfig, Simulator, SyntheticWorkloadGenerator
from repro.config.execution import MonitoringConfig
from repro.config.generators import generate_grid
from repro.workload.generator import WorkloadSpec

#: Number of jobs in the workload being compared.
JOB_COUNT = 3000
#: Sites in the distributed configuration.
DISTRIBUTED_SITES = 16
#: Cores per site (same site size in both configurations).
CORES_PER_SITE = 400


def _makespan(site_count: int, jobs, seed: int = 0) -> float:
    """Makespan of ``jobs`` on a ``site_count``-site grid of identical sites."""
    infrastructure, topology = generate_grid(
        site_count, seed=seed, min_cores=CORES_PER_SITE, max_cores=CORES_PER_SITE
    )
    execution = ExecutionConfig(
        plugin="least_loaded",
        monitoring=MonitoringConfig(enable_events=False, snapshot_interval=0.0),
    )
    simulator = Simulator(infrastructure, topology, execution)
    result = simulator.run([job.copy_for_replay() for job in jobs])
    assert result.metrics.finished_jobs == len(jobs)
    return result.metrics.makespan


def _workload(seed: int = 0):
    """A capacity-stressing workload generated against the single-site grid."""
    infrastructure, _ = generate_grid(
        1, seed=seed, min_cores=CORES_PER_SITE, max_cores=CORES_PER_SITE
    )
    spec = WorkloadSpec(
        walltime_median=2 * 3600.0, walltime_sigma=0.4, multicore_fraction=0.4
    )
    return SyntheticWorkloadGenerator(infrastructure, spec=spec, seed=seed).generate(JOB_COUNT)


@pytest.mark.benchmark(group="distributed-vs-single")
def test_distributed_execution_is_several_times_faster(benchmark, record_result):
    """Spreading the workload over many sites shortens the makespan by several x.

    Both readings of the paper's claim are recorded: the *simulated* makespan
    of the workload (how much faster the work itself completes when spread
    over the grid) and the *simulator wall-clock* ratio (how expensive the two
    configurations are to simulate).  The asserted shape is the first one --
    a multi-x speed-up, in the ballpark of the paper's 6x -- because that is
    robust to the host machine; the wall-clock ratio is recorded for
    EXPERIMENTS.md and only sanity-checked.
    """
    import time

    jobs = _workload()

    def compare():
        results = {}
        started = time.perf_counter()
        results["single_makespan"] = _makespan(1, jobs)
        results["single_wallclock"] = time.perf_counter() - started
        started = time.perf_counter()
        results["distributed_makespan"] = _makespan(DISTRIBUTED_SITES, jobs)
        results["distributed_wallclock"] = time.perf_counter() - started
        return results

    measured = benchmark.pedantic(compare, rounds=1, iterations=1)
    single = measured["single_makespan"]
    distributed = measured["distributed_makespan"]
    speedup = single / distributed
    wallclock_ratio = measured["single_wallclock"] / measured["distributed_wallclock"]

    record_result(
        "distributed_vs_single",
        {
            "jobs": JOB_COUNT,
            "single_site_makespan_s": single,
            "distributed_sites": DISTRIBUTED_SITES,
            "distributed_makespan_s": distributed,
            "makespan_speedup": speedup,
            "single_site_sim_wallclock_s": measured["single_wallclock"],
            "distributed_sim_wallclock_s": measured["distributed_wallclock"],
            "sim_wallclock_ratio_single_over_distributed": wallclock_ratio,
            "paper": "distributed workloads achieve ~6x better performance than single-site execution",
        },
    )
    assert distributed < single
    assert speedup >= 3.0, f"expected a multi-x speed-up from distribution, got {speedup:.1f}x"
    # The distributed configuration must not be disproportionately expensive
    # to simulate (the paper's scalability argument); a small constant factor
    # either way is machine noise.
    assert measured["distributed_wallclock"] < 10 * measured["single_wallclock"]
