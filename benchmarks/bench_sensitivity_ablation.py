"""Section 4.2: parameter sensitivity analysis.

The paper performs a sensitivity analysis over grid configuration parameters
(CPU core counts, processing speeds, memory capacities, intra-site network
bandwidths) and identifies **CPU core processing speed** as the dominant
factor for job-walltime accuracy -- which is why it becomes the single
calibration parameter.

The reproduction perturbs each parameter one-at-a-time around a calibration
site's nominal configuration, measures the walltime error against the
ground-truth trace for every perturbation, and asserts that core speed has by
far the largest sensitivity index.
"""

from __future__ import annotations

import pytest

from repro.atlas import PandaWorkloadModel, build_wlcg_infrastructure
from repro.calibration.sensitivity import SensitivityAnalysis

JOBS = 60
FACTORS = (0.5, 0.75, 1.0, 1.5, 2.0)


def _site_and_jobs(seed: int = 6):
    infrastructure = build_wlcg_infrastructure(site_count=5)
    model = PandaWorkloadModel(infrastructure, seed=seed)
    site = infrastructure.sites[0]
    jobs = model.generate_site_trace(site.name, JOBS)
    return site, jobs


@pytest.mark.benchmark(group="sensitivity-analysis")
def test_core_speed_is_the_dominant_parameter(benchmark, record_result):
    """Perturbing the core speed moves the walltime error far more than anything else."""
    site, jobs = _site_and_jobs()
    analysis = SensitivityAnalysis(site, jobs, factors=FACTORS, mode="simulate")
    results = benchmark.pedantic(analysis.analyze, rounds=1, iterations=1)

    rows = [result.to_row() for result in results]
    dominant = SensitivityAnalysis.dominant_parameter(results)
    record_result(
        "sensitivity_analysis",
        {
            "factors": list(FACTORS),
            "rows": rows,
            "dominant_parameter": dominant,
            "paper": "CPU core processing speed is the dominant factor influencing "
                     "job walltime accuracy",
        },
    )

    assert dominant == "core_speed"
    by_parameter = {row["parameter"]: row["sensitivity_index"] for row in rows}
    speed_index = by_parameter["core_speed"]
    for parameter, index in by_parameter.items():
        if parameter == "core_speed":
            continue
        assert speed_index > index * 2, (
            f"core_speed should dominate {parameter}: {speed_index:.3f} vs {index:.3f}"
        )
