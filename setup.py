"""Setuptools shim.

The project is fully described by ``pyproject.toml`` (src-layout package,
console scripts, metadata); this file only exists so that
``pip install -e . --no-use-pep517`` (legacy editable install) works in
offline environments that lack the ``wheel`` package required by PEP 517
editable builds.
"""

from setuptools import setup

setup()
