"""The lint engine: walk files, run rules, apply suppressions and baseline.

:func:`run_lint` is the single entry point behind ``cgsim lint``, the
conformance suite's static pass and the test suite's hygiene assertions.
It collects ``.py`` files from the given paths (directories recurse,
``__pycache__`` and hidden directories are skipped), parses each file once
into a shared :class:`~repro.lint.rules.base.FileContext`, runs the
selected rules, then applies the two filtering layers in order: per-line
``# cgsim: lint-ignore[rule-id] reason`` suppressions (reason mandatory --
see :mod:`repro.lint.suppressions`), and the committed baseline with its
shrink-only ratchet (see :mod:`repro.lint.baseline`).  A file that does
not parse is reported as a ``lint-parse-error`` finding rather than
crashing the run, so one broken file never hides the rest of the tree.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.lint.baseline import Baseline, discover_baseline, load_baseline
from repro.lint.findings import Finding, LintReport
from repro.lint.rules import Rule, select_rules
from repro.lint.rules.base import FileContext
from repro.lint.suppressions import parse_suppressions

__all__ = ["run_lint", "collect_files"]

#: Rule ids the engine emits itself and that can never be suppressed.
_ENGINE_RULES = ("lint-bare-ignore", "lint-unknown-rule", "lint-parse-error")


def collect_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into the sorted list of ``.py`` files to scan.

    Directories recurse; ``__pycache__`` and dot-directories are skipped.
    Paths are kept as given (relative in, relative out) so findings render
    with stable, checkout-independent locations.  A path that exists but
    matches nothing (or does not exist) raises ``FileNotFoundError`` --
    linting nothing silently is how CI rots.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            found = sorted(
                candidate for candidate in path.rglob("*.py")
                if not any(
                    part == "__pycache__" or part.startswith(".")
                    for part in candidate.relative_to(path).parts
                )
            )
            files.extend(found)
        else:
            raise FileNotFoundError(f"lint path does not exist: {path}")
    unique: List[Path] = []
    seen = set()
    for file in files:
        key = file.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(file)
    return unique


def _known_ids(rules: Sequence[Rule]) -> List[str]:
    from repro.lint.rules import known_rule_ids

    ids = list(known_rule_ids())
    for rule in rules:
        if rule.id not in ids:
            ids.append(rule.id)
    return ids


def run_lint(
    paths: Iterable[Union[str, Path]],
    rules: Sequence[Union[str, Rule]] = (),
    baseline: Union[None, str, Path, Baseline] = "auto",
) -> LintReport:
    """Lint ``paths`` and return the :class:`~repro.lint.findings.LintReport`.

    ``rules`` selects what runs: rule ids, family names, or pre-built
    :class:`~repro.lint.rules.base.Rule` instances (for custom allow-lists);
    empty means every registered rule.  ``baseline`` is ``"auto"`` (walk up
    from the scanned paths for a committed ``lint-baseline.json``), ``None``
    (zero tolerance), a path, or a loaded
    :class:`~repro.lint.baseline.Baseline`.  The report's ``ok`` is the
    pass/fail verdict: no findings outside suppressions+baseline, and no
    stale baseline entries (the ratchet).
    """
    selected: List[Rule] = []
    names: List[str] = []
    for item in rules:
        if isinstance(item, Rule):
            selected.append(item)
        else:
            names.append(item)
    if names or not selected:
        for rule in select_rules(names):
            if all(rule.id != existing.id for existing in selected):
                selected.append(rule)
    known = _known_ids(selected)

    files = collect_files(paths)
    raw_findings: List[Finding] = []
    suppressed = 0
    for file in files:
        source = file.read_text(encoding="utf-8")
        display = str(file)
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            raw_findings.append(Finding(
                path=display, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                rule="lint-parse-error",
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error; nothing else in this file "
                     "was checked",
            ))
            continue
        ctx = FileContext(display, source, tree)
        file_findings: List[Finding] = []
        for rule in selected:
            if rule.id in _ENGINE_RULES:
                continue
            file_findings.extend(rule.check(ctx))
        ignores = parse_suppressions(source)
        for ignore in ignores.values():
            unknown = [r for r in ignore.rules if r not in known]
            if unknown:
                raw_findings.append(Finding(
                    path=display, line=ignore.line, col=1,
                    rule="lint-unknown-rule",
                    message=f"lint-ignore names unknown rule id(s) "
                            f"{', '.join(unknown)}",
                    hint="fix the rule id; see `cgsim lint --help` or "
                         "docs/lint.md for the catalogue",
                ))
            if not ignore.rules or not ignore.reason:
                raw_findings.append(Finding(
                    path=display, line=ignore.line, col=1,
                    rule="lint-bare-ignore",
                    message="lint-ignore without "
                            + ("a [rule-id]" if not ignore.rules
                               else "a reason"),
                    hint="write `# cgsim: lint-ignore[rule-id] <why this "
                         "is intentional>`",
                ))
        for finding in file_findings:
            # A trailing comment on the finding line, or a comment-only
            # line directly above it, both silence the finding.
            ignore = ignores.get(finding.line)
            above = ignores.get(finding.line - 1)
            if above is not None and not above.own_line:
                above = None
            candidates = [c for c in (ignore, above) if c is not None]
            if any(c.reason and finding.rule in c.rules for c in candidates):
                suppressed += 1
            else:
                raw_findings.append(finding)

    resolved_baseline: Optional[Baseline] = None
    if isinstance(baseline, Baseline):
        resolved_baseline = baseline
    elif baseline == "auto":
        found = discover_baseline([Path(p) for p in paths])
        if found is not None:
            resolved_baseline = load_baseline(found)
    elif baseline is not None:
        resolved_baseline = load_baseline(Path(baseline))

    if resolved_baseline is not None:
        scanned = []
        for file in files:
            try:
                scanned.append(
                    file.resolve().relative_to(resolved_baseline.root).as_posix()
                )
            except ValueError:
                scanned.append(str(file))
        findings, absorbed, stale = resolved_baseline.apply(
            raw_findings, scanned=scanned
        )
    else:
        findings, absorbed, stale = sorted(raw_findings), 0, []

    return LintReport(
        findings=list(findings),
        files_scanned=len(files),
        suppressed=suppressed,
        baselined=absorbed,
        stale_baseline=stale,
        rules_run=[rule.id for rule in selected],
    )
