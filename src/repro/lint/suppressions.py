"""Per-line suppression comments: ``# cgsim: lint-ignore[rule-id] reason``.

A finding is silenced by an ignore comment either on the *same line* the
finding is reported at (trailing comment) or on a comment-only line
*directly above* it (for reasons too long to fit inline), naming the rule
id (or a comma-separated list of ids) in brackets, followed by a
free-text reason.  The reason is
mandatory: a bare ignore is itself reported as ``lint-bare-ignore``, and
an ignore naming a rule id the linter does not know is reported as
``lint-unknown-rule`` -- so suppressions stay accurate and
self-documenting.  Comments never reach the AST, so
parsing runs ``tokenize`` over the raw source and looks only at real
``COMMENT`` tokens -- a docstring *describing* the ignore syntax (like
this one) is never misread as a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["Suppression", "parse_suppressions"]

#: The ignore-comment grammar.  Group 1: the bracketed rule list (optional
#: so bare ``lint-ignore`` comments parse and get flagged); group 2: the
#: reason text.
_IGNORE = re.compile(
    r"#\s*cgsim:\s*lint-ignore(?:\[([^\]]*)\])?\s*(.*)$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed ignore comment: which rules it silences on which line.

    ``rules`` is the tuple of rule ids named in the brackets (empty for a
    malformed bare ignore), ``reason`` the free text after them, and
    ``own_line`` whether the comment stands alone (in which case it also
    covers findings on the next line).  The engine matches findings by
    ``(line, rule)`` and counts how many each suppression absorbed, so
    unused suppressions are observable.
    """

    line: int
    rules: Tuple[str, ...]
    reason: str
    own_line: bool = False


def parse_suppressions(source: str) -> Dict[int, Suppression]:
    """Extract every ignore comment from ``source``, keyed by line number.

    Only the textual grammar is validated here; rule-id existence and the
    mandatory-reason policy are enforced by the engine, which has the rule
    registry and turns violations into findings at the comment's location.
    """
    found: Dict[int, Suppression] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # The engine only parses files that already passed ast.parse, but
        # stay defensive for direct callers: no tokens, no suppressions.
        return found
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _IGNORE.search(token.string)
        if match is None:
            continue
        number = token.start[0]
        raw_rules = match.group(1) or ""
        rules = tuple(
            part.strip() for part in raw_rules.split(",") if part.strip()
        )
        reason = (match.group(2) or "").strip()
        own_line = token.line.strip().startswith("#")
        found[number] = Suppression(
            line=number, rules=rules, reason=reason, own_line=own_line
        )
    return found


def suppression_lines(source: str) -> List[int]:
    """Line numbers carrying an ignore comment (helper for tooling/tests)."""
    return sorted(parse_suppressions(source))
