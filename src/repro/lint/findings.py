"""Finding records and report rendering for the static analyzer.

A :class:`Finding` is one rule violation anchored to a ``file:line``
location; a :class:`LintReport` is the outcome of one engine run -- the
findings that survived suppression and baseline filtering, plus the
bookkeeping (files scanned, suppressions honoured, baseline coverage) the
CLI renders as text or ``--json``.  Findings are plain frozen dataclasses
so they sort stably, compare structurally in tests, and serialise without
custom encoders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Finding", "LintReport"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    Sort order is ``(path, line, col, rule)`` so reports group naturally by
    file.  ``message`` states what the rule saw; ``hint`` says how to fix
    it (or how to suppress it with a reason when the pattern is
    intentional).  ``path`` is kept exactly as the engine scanned it --
    relative paths in, relative paths out -- so output is stable across
    machines.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = field(default="", compare=False)

    @property
    def location(self) -> str:
        """The clickable ``file:line`` anchor used in text output."""
        return f"{self.path}:{self.line}"

    def to_dict(self) -> dict:
        """Plain-JSON view of the finding (the ``--json`` output row)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        """One text-report line: ``file:line:col: rule-id message``."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class LintReport:
    """Everything one engine run produced, ready for rendering or asserting.

    ``findings`` are the violations still standing after per-line
    suppressions and the baseline were applied -- a non-empty list means
    the run fails.  ``baselined`` counts findings absorbed by the baseline
    file, ``suppressed`` counts findings silenced by inline
    ``cgsim: lint-ignore`` comments, and ``stale_baseline`` lists baseline
    entries whose recorded count exceeds what the tree actually contains
    (the ratchet: shrink the baseline, never grow it).
    """

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0
    stale_baseline: List[str] = field(default_factory=list)
    rules_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing fails: no findings and no stale baseline."""
        return not self.findings and not self.stale_baseline

    def to_dict(self) -> dict:
        """Plain-JSON view of the whole report (the ``--json`` document)."""
        return {
            "ok": self.ok,
            "findings": [finding.to_dict() for finding in sorted(self.findings)],
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "stale_baseline": list(self.stale_baseline),
            "rules_run": list(self.rules_run),
        }

    def render(self) -> str:
        """Multi-line text report: findings, stale entries, then the summary."""
        lines: List[str] = []
        for finding in sorted(self.findings):
            lines.append(finding.render())
        for entry in self.stale_baseline:
            lines.append(f"stale baseline entry: {entry}")
        if self.stale_baseline:
            lines.append(
                "the baseline records more findings than the tree contains; "
                "shrink it with: cgsim lint --write-baseline"
            )
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        by_rule = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_scanned} file(s)"
            + (f" [{by_rule}]" if by_rule else "")
            + f"; {self.suppressed} suppressed, {self.baselined} baselined"
        )
        lines.append(summary)
        return "\n".join(lines)
