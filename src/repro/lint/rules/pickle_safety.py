"""Worker-boundary pickle-safety rule family: what crosses must pickle.

Everything handed to a worker process -- via
:class:`concurrent.futures.ProcessPoolExecutor`,
``multiprocessing.Process``, the experiment runner's ``parallel_map`` or a
:class:`repro.experiments.RunSpec` -- is pickled on the way out.  Lambdas
and functions defined inside another function do not pickle; under the
``spawn`` start method (the default on macOS/Windows, and what the
service's worker supervisor uses deliberately) the failure is a runtime
``PicklingError`` that unit tests running under ``fork`` never see.  This
family flags the non-portable callable at the call site that ships it.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule

__all__ = ["PickleSafetyRule"]

#: Executor/pool method names whose first positional argument is shipped
#: to a worker process.
_SUBMIT_METHODS = {"submit", "map", "starmap", "imap", "imap_unordered",
                   "apply", "apply_async", "map_async", "starmap_async"}

#: Dotted constructor paths that create process pools / processes.
_POOL_CONSTRUCTORS = {
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
}

#: Call names (resolved or bare) whose callable arguments cross a worker
#: boundary in this codebase's own published surfaces.
_SPAWN_FUNCTIONS = {
    "parallel_map", "repro.experiments.parallel_map",
    "repro.experiments.runner.parallel_map",
    "RunSpec", "repro.experiments.RunSpec", "repro.experiments.spec.RunSpec",
}


class PickleSafetyRule(Rule):
    """Lambdas and local functions must not cross a process boundary.

    Tracks process-pool objects through the file (names assigned from --
    or ``with ... as`` bound to -- ``ProcessPoolExecutor(...)`` /
    ``multiprocessing.Pool(...)``, plus a name heuristic for receivers
    called ``pool``/``executor``) and flags ``submit``/``map``-style calls
    whose shipped callable is a ``lambda``, a function defined inside the
    enclosing function (closures do not pickle), or a
    ``functools.partial`` wrapping either.  The same check applies to
    ``multiprocessing.Process(target=...)`` and to this codebase's own
    spawn surfaces: ``parallel_map`` and ``RunSpec``.  Module-level
    functions pickle by qualified name and pass; bound methods of picklable
    objects pass too (their failure modes are dynamic, not structural).
    """

    id = "pickle-unsafe-callable"
    family = "pickle"
    short = "lambda/closure handed across a process (spawn) boundary"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        pools = self._pool_names(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_call(ctx, node, pools)

    def _pool_names(self, ctx: FileContext) -> Set[str]:
        """Names statically bound to a process pool anywhere in the file."""
        pools: Set[str] = set()

        def is_pool_ctor(expr: ast.AST) -> bool:
            if not isinstance(expr, ast.Call):
                return False
            resolved = ctx.imports.resolve(expr.func)
            if resolved in _POOL_CONSTRUCTORS:
                return True
            return (isinstance(expr.func, ast.Name)
                    and expr.func.id == "ProcessPoolExecutor")

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and is_pool_ctor(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        pools.add(target.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if is_pool_ctor(item.context_expr) and isinstance(
                            item.optional_vars, ast.Name):
                        pools.add(item.optional_vars.id)
        return pools

    def _check_call(self, ctx: FileContext, node: ast.Call,
                    pools: Set[str]) -> Iterator[Finding]:
        func = node.func
        shipped: List[ast.AST] = []
        surface = ""
        if isinstance(func, ast.Attribute) and func.attr in _SUBMIT_METHODS:
            receiver = func.value
            receiver_name = receiver.id if isinstance(receiver, ast.Name) else ""
            looks_like_pool = (
                receiver_name in pools
                or "pool" in receiver_name.lower()
                or "executor" in receiver_name.lower()
            )
            if looks_like_pool and node.args:
                shipped = [node.args[0]]
                surface = f"{receiver_name or '<pool>'}.{func.attr}(...)"
        else:
            resolved = ctx.imports.resolve(func) or (
                func.id if isinstance(func, ast.Name) else None)
            if resolved in _SPAWN_FUNCTIONS:
                shipped = list(node.args) + [kw.value for kw in node.keywords]
                surface = f"{resolved.rsplit('.', 1)[-1]}(...)"
            elif resolved in ("multiprocessing.Process",
                              "multiprocessing.context.Process", "Process"):
                shipped = [kw.value for kw in node.keywords
                           if kw.arg == "target"]
                surface = "Process(target=...)"
        for arg in shipped:
            verdict = self._unpicklable(ctx, arg)
            if verdict:
                yield self.finding(
                    ctx, arg,
                    f"{verdict} handed to {surface} crosses a process "
                    "boundary and cannot be pickled under spawn",
                    "ship a module-level function (parameterise via "
                    "arguments or functools.partial over one) instead",
                )

    def _unpicklable(self, ctx: FileContext, arg: ast.AST) -> Optional[str]:
        """Why ``arg`` cannot cross a spawn boundary, or ``None`` if it can."""
        if isinstance(arg, ast.Lambda):
            return "lambda"
        if isinstance(arg, ast.Name):
            for scope in ctx.scope_chain(arg):
                if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    for stmt in ast.walk(scope):
                        if (isinstance(stmt, (ast.FunctionDef,
                                              ast.AsyncFunctionDef))
                                and stmt is not scope
                                and stmt.name == arg.id):
                            return f"locally-defined function {arg.id!r}"
            return None
        if isinstance(arg, ast.Call):
            resolved = ctx.imports.resolve(arg.func) or (
                arg.func.id if isinstance(arg.func, ast.Name) else None)
            if resolved in ("functools.partial", "partial"):
                for inner in list(arg.args) + [kw.value for kw in arg.keywords]:
                    verdict = self._unpicklable(ctx, inner)
                    if verdict:
                        return f"functools.partial over a {verdict}"
        return None
