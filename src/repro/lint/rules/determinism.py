"""Determinism rule family: global RNG, unordered iteration, wall clocks.

The reproduction's headline guarantee is bit-identical replay: the same
inputs produce the same events, metrics and checkpoint fingerprints on any
machine, under any ``PYTHONHASHSEED``, in any process.  Three source-level
patterns break that guarantee long before a test can catch them -- drawing
from process-global RNG state, letting hash-ordered iteration feed an
ordered decision, and reading the wall clock inside simulation logic.
This family is the scope-aware AST replacement for the grep-based RNG lint
that used to live in ``tests/test_state.py``: it tracks import aliases
(``import numpy.random as npr`` does not escape it) and local shadowing
(a parameter named ``random`` is not the stdlib module).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule

__all__ = [
    "DEFAULT_RNG_ALLOWLIST",
    "GlobalRngRule",
    "RandomImportRule",
    "SetIterationRule",
    "WallClockRule",
]

#: Module paths (relative to the package root, ``/``-separated) allowed to
#: touch global RNG state: the RNG utility itself constructs generators by
#: design, and the conformance checks read global state to catch plugins
#: that draw from it.
DEFAULT_RNG_ALLOWLIST: Tuple[str, ...] = (
    "repro/utils/rng.py",
    "repro/conformance/checks.py",
)


def _is_allowed(ctx: FileContext, allowlist: Sequence[str]) -> bool:
    normalized = ctx.path.replace("\\", "/")
    return any(normalized.endswith(entry) for entry in allowlist)


class GlobalRngRule(Rule):
    """Stochastic draws must flow through named ``repro.utils.rng`` streams.

    Any call reaching the process-global stdlib ``random`` module or
    ``numpy.random`` -- ``random.random()``, ``random.Random(0)``,
    ``np.random.rand()``, ``np.random.default_rng()``, ``np.random.seed()``
    -- either draws from or reseeds state shared by the whole process.
    Two runs of the "same" simulation then disagree whenever anything else
    (another component, a test, an imported library) touched that state in
    between, and checkpoint replay cannot reproduce the stream.  Every draw
    must come from a named stream handed down by
    :func:`repro.utils.rng.spawn_rng` / :class:`~repro.utils.rng.RandomSource`,
    which snapshot and restore with the simulation.  Resolution is
    alias-aware (``import numpy.random as npr`` is still caught) and
    scope-aware (a local variable named ``random`` is not the module).
    """

    id = "det-global-rng"
    family = "determinism"
    short = "call into global/ad-hoc RNG state (random.*, numpy.random.*)"

    def __init__(self, allowlist: Sequence[str] = DEFAULT_RNG_ALLOWLIST) -> None:
        self.allowlist = tuple(allowlist)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if _is_allowed(ctx, self.allowlist):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve(node.func)
            if resolved is None:
                continue
            root = resolved.split(".", 1)[0]
            if ctx.is_shadowed(root, node):
                continue
            if resolved == "random" or resolved.startswith("random."):
                yield self.finding(
                    ctx, node,
                    f"call into the process-global stdlib RNG ({resolved})",
                    "draw from a named stream: repro.utils.rng.spawn_rng / "
                    "RandomSource.generator(...)",
                )
            elif resolved.startswith("numpy.random."):
                yield self.finding(
                    ctx, node,
                    f"call into global/ad-hoc numpy RNG state ({resolved})",
                    "draw from a named stream: repro.utils.rng.spawn_rng / "
                    "RandomSource.generator(...)",
                )


class RandomImportRule(Rule):
    """The stdlib ``random`` module must not be imported outside the RNG layer.

    ``import random`` (or ``from random import ...``) is the gateway to
    process-global, hash-seed-entangled randomness: even a "harmless"
    ``random.choice`` in a helper makes replay depend on everything else
    that touched the interpreter-wide Mersenne state.  The only modules
    allowed to import it are the allow-listed RNG utility (which wraps it
    behind seeded, snapshot-aware streams) and the conformance checks
    (which read global state to police plugins).  Everything else receives
    its randomness as an injected generator.
    """

    id = "det-random-import"
    family = "determinism"
    short = "import of the stdlib random module outside the RNG layer"

    def __init__(self, allowlist: Sequence[str] = DEFAULT_RNG_ALLOWLIST) -> None:
        self.allowlist = tuple(allowlist)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if _is_allowed(ctx, self.allowlist):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx, node,
                            f"import of the stdlib random module "
                            f"('import {alias.name}')",
                            "accept a numpy Generator argument instead "
                            "(repro.utils.rng.spawn_rng)",
                        )
            elif isinstance(node, ast.ImportFrom) and not node.level:
                if node.module == "random" or (
                    node.module or "").startswith("random."):
                    yield self.finding(
                        ctx, node,
                        f"import from the stdlib random module "
                        f"('from {node.module} import ...')",
                        "accept a numpy Generator argument instead "
                        "(repro.utils.rng.spawn_rng)",
                    )


#: Call names whose iteration order over their argument is irrelevant.
_ORDER_INSENSITIVE = {"sorted", "len", "sum", "min", "max", "any", "all",
                      "frozenset", "set", "bool"}

#: ``set`` methods that return another set (propagate set-ness).
_SET_RETURNING_METHODS = {"union", "intersection", "difference",
                          "symmetric_difference", "copy"}


class SetIterationRule(Rule):
    """Ordered decisions must not consume ``set`` iteration order.

    ``set`` iteration order over strings (site names, dataset ids, plugin
    names) depends on ``PYTHONHASHSEED``: a loop, ``list(...)``,
    ``next(iter(...))`` or ``.pop()`` over a set is perfectly repeatable
    inside one interpreter and silently different in the next -- the class
    of bug only the conformance suite's subprocess hash-seed sweep could
    catch dynamically, and the hardest to bisect after the fact.  The rule
    tracks set-ness statically (literals, ``set()``/``frozenset()`` calls,
    comprehensions, set operators, annotated parameters, and local names
    assigned from any of those) and flags ordered consumers; wrap the set
    in ``sorted(...)`` to fix, which also documents the intended order.
    Order-insensitive consumers (``len``, ``min``, ``sum``, ``any``,
    membership tests) pass untouched.  ``dict`` views are insertion-ordered
    in supported Pythons and are deliberately not flagged -- the hazard is
    the *keys'* provenance, which this rule catches where the set is built.
    """

    id = "det-set-iter"
    family = "determinism"
    short = "iteration/pop over a set feeding an ordered decision"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        sets_by_scope: dict = {}

        def set_names(scope: Optional[ast.AST]) -> Set[str]:
            if scope not in sets_by_scope:
                sets_by_scope[scope] = _collect_set_names(ctx, scope)
            return sets_by_scope[scope]

        def is_set(expr: ast.AST, node: ast.AST) -> bool:
            return _is_set_expr(ctx, expr, node, set_names)

        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if is_set(node.iter, node):
                    yield self.finding(
                        ctx, node.iter,
                        "for-loop iterates over a set (hash-seed-dependent "
                        "order)",
                        "iterate over sorted(<set>) to pin the order",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp,
                                   ast.SetComp)):
                ordered = not isinstance(node, ast.SetComp)
                for gen in node.generators:
                    if ordered and is_set(gen.iter, node):
                        yield self.finding(
                            ctx, gen.iter,
                            "comprehension iterates over a set "
                            "(hash-seed-dependent order)",
                            "iterate over sorted(<set>) to pin the order",
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, is_set)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, (ast.Tuple, ast.List)) and is_set(
                            node.value, node):
                        yield self.finding(
                            ctx, node.value,
                            "unpacking a set assigns elements in "
                            "hash-seed-dependent order",
                            "unpack sorted(<set>) instead",
                        )

    def _check_call(self, ctx: FileContext, node: ast.Call,
                    is_set) -> Iterator[Finding]:
        func = node.func
        # <set>.pop() -- removes an arbitrary, hash-ordered element.
        if (isinstance(func, ast.Attribute) and func.attr == "pop"
                and not node.args and is_set(func.value, node)):
            yield self.finding(
                ctx, node,
                "set.pop() removes a hash-seed-dependent element",
                "choose the victim explicitly, e.g. min(<set>) or "
                "sorted(<set>)[0]",
            )
            return
        if not isinstance(func, ast.Name) or ctx.is_shadowed(func.id, node):
            return
        if func.id in ("list", "tuple", "iter", "enumerate", "reversed"):
            # iter(<set>) directly inside next(...) is reported (better) by
            # the next(iter(...)) branch below; don't double-report.
            parent = ctx.parents.get(node)
            if (func.id == "iter" and isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id == "next"):
                return
            if node.args and is_set(node.args[0], node):
                yield self.finding(
                    ctx, node,
                    f"{func.id}(...) materialises a set in "
                    "hash-seed-dependent order",
                    "use sorted(<set>) to pin the order",
                )
        elif func.id == "next":
            # next(iter(<set>)) -- "pick any element", hash-ordered.
            if (node.args and isinstance(node.args[0], ast.Call)
                    and isinstance(node.args[0].func, ast.Name)
                    and node.args[0].func.id == "iter"
                    and node.args[0].args
                    and is_set(node.args[0].args[0], node)):
                yield self.finding(
                    ctx, node,
                    "next(iter(<set>)) picks a hash-seed-dependent element",
                    "pick deterministically, e.g. min(<set>)",
                )


def _collect_set_names(ctx: FileContext, scope: Optional[ast.AST]) -> Set[str]:
    """Names bound to set-typed values within one scope (conservatively).

    A name counts only when *every* visible assignment to it in the scope
    is set-typed -- one non-set rebinding removes it, keeping false
    positives out at the cost of missing some true positives.
    """
    if scope is None:
        body = ctx.tree.body
    elif isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        body = scope.body
    else:
        return set()
    set_bound: Set[str] = set()
    other_bound: Set[str] = set()

    def shallow_literal_set(expr: ast.AST) -> bool:
        return isinstance(expr, (ast.Set, ast.SetComp)) or (
            isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset"))

    # Walk the scope's own statements without descending into nested
    # scopes: a `x = set(...)` inside another function must not make `x`
    # set-typed here.
    stack = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and (
                isinstance(node.targets[0], ast.Name)):
            name = node.targets[0].id
            if shallow_literal_set(node.value):
                set_bound.add(name)
            else:
                other_bound.add(name)
        elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name):
            if _annotation_is_set(node.annotation):
                set_bound.add(node.target.id)
            else:
                other_bound.add(node.target.id)
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        for arg in scope.args.args + scope.args.posonlyargs + scope.args.kwonlyargs:
            if arg.annotation is not None and _annotation_is_set(arg.annotation):
                set_bound.add(arg.arg)
    return set_bound - other_bound


def _annotation_is_set(annotation: ast.AST) -> bool:
    """True for ``set``/``frozenset``/``Set[...]``/``FrozenSet[...]`` annotations."""
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id in ("set", "frozenset", "Set", "FrozenSet",
                             "AbstractSet", "MutableSet")
    if isinstance(target, ast.Attribute):
        return target.attr in ("Set", "FrozenSet", "AbstractSet", "MutableSet")
    return False


def _is_set_expr(ctx: FileContext, expr: ast.AST, node: ast.AST,
                 set_names) -> bool:
    """Conservative static test: does ``expr`` evaluate to a set?"""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return not ctx.is_shadowed(func.id, node)
        if isinstance(func, ast.Attribute) and (
                func.attr in _SET_RETURNING_METHODS):
            return _is_set_expr(ctx, func.value, node, set_names)
        return False
    if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        return (_is_set_expr(ctx, expr.left, node, set_names)
                or _is_set_expr(ctx, expr.right, node, set_names))
    if isinstance(expr, ast.Name):
        scope_chain = ctx.scope_chain(node)
        scope = scope_chain[0] if scope_chain else None
        while isinstance(scope, ast.Lambda):
            # Lambdas cannot bind sets by assignment; look outward.
            remaining = ctx.scope_chain(scope)
            scope = remaining[0] if remaining else None
        return expr.id in set_names(scope) or expr.id in set_names(None)
    return False


#: Dotted call paths that read the wall clock.
_WALL_CLOCK_CALLS = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.today": "datetime.today()",
    "datetime.date.today": "date.today()",
}


class WallClockRule(Rule):
    """Simulation logic must read the simulated clock, never the wall clock.

    ``time.time()``, ``datetime.now()`` and friends leak the host's real
    time into the run: any decision, identifier, seed or recorded value
    derived from them differs on every execution, breaking replay and
    making checkpoint fingerprints unverifiable.  Simulation code reads
    ``env.now`` (the deterministic simulated clock); telemetry that
    genuinely measures *elapsed host effort* uses ``time.monotonic()`` /
    ``time.perf_counter()``, which this rule deliberately exempts -- those
    report durations alongside results without ever feeding back into
    simulation decisions.  Resolution is alias-aware, including
    ``from time import time`` and ``from datetime import datetime``.
    """

    id = "det-wall-clock"
    family = "determinism"
    short = "wall-clock read (time.time / datetime.now) in simulation logic"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve(node.func)
            if resolved is None:
                continue
            root = resolved.split(".", 1)[0]
            if ctx.is_shadowed(root, node):
                continue
            # ``from datetime import datetime`` resolves now() to
            # ``datetime.datetime.now`` already; plain ``datetime.now`` can
            # only appear via ``import datetime`` + ``datetime.now`` misuse.
            canonical = resolved
            if canonical in ("datetime.now", "datetime.utcnow", "datetime.today"):
                canonical = "datetime.datetime." + canonical.split(".", 1)[1]
            if canonical in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, node,
                    f"wall-clock read ({_WALL_CLOCK_CALLS[canonical]}) in "
                    "simulation logic",
                    "use the simulated clock (env.now); for host-effort "
                    "telemetry use time.monotonic()/perf_counter()",
                )
