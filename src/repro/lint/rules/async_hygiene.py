"""Async-hygiene rule family: no blocking calls on the event loop.

The service layer (:mod:`repro.service`) is a single-threaded asyncio
server: every coroutine shares one event loop, and one synchronous
``time.sleep`` or blocking file/subprocess call inside an ``async def``
freezes *every* session's long-polls, WebSocket streams and worker pumps
for its duration.  These bugs pass every fast unit test (the block is
milliseconds on a developer laptop) and surface only under production
load as mysterious latency cliffs -- exactly the class a static pass
catches for free.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule

__all__ = ["AsyncBlockingCallRule"]

#: Dotted call paths that block the calling thread.
_BLOCKING_CALLS = {
    "time.sleep": "asyncio.sleep (awaited)",
    "subprocess.run": "asyncio.create_subprocess_exec",
    "subprocess.call": "asyncio.create_subprocess_exec",
    "subprocess.check_call": "asyncio.create_subprocess_exec",
    "subprocess.check_output": "asyncio.create_subprocess_exec",
    "subprocess.getoutput": "asyncio.create_subprocess_exec",
    "subprocess.getstatusoutput": "asyncio.create_subprocess_exec",
    "subprocess.Popen": "asyncio.create_subprocess_exec",
    "os.system": "asyncio.create_subprocess_exec",
    "os.popen": "asyncio.create_subprocess_exec",
    "os.waitpid": "loop.run_in_executor",
    "socket.create_connection": "asyncio.open_connection",
    "socket.getaddrinfo": "loop.getaddrinfo",
    "urllib.request.urlopen": "an async HTTP client or loop.run_in_executor",
    "requests.get": "an async HTTP client or loop.run_in_executor",
    "requests.post": "an async HTTP client or loop.run_in_executor",
    "requests.request": "an async HTTP client or loop.run_in_executor",
}

#: Method names that perform synchronous file I/O on their receiver
#: (``pathlib.Path`` reads/writes being the common case in this codebase).
_BLOCKING_METHODS = {"read_text", "read_bytes", "write_text", "write_bytes"}


class AsyncBlockingCallRule(Rule):
    """``async def`` bodies must not call blocking synchronous primitives.

    Flags, directly inside any ``async def`` (nested synchronous ``def``
    bodies are exempt -- they may legitimately run in an executor):
    ``time.sleep``, the synchronous ``subprocess`` entry points,
    ``os.system``/``os.popen``, blocking socket constructors
    (``socket.create_connection``, ``socket.getaddrinfo``), synchronous
    HTTP fetches (``urllib.request.urlopen``, ``requests.*``), the builtin
    ``open``, and ``pathlib``-style ``read_text``/``write_bytes`` method
    calls.  Each blocks the one thread the whole event loop -- and with it
    every concurrent session -- runs on.  The fix hint names the async
    counterpart (``await asyncio.sleep``, ``asyncio.create_subprocess_exec``,
    ``loop.run_in_executor`` for irreducibly-synchronous work).
    """

    id = "async-blocking-call"
    family = "async"
    short = "blocking call (sleep/subprocess/file/socket) inside async def"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(ctx, node)

    def _check_async_body(self, ctx: FileContext,
                          coroutine: ast.AsyncFunctionDef) -> Iterator[Finding]:
        stack = list(coroutine.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                # A nested def is its own execution context; nested async
                # defs are visited by the outer walk anyway.
                continue
            stack.extend(ast.iter_child_nodes(node))
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve(node.func)
            if resolved is not None:
                root = resolved.split(".", 1)[0]
                if not ctx.is_shadowed(root, node) and (
                        resolved in _BLOCKING_CALLS):
                    yield self.finding(
                        ctx, node,
                        f"blocking call {resolved}(...) inside "
                        f"'async def {coroutine.name}'",
                        f"use {_BLOCKING_CALLS[resolved]} instead",
                    )
                    continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open" and (
                    not ctx.is_shadowed("open", node)):
                yield self.finding(
                    ctx, node,
                    f"blocking open(...) inside 'async def {coroutine.name}'",
                    "read/write the file via loop.run_in_executor, or "
                    "outside the coroutine",
                )
            elif isinstance(func, ast.Attribute) and (
                    func.attr in _BLOCKING_METHODS):
                yield self.finding(
                    ctx, node,
                    f"blocking file I/O .{func.attr}(...) inside "
                    f"'async def {coroutine.name}'",
                    "move the I/O off the event loop "
                    "(loop.run_in_executor) or out of the coroutine",
                )
