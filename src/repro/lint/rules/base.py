"""Shared AST machinery for lint rules: contexts, import maps, scopes.

Every rule sees a :class:`FileContext` -- the parsed tree plus the
pre-computed cross-references rules keep needing: parent links (``ast``
gives none), an alias-aware :class:`ImportMap` that resolves ``npr.seed``
back to ``numpy.random.seed`` through any chain of ``import``/``from``
aliases, and scope-aware shadow detection so a local variable or parameter
named ``random`` is never mistaken for the stdlib module.  Rules subclass
:class:`Rule` and yield :class:`~repro.lint.findings.Finding` objects from
``check``; the rule's docstring doubles as its documentation -- the first
line is the catalogue summary, the body is the rationale rendered into
``docs/lint.md`` by ``scripts/gen_lint_docs.py``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.findings import Finding

__all__ = ["FileContext", "ImportMap", "Rule"]

#: Node types that open a new variable scope.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


class ImportMap:
    """Alias-aware resolution of names back to their imported dotted origin.

    Built once per file from every ``import``/``from ... import``
    statement: ``import numpy.random as npr`` maps ``npr`` to
    ``numpy.random``; ``from numpy.random import default_rng as mk`` maps
    ``mk`` to ``numpy.random.default_rng``.  :meth:`resolve` walks a
    ``Name``/``Attribute`` chain and substitutes the origin, so call sites
    can match on canonical dotted paths no matter how the module was
    aliased in.  Names re-bound locally (parameters, assignments) are the
    caller's problem -- see :meth:`FileContext.is_shadowed`.
    """

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}

    def collect(self, tree: ast.AST) -> None:
        """Record every import binding found anywhere in ``tree``."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    origin = alias.name if alias.asname else bound
                    self.aliases[bound] = origin
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a ``Name``/``Attribute`` chain, if imported.

        Returns e.g. ``"numpy.random.default_rng"`` for ``npr.default_rng``
        after ``import numpy.random as npr``, or ``None`` when the chain
        does not start at an imported name (attribute access on ``self``,
        locals, call results, ...).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self.aliases.get(node.id)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))


class FileContext:
    """One scanned file: source, tree, and the cross-references rules share.

    Carries the display ``path`` (kept relative when the engine was given
    relative paths), the raw ``source`` and split ``lines``, the parsed
    ``tree``, parent links for upward walks, and the file's
    :class:`ImportMap`.  Built once per file by the engine and handed to
    every selected rule, so the per-file AST work is never repeated.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.imports = ImportMap()
        self.imports.collect(tree)
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def scope_chain(self, node: ast.AST) -> List[ast.AST]:
        """Enclosing scope nodes of ``node``, innermost first."""
        chain: List[ast.AST] = []
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, _SCOPE_NODES):
                chain.append(current)
            current = self.parents.get(current)
        return chain

    def is_shadowed(self, name: str, node: ast.AST) -> bool:
        """True when ``name`` is re-bound by an enclosing scope of ``node``.

        A parameter or local assignment named ``random`` means uses of
        ``random`` inside that function are *not* the stdlib module; rules
        must check this before trusting :meth:`ImportMap.resolve`.
        """
        for scope in self.scope_chain(node):
            if name in _local_bindings(scope):
                return True
        return False


def _local_bindings(scope: ast.AST) -> Set[str]:
    """Names bound locally by a function scope: parameters and assignments."""
    cached = getattr(scope, "_cgsim_bindings", None)
    if cached is not None:
        return cached
    bound: Set[str] = set()
    args = scope.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        bound.add(arg.arg)
    body = scope.body if isinstance(scope.body, list) else []
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, _SCOPE_NODES) and node is not stmt:
                continue
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    bound.update(_target_names(target))
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                bound.update(_target_names(node.target))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                bound.update(_target_names(node.target))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        bound.update(_target_names(item.optional_vars))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
    scope._cgsim_bindings = bound  # type: ignore[attr-defined]
    return bound


def _target_names(target: ast.AST) -> Set[str]:
    """Plain names bound by an assignment target (tuples recursed)."""
    names: Set[str] = set()
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names.update(_target_names(element))
    elif isinstance(target, ast.Starred):
        names.update(_target_names(target.value))
    return names


class Rule:
    """Base class every lint rule derives from.

    Subclasses set ``id`` (the stable kebab-case identifier suppression
    comments and ``--rule`` selections use), ``family`` (the rule group a
    whole family selection enables), and ``short`` (the one-line catalogue
    summary); the class docstring is the published rationale.  ``check``
    receives a :class:`FileContext` and yields findings; it must not
    mutate the context.
    """

    id: str = ""
    family: str = ""
    short: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every violation of this rule found in ``ctx``."""
        raise NotImplementedError  # pragma: no cover - abstract

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                hint: str = "") -> Finding:
        """Construct a finding for ``node`` at its source location."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
            hint=hint,
        )
