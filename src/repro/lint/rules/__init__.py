"""Rule registry: every lint rule, grouped into named families.

The registry is the single source of truth three consumers share: the
engine (which rules to run), the CLI (what ``--rule`` accepts -- rule ids
or whole family names), and the docs generator (``scripts/gen_lint_docs.py``
renders the catalogue in ``docs/lint.md`` from the rule docstrings
registered here).  Two engine-level pseudo-rules -- the suppression-hygiene
findings ``lint-bare-ignore`` and ``lint-unknown-rule`` -- are registered
as metadata so they appear in the catalogue and can be selected, even
though the engine itself emits them while parsing suppression comments.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.lint.rules.async_hygiene import AsyncBlockingCallRule
from repro.lint.rules.base import FileContext, ImportMap, Rule
from repro.lint.rules.determinism import (
    DEFAULT_RNG_ALLOWLIST,
    GlobalRngRule,
    RandomImportRule,
    SetIterationRule,
    WallClockRule,
)
from repro.lint.rules.pickle_safety import PickleSafetyRule
from repro.lint.rules.snapshot import SnapshotCoverageRule

__all__ = [
    "DEFAULT_RNG_ALLOWLIST",
    "FileContext",
    "ImportMap",
    "Rule",
    "RULE_FAMILIES",
    "all_rules",
    "select_rules",
]


class _BareIgnoreRule(Rule):
    """Suppression comments must say *why* the finding is intentional.

    A ``# cgsim: lint-ignore[rule-id]`` with no trailing reason silences a
    finding without recording the justification -- six months later nobody
    knows whether the pattern is still deliberate or just grandfathered.
    The engine turns every reason-less (or rule-less) ignore comment into
    a finding of its own, so suppressions stay self-documenting.  This
    rule cannot itself be suppressed.
    """

    id = "lint-bare-ignore"
    family = "hygiene"
    short = "lint-ignore comment without a reason"

    def check(self, ctx):  # pragma: no cover - emitted by the engine
        return iter(())


class _UnknownRuleRule(Rule):
    """Suppression comments must name rule ids the linter actually has.

    An ignore comment naming a misspelled or removed rule id suppresses
    nothing while looking like it does; the engine reports it so typos
    surface immediately instead of silently leaving the real finding
    active (or, worse, the comment rotting after a rule rename).  This
    rule cannot itself be suppressed.
    """

    id = "lint-unknown-rule"
    family = "hygiene"
    short = "lint-ignore comment naming an unknown rule id"

    def check(self, ctx):  # pragma: no cover - emitted by the engine
        return iter(())


class _ParseErrorRule(Rule):
    """Every scanned file must parse; a broken file hides all its findings.

    When ``ast.parse`` fails the engine reports the syntax error as a
    finding at its location instead of crashing the run -- the rest of the
    tree still gets linted, and the broken file is impossible to miss.
    Nothing else in an unparseable file is checked, so this finding can
    mask others until the syntax is fixed.  This rule cannot be
    suppressed.
    """

    id = "lint-parse-error"
    family = "hygiene"
    short = "file fails to parse (nothing in it was checked)"

    def check(self, ctx):  # pragma: no cover - emitted by the engine
        return iter(())


#: Every rule family, in catalogue order, mapping to its rule instances.
RULE_FAMILIES: Dict[str, List[Rule]] = {
    "determinism": [
        GlobalRngRule(),
        RandomImportRule(),
        SetIterationRule(),
        WallClockRule(),
    ],
    "snapshot": [SnapshotCoverageRule()],
    "async": [AsyncBlockingCallRule()],
    "pickle": [PickleSafetyRule()],
    "hygiene": [_BareIgnoreRule(), _UnknownRuleRule(), _ParseErrorRule()],
}


def all_rules() -> List[Rule]:
    """Every registered rule instance, iterated in catalogue (family) order.

    This is the default selection the engine runs when ``--rule`` names
    nothing, and the iteration order the docs generator renders the rule
    catalogue in -- determinism first, then snapshot, async, pickle, and
    the engine's own hygiene pseudo-rules last.
    """
    return [rule for rules in RULE_FAMILIES.values() for rule in rules]


def known_rule_ids() -> List[str]:
    """Every registered rule id, in family order."""
    return [rule.id for rule in all_rules()]


def select_rules(selection: Sequence[str]) -> List[Rule]:
    """Resolve ``--rule`` selections (rule ids or family names) to rules.

    An empty selection means *everything*.  Unknown tokens raise
    ``ValueError`` naming the known families and ids, so a typo in CI
    configuration fails loudly instead of silently linting nothing.
    """
    if not selection:
        return all_rules()
    by_id = {rule.id: rule for rule in all_rules()}
    chosen: List[Rule] = []
    for token in selection:
        if token in RULE_FAMILIES:
            for rule in RULE_FAMILIES[token]:
                if rule not in chosen:
                    chosen.append(rule)
        elif token in by_id:
            if by_id[token] not in chosen:
                chosen.append(by_id[token])
        else:
            raise ValueError(
                f"unknown rule or family {token!r}; families: "
                f"{sorted(RULE_FAMILIES)}, rules: {sorted(by_id)}"
            )
    return chosen
