"""Snapshot-completeness rule family: static coverage of checkpoint state.

PR 6's checkpoint layer verifies replay *dynamically*: ``diff_states``
compares every component snapshot against the replayed tree and raises on
divergence.  That check can only see state the component's ``snapshot()``
actually captures -- a mutable field the author forgot to include is
invisible to it, and the resulting checkpoint silently under-describes the
simulation.  This family is the static complement: for every class that
implements the :class:`repro.state.Snapshottable` pair it proves each
piece of *mutable* per-instance state is at least mentioned by the
snapshot/restore implementation, and flags the ones that fell through.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule

__all__ = ["SnapshotCoverageRule"]

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append", "appendleft", "add", "insert", "extend", "extendleft",
    "remove", "discard", "pop", "popleft", "popitem", "push", "put",
    "update", "clear", "setdefault", "rotate", "sort", "reverse",
}


def _self_attr(node: ast.AST) -> Optional[str]:
    """Attribute name when ``node`` is ``self.<name>``, else ``None``."""
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
                stmt.name == name):
            return stmt
    return None


def _param_names(fn: ast.FunctionDef) -> Set[str]:
    args = fn.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


class SnapshotCoverageRule(Rule):
    """Every mutable field of a ``Snapshottable`` class must be snapshotted.

    For each class defining the ``snapshot(self)`` / ``restore(self,
    state)`` pair, the rule gathers its per-instance fields (``__slots__``
    entries plus ``self.x = ...`` assignments in ``__init__``) and keeps
    only the *mutable simulation state*: fields the class reassigns,
    augments, subscript-assigns or calls an in-place mutator on
    (``append``/``add``/``put``/...) outside ``__init__``.  Fields bound
    once from a constructor parameter or never mutated afterwards are
    configuration, not state, and are exempt.  Each surviving field must be
    mentioned inside ``snapshot``/``restore`` -- as a ``self.<field>``
    access or as a string key (leading underscores ignored, so
    ``self._now`` matched by ``"now"``).  Unmentioned fields produce one
    finding per class listing them all, anchored at the ``snapshot``
    definition.  Replay-derived designs that *deliberately* rebuild a field
    instead of serialising it (the kernel calendar, site queues) suppress
    with a reason -- which is exactly the documentation the next reader
    needs.
    """

    id = "snap-field-coverage"
    family = "snapshot"
    short = "mutable field missing from a Snapshottable snapshot/restore"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        snapshot = _method(cls, "snapshot")
        restore = _method(cls, "restore")
        if snapshot is None or restore is None:
            return
        if len(snapshot.args.args) != 1 or snapshot.args.posonlyargs:
            # A snapshot(self, extra...) is a different concept, not the
            # Snapshottable protocol.
            return
        fields = self._fields(cls)
        if not fields:
            return
        config = self._parameter_bound(cls)
        mutated = self._mutated_fields(cls)
        mentioned = self._mentions(snapshot) | self._mentions(restore)
        missing = sorted(
            field for field in fields
            if field not in config
            and field in mutated
            and field.lstrip("_") not in mentioned
            and field not in mentioned
        )
        if missing:
            yield self.finding(
                ctx, snapshot,
                f"class {cls.name}: mutable field(s) "
                f"{', '.join(missing)} never mentioned in snapshot()/restore()",
                "capture the field in snapshot(), verify it in restore(), "
                "or suppress with the reason it is replay-derived",
            )

    def _fields(self, cls: ast.ClassDef) -> Set[str]:
        """Per-instance fields: ``__slots__`` strings + ``__init__`` targets."""
        fields: Set[str] = set()
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "__slots__":
                        for element in getattr(stmt.value, "elts", []):
                            if isinstance(element, ast.Constant) and isinstance(
                                    element.value, str):
                                fields.add(element.value)
        init = _method(cls, "__init__")
        if init is not None:
            for node in ast.walk(init):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        name = _self_attr(target)
                        if name:
                            fields.add(name)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    name = _self_attr(node.target)
                    if name:
                        fields.add(name)
        return {f for f in fields if not f.startswith("__")}

    def _parameter_bound(self, cls: ast.ClassDef) -> Set[str]:
        """Fields assigned directly from an ``__init__`` parameter (config)."""
        init = _method(cls, "__init__")
        if init is None:
            return set()
        params = _param_names(init)
        bound: Set[str] = set()
        for node in ast.walk(init):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                name = _self_attr(node.targets[0])
                if name and isinstance(node.value, ast.Name) and (
                        node.value.id in params):
                    bound.add(name)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                name = _self_attr(node.target)
                if name and isinstance(node.value, ast.Name) and (
                        node.value.id in params):
                    bound.add(name)
        return bound

    def _mutated_fields(self, cls: ast.ClassDef) -> Set[str]:
        """Fields the class mutates outside ``__init__`` (real state)."""
        mutated: Set[str] = set()
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name == "__init__":
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        self._mutation_target(target, mutated)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    self._mutation_target(node.target, mutated)
                elif isinstance(node, ast.Call):
                    func = node.func
                    if isinstance(func, ast.Attribute) and (
                            func.attr in _MUTATOR_METHODS):
                        name = _self_attr(func.value)
                        if name:
                            mutated.add(name)
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        self._mutation_target(target, mutated)
        return mutated

    def _mutation_target(self, target: ast.AST, mutated: Set[str]) -> None:
        name = _self_attr(target)
        if name:
            mutated.add(name)
            return
        # self.x[...] = ... / del self.x[...] mutate the container self.x.
        if isinstance(target, ast.Subscript):
            name = _self_attr(target.value)
            if name:
                mutated.add(name)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._mutation_target(element, mutated)

    def _mentions(self, fn: ast.FunctionDef) -> Set[str]:
        """Names a method body mentions: ``self.<x>`` reads and string keys."""
        mentioned: Set[str] = set()
        for node in ast.walk(fn):
            name = _self_attr(node)
            if name:
                mentioned.add(name)
                mentioned.add(name.lstrip("_"))
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                mentioned.add(node.value)
        return mentioned
