"""Static determinism & correctness analyzer for the whole stack.

``repro.lint`` is an AST-based analyzer (stdlib ``ast`` only) that
enforces, *before* any test runs, the guarantees the rest of the
reproduction enforces dynamically: bit-identical replay (PR 6's
checkpoints), hash-seed-independent plugins (PR 8's conformance suite)
and responsive service sessions (PR 9's asyncio server).  Rules are
grouped into named families --

* **determinism** -- global/ad-hoc RNG use, hash-ordered ``set``
  iteration feeding ordered decisions, wall-clock reads in simulation
  logic; the scope- and alias-aware replacement for the grep-based RNG
  lint that used to live in the test suite;
* **snapshot** -- mutable fields of ``Snapshottable`` classes missing
  from their ``snapshot()``/``restore()`` (the static complement of the
  checkpoint layer's ``diff_states`` runtime verification);
* **async** -- blocking calls (``time.sleep``, synchronous subprocess /
  socket / file I/O) inside ``async def`` bodies;
* **pickle** -- lambdas and closures handed across process-spawn
  boundaries (executors, ``parallel_map``, ``RunSpec``);
* **hygiene** -- suppression comments without a reason or naming unknown
  rule ids, and unparseable files.

Exposed as ``cgsim lint [PATHS] [--rule ...] [--json] [--baseline ...]``
and as the ``--lint`` static pass of ``cgsim conformance run``; CI runs
it over ``src/repro`` with zero findings required.  Intentional patterns
are suppressed per line with ``# cgsim: lint-ignore[rule-id] reason``
(the reason is mandatory), and a committed ``lint-baseline.json`` with a
shrink-only ratchet absorbs the deliberately-broken conformance demo
plugins.  See ``docs/lint.md`` for the full rule catalogue.
"""

from repro.lint.baseline import Baseline, discover_baseline, load_baseline
from repro.lint.engine import collect_files, run_lint
from repro.lint.findings import Finding, LintReport
from repro.lint.rules import (
    DEFAULT_RNG_ALLOWLIST,
    RULE_FAMILIES,
    Rule,
    all_rules,
    select_rules,
)
from repro.lint.suppressions import Suppression, parse_suppressions

__all__ = [
    "Baseline",
    "DEFAULT_RNG_ALLOWLIST",
    "Finding",
    "LintReport",
    "RULE_FAMILIES",
    "Rule",
    "Suppression",
    "all_rules",
    "collect_files",
    "discover_baseline",
    "load_baseline",
    "parse_suppressions",
    "run_lint",
    "select_rules",
]
