"""The committed findings baseline and its one-way ratchet.

A baseline lets intentionally-unfixable findings (the deliberately broken
conformance demo plugins being the canonical case) land without blocking
CI, while still failing the build the moment anyone adds a *new* finding.
The file is plain JSON mapping ``"rule-id::path"`` to a count; paths are
stored ``/``-separated and relative to the baseline file's own directory,
so the file is portable across checkouts.  The ratchet is enforced in
both directions: findings beyond a key's count fail the run, and a key
whose count exceeds what the tree actually contains is reported as
*stale* -- the baseline may only shrink, and ``cgsim lint
--write-baseline`` rewrites it from the current findings when it does.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.findings import Finding

__all__ = ["Baseline", "load_baseline", "discover_baseline"]

#: Default file name looked up by :func:`discover_baseline`.
BASELINE_FILENAME = "lint-baseline.json"

_FORMAT = "cgsim-lint-baseline/1"


class Baseline:
    """In-memory view of a baseline file: entry counts plus its anchor dir.

    ``entries`` maps ``"rule::relative/path.py"`` to the number of findings
    the baseline absorbs for that rule in that file; ``root`` is the
    directory paths are relative to (the baseline file's directory, or the
    current directory for a fresh in-memory baseline).
    """

    def __init__(self, entries: Optional[Dict[str, int]] = None,
                 root: Optional[Path] = None) -> None:
        self.entries: Dict[str, int] = dict(entries or {})
        self.root = (root or Path.cwd()).resolve()

    def key_for(self, finding: Finding) -> str:
        """The baseline key a finding files under: ``rule::relative-path``."""
        path = Path(finding.path)
        resolved = path if path.is_absolute() else Path.cwd() / path
        try:
            relative = resolved.resolve().relative_to(self.root)
        except ValueError:
            relative = path
        return f"{finding.rule}::{relative.as_posix()}"

    def apply(
        self,
        findings: Iterable[Finding],
        scanned: Optional[Iterable[str]] = None,
    ) -> Tuple[List[Finding], int, List[str]]:
        """Split findings into (new, absorbed-count, stale-entries).

        For each baseline key the first ``count`` findings (in source
        order) are absorbed; the rest are new and fail the run.  Keys whose
        recorded count exceeds the tree's actual findings come back in the
        stale list -- the ratchet demanding the baseline shrink.
        ``scanned`` (root-relative ``/``-separated paths) limits the
        ratchet to files this run actually looked at: linting a subtree
        must not demand the baseline shrink for files outside it.
        """
        remaining = dict(self.entries)
        new: List[Finding] = []
        absorbed = 0
        for finding in sorted(findings):
            key = self.key_for(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                absorbed += 1
            else:
                new.append(finding)
        covered = None if scanned is None else set(scanned)
        stale = [
            f"{key} (recorded {self.entries[key]}, {self.entries[key] - left} found)"
            for key, left in sorted(remaining.items())
            if left > 0 and (
                covered is None or key.split("::", 1)[1] in covered)
        ]
        return new, absorbed, stale

    @classmethod
    def from_findings(cls, findings: Iterable[Finding],
                      root: Path) -> "Baseline":
        """Build the baseline that exactly absorbs ``findings``."""
        baseline = cls(root=root)
        for finding in findings:
            key = baseline.key_for(finding)
            baseline.entries[key] = baseline.entries.get(key, 0) + 1
        return baseline

    def dump(self, path: Path) -> None:
        """Write the baseline to ``path`` as stable, diff-friendly JSON."""
        document = {
            "format": _FORMAT,
            "entries": {key: self.entries[key] for key in sorted(self.entries)},
        }
        path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> Baseline:
    """Load a baseline file, refusing unknown formats with a clear error."""
    document = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(document, dict) or document.get("format") != _FORMAT:
        raise ValueError(
            f"{path} is not a cgsim lint baseline (expected format "
            f"{_FORMAT!r}, got {document.get('format')!r})"
        )
    entries = document.get("entries", {})
    if not all(isinstance(v, int) and v >= 0 for v in entries.values()):
        raise ValueError(f"{path} has non-integer baseline counts")
    return Baseline(entries=entries, root=path.resolve().parent)


def discover_baseline(paths: Iterable[Path]) -> Optional[Path]:
    """Find the nearest committed baseline for a set of scanned paths.

    Walks up from the first scanned path through its ancestors (nearest
    wins -- a baseline next to the scanned tree beats one further out),
    then falls back to the current directory.  Returns ``None`` when no
    baseline exists (zero-tolerance mode).
    """
    candidates: List[Path] = []
    for scanned in paths:
        resolved = scanned.resolve()
        start = resolved if resolved.is_dir() else resolved.parent
        candidates.append(start)
        candidates.extend(start.parents)
        break
    candidates.append(Path.cwd())
    seen = set()
    for directory in candidates:
        if directory in seen:
            continue
        seen.add(directory)
        candidate = directory / BASELINE_FILENAME
        if candidate.is_file():
            return candidate
    return None
