"""Blocking client of the simulation service: HTTP calls + WS event watch.

:class:`ServiceClient` is the reference consumer of the service API --
``cgsim client`` drives it from the command line, the in-process test
harness (:mod:`repro.service.harness`) hands one to every test, and the
throughput benchmark submits its fleet through it.  It is deliberately
synchronous and dependency-free: plain :mod:`http.client` for the REST
endpoints and a small socket-level WebSocket client (built on the same
sans-IO codec in :mod:`repro.service.wire` the server uses) for
:meth:`watch`.  Server-side :class:`~repro.service.models.ServiceError`
responses are re-raised client-side with their status and details intact.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import socket
import struct
from typing import Any, Dict, Iterator, List, Optional, Union
from urllib.parse import urlencode

from repro.service import wire
from repro.service.models import (
    ErrorMessage,
    ResultMessage,
    ServiceError,
    WsMessage,
    parse_ws_message,
)

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to one running service at ``host:port`` (see module docstring).

    Every call opens a fresh connection (the server is ``Connection:
    close``), so a client instance is cheap, stateless and safe to share
    across threads -- the concurrency tests submit from many threads
    through one instance.  ``timeout`` bounds each socket operation;
    long-polling :meth:`wait` extends it by the poll window.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    # -- REST ------------------------------------------------------------

    def health(self) -> dict:
        """``GET /v1/healthz``: liveness plus queue/worker headcounts."""
        return self._request("GET", "/v1/healthz")

    def submit(
        self,
        pack: dict,
        *,
        priority: int = 0,
        checkpoint_every: Union[float, str, None] = None,
        label: Optional[str] = None,
    ) -> dict:
        """``POST /v1/sessions``: queue a pack, return the session view."""
        body: Dict[str, Any] = {"pack": pack, "priority": priority}
        if checkpoint_every is not None:
            body["checkpoint_every"] = checkpoint_every
        if label is not None:
            body["label"] = label
        return self._request("POST", "/v1/sessions", body=body)

    def sessions(self) -> List[dict]:
        """``GET /v1/sessions``: every session view, in submission order."""
        return self._request("GET", "/v1/sessions")["sessions"]

    def status(self, session_id: str) -> dict:
        """``GET /v1/sessions/{id}``: the current session view."""
        return self._request("GET", f"/v1/sessions/{session_id}")

    def wait(self, session_id: str, states: str = "terminal", timeout: float = 30.0) -> dict:
        """Long-poll until the session reaches one of ``states`` (no sleeps).

        ``states`` is a comma-separated list of session states or the
        ``terminal`` alias.  Returns the view with ``wait_satisfied`` set;
        raises :class:`ServiceError` when the verdict is negative so tests
        fail loudly instead of asserting on a stale view.
        """
        query = urlencode({"wait": states, "timeout": timeout})
        view = self._request(
            "GET", f"/v1/sessions/{session_id}?{query}",
            read_timeout=self.timeout + timeout,
        )
        if not view.get("wait_satisfied"):
            raise ServiceError(
                f"session {session_id} did not reach {states!r} within "
                f"{timeout}s (state: {view.get('state')})",
                status=409,
            )
        return view

    def pause(self, session_id: str) -> dict:
        """``POST /v1/sessions/{id}/pause``: checkpoint-and-yield the run."""
        return self._request("POST", f"/v1/sessions/{session_id}/pause")

    def resume(self, session_id: str) -> dict:
        """``POST /v1/sessions/{id}/resume``: re-queue a paused session."""
        return self._request("POST", f"/v1/sessions/{session_id}/resume")

    def stop(self, session_id: str) -> dict:
        """``POST /v1/sessions/{id}/stop``: stop the session (idempotent)."""
        return self._request("POST", f"/v1/sessions/{session_id}/stop")

    def finalize(self, session_id: str) -> dict:
        """``POST /v1/sessions/{id}/finalize``: the full result document."""
        return self._request("POST", f"/v1/sessions/{session_id}/finalize")

    def hold(self) -> dict:
        """``POST /v1/queue/hold``: freeze dispatch (testing hook)."""
        return self._request("POST", "/v1/queue/hold")

    def release(self) -> dict:
        """``POST /v1/queue/release``: thaw dispatch and drain the queue."""
        return self._request("POST", "/v1/queue/release")

    def _request(self, method: str, path: str, body: Optional[dict] = None,
                 read_timeout: Optional[float] = None) -> dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=read_timeout or self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body).encode("utf-8")
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            document = json.loads(response.read().decode("utf-8"))
        finally:
            conn.close()
        if response.status >= 400:
            raise ServiceError(
                document.get("error", f"HTTP {response.status}"),
                status=response.status,
                details=document.get("details"),
            )
        return document

    # -- WebSocket -------------------------------------------------------

    def watch(self, session_id: str, *, until_terminal: bool = True) -> Iterator[WsMessage]:
        """Subscribe to ``/v1/sessions/{id}/events`` and yield messages.

        New subscribers receive the session's full message history first
        (the server replays it), then live events -- so a watcher attached
        after the run ended still sees every state/checkpoint/result
        message, which is what makes event-based tests deterministic.
        With ``until_terminal`` the generator closes the socket and ends
        after the ``result`` or ``error`` message.
        """
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        try:
            self._ws_handshake(sock, f"/v1/sessions/{session_id}/events")
            while True:
                frame = self._read_frame(sock)
                if frame is None:
                    return
                opcode, payload = frame
                if opcode == wire.OP_CLOSE:
                    return
                if opcode == wire.OP_PONG:
                    continue
                if opcode == wire.OP_PING:
                    sock.sendall(
                        wire.encode_frame(payload, opcode=wire.OP_PONG, mask=True)
                    )
                    continue
                message = parse_ws_message(payload.decode("utf-8"))
                yield message
                if until_terminal and isinstance(message, (ResultMessage, ErrorMessage)):
                    sock.sendall(
                        wire.encode_frame(b"", opcode=wire.OP_CLOSE, mask=True)
                    )
                    return
        finally:
            sock.close()

    def _ws_handshake(self, sock: socket.socket, path: str) -> None:
        key = base64.b64encode(os.urandom(16)).decode("latin-1")
        request = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Upgrade: websocket\r\nConnection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\nSec-WebSocket-Version: 13\r\n\r\n"
        )
        sock.sendall(request.encode("latin-1"))
        status_line = self._read_line(sock)
        if b" 101 " not in status_line:
            raise ServiceError(
                f"websocket handshake refused: {status_line.decode('latin-1').strip()}",
                status=502,
            )
        accept = None
        while True:
            line = self._read_line(sock)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "sec-websocket-accept":
                accept = value.strip()
        if accept != wire.websocket_accept(key):
            raise ServiceError("websocket handshake accept-key mismatch", status=502)

    def _read_line(self, sock: socket.socket) -> bytes:
        line = bytearray()
        while not line.endswith(b"\n"):
            chunk = sock.recv(1)
            if not chunk:
                break
            line.extend(chunk)
        return bytes(line)

    def _read_exact(self, sock: socket.socket, count: int) -> Optional[bytes]:
        data = bytearray()
        while len(data) < count:
            chunk = sock.recv(count - len(data))
            if not chunk:
                return None
            data.extend(chunk)
        return bytes(data)

    def _read_frame(self, sock: socket.socket):
        head = self._read_exact(sock, 2)
        if head is None:
            return None
        opcode, masked, length_code = wire.parse_frame_header(head)
        if length_code == 126:
            (length,) = struct.unpack("!H", self._read_exact(sock, 2))
        elif length_code == 127:
            (length,) = struct.unpack("!Q", self._read_exact(sock, 8))
        else:
            length = length_code
        mask_key = self._read_exact(sock, 4) if masked else b""
        payload = self._read_exact(sock, length) if length else b""
        if payload is None or (masked and mask_key is None):
            return None
        if masked:
            payload = wire.unmask(payload, mask_key)
        return opcode, payload
