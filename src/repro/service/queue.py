"""Priority job queue and per-session records of the simulation service.

The queue is the multi-tenant heart of the server: every submitted scenario
pack becomes a :class:`JobRecord`, and :class:`JobQueue` decides which
record the next free worker runs.  Ordering is **strict priority, FIFO
within a priority**: the heap key is ``(-priority, submit_seq)``, where
``submit_seq`` is the global submission sequence number -- so a session
that pauses and resumes keeps its original queue position among its peers.
Removal (pause/stop of a queued session) is lazy: the entry stays in the
heap and is skipped at pop time, which keeps every operation O(log n).

The queue itself is plain data with no locking -- the server only touches
it from the event-loop thread, which is the service's single-writer
concurrency rule.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.service.models import SessionView

__all__ = ["JobRecord", "JobQueue"]


@dataclass
class JobRecord:
    """Everything the server knows about one submitted session.

    The mutable server-side counterpart of the wire-level
    :class:`~repro.service.models.SessionView` (which :meth:`view` renders):
    the validated pack dict, queue bookkeeping (priority, sequence numbers,
    attempts), the latest checkpoint digest crash recovery resumes from,
    live progress/metrics snapshots, and -- once terminal -- the result
    document.
    """

    id: str
    pack: Dict[str, Any]
    priority: int = 0
    submit_seq: int = 0
    label: Optional[str] = None
    checkpoint_every: Optional[float] = None
    state: str = "queued"
    dispatch_seq: Optional[int] = None
    attempts: int = 0
    worker: Optional[int] = None
    worker_pid: Optional[int] = None
    checkpoints: int = 0
    latest_checkpoint: Optional[str] = None
    progress: Optional[dict] = None
    metrics: Optional[dict] = None
    result: Optional[dict] = None
    error: Optional[str] = None
    error_detail: Optional[str] = None
    stop_requested: bool = False
    pause_requested: bool = False
    finalized: bool = False
    event_seq: int = 0
    waiters: List[Any] = field(default_factory=list, repr=False)

    @property
    def terminal(self) -> bool:
        """Whether the session reached ``done``, ``stopped`` or ``failed``."""
        return self.state in ("done", "stopped", "failed")

    def next_seq(self) -> int:
        """Allocate the next per-session WS message sequence number."""
        self.event_seq += 1
        return self.event_seq

    def view(self, wait_satisfied: Optional[bool] = None) -> SessionView:
        """Render the record as its wire-level status document."""
        result = self.result or {}
        return SessionView(
            id=self.id,
            state=self.state,
            priority=self.priority,
            submit_seq=self.submit_seq,
            label=self.label,
            dispatch_seq=self.dispatch_seq,
            attempts=self.attempts,
            worker_pid=self.worker_pid,
            checkpoints=self.checkpoints,
            latest_checkpoint=self.latest_checkpoint,
            progress=self.progress,
            metrics=self.metrics,
            fingerprint=result.get("fingerprint"),
            simulated_time=result.get("simulated_time"),
            stopped_reason=result.get("stopped_reason"),
            error=self.error,
            finalized=self.finalized,
            wait_satisfied=wait_satisfied,
        )


class JobQueue:
    """Strict-priority, FIFO-within-priority queue of runnable records.

    ``push`` enqueues a record under ``(-priority, submit_seq)``; ``pop``
    returns the next record whose state is still ``queued`` (lazily
    discarding entries that were paused or stopped while waiting).  A record
    re-pushed after pause keeps its original ``submit_seq``, so resuming
    never lets a session jump its peers.
    """

    def __init__(self) -> None:
        self._heap: List[tuple] = []

    def __len__(self) -> int:
        return sum(1 for _, _, record in self._heap if record.state == "queued")

    def push(self, record: JobRecord) -> None:
        """Enqueue a record (its state must already be ``queued``)."""
        heapq.heappush(self._heap, (-record.priority, record.submit_seq, record))

    def pop(self) -> Optional[JobRecord]:
        """Next queued record by (priority desc, submission order), or None."""
        while self._heap:
            _, _, record = heapq.heappop(self._heap)
            if record.state == "queued":
                return record
        return None

    def peek(self) -> Optional[JobRecord]:
        """Like :meth:`pop` without removing the record."""
        while self._heap:
            _, _, record = self._heap[0]
            if record.state == "queued":
                return record
            heapq.heappop(self._heap)
        return None
