"""Simulation-as-a-service: the multi-tenant session server layer.

This package turns the reproduction's scenario runner into a long-lived
service: an asyncio HTTP + WebSocket server (:mod:`repro.service.server`)
accepts scenario-pack submissions, validates them against the published
JSON Schema, queues them with strict-priority / FIFO-within-priority
ordering (:mod:`repro.service.queue`) and executes them on a bounded pool
of spawned worker processes (:mod:`repro.service.supervisor` /
:mod:`repro.service.workers`).  Workers drive each study through the
checkpoint loop of :mod:`repro.state`, writing periodic blobs into a
content-addressed :class:`ArtifactStore` -- so a SIGKILLed worker's study
resumes from its latest checkpoint on another worker with a bit-identical
final :func:`~repro.state.fingerprint_result`, and a paused session can
resume on a different process, or a different host sharing the store.

Clients consume it through :class:`ServiceClient` (blocking REST + WS
watch; ``cgsim serve`` / ``cgsim client`` wrap it on the command line),
and tests boot the whole stack in-process through
:class:`ServiceUnderTest` -- real sockets, real worker processes, zero
sleeps.  Every wire document is a dataclass in
:mod:`repro.service.models` whose JSON Schema is generated from the class
itself; ``docs/service.md`` embeds the generated WebSocket message
reference.
"""

from repro.service.client import ServiceClient
from repro.service.harness import ServiceUnderTest, tiny_pack
from repro.service.models import (
    SESSION_STATES,
    WS_MESSAGE_TYPES,
    CheckpointMessage,
    ErrorMessage,
    ProgressMessage,
    ResultMessage,
    ServiceError,
    SessionView,
    StateMessage,
    SubmitRequest,
    WsMessage,
    parse_ws_message,
    ws_message_reference,
)
from repro.service.queue import JobQueue, JobRecord
from repro.service.server import ServiceConfig, ServiceServer
from repro.service.store import ArtifactError, ArtifactStore
from repro.service.supervisor import WorkerSupervisor

__all__ = [
    "ServiceServer",
    "ServiceConfig",
    "ServiceClient",
    "ServiceUnderTest",
    "tiny_pack",
    "ServiceError",
    "SubmitRequest",
    "SessionView",
    "WsMessage",
    "StateMessage",
    "ProgressMessage",
    "CheckpointMessage",
    "ResultMessage",
    "ErrorMessage",
    "parse_ws_message",
    "ws_message_reference",
    "WS_MESSAGE_TYPES",
    "SESSION_STATES",
    "JobQueue",
    "JobRecord",
    "WorkerSupervisor",
    "ArtifactStore",
    "ArtifactError",
]
