"""Worker-process pool supervision for the simulation service.

:class:`WorkerSupervisor` owns the bounded pool of worker processes the
server dispatches studies to: it spawns them (always with the ``spawn``
start method -- forking a process that already runs the server's pump
thread is exactly the hazard the stdlib deprecated), relays their event
pipes to a single callback, detects death via process sentinels (a
SIGKILLed worker produces a ``worker-died`` event, not a hung queue), and
respawns casualties so pool capacity survives crashes.

Each worker gets two one-way pipes: commands parent->worker, events
worker->parent.  Per-worker pipes mean a worker dying mid-``send`` can
only corrupt its own channel -- unlike a shared ``multiprocessing.Queue``,
whose feeder lock a SIGKILL can take to the grave.  A single pump *thread*
multiplexes every event pipe and every sentinel through
:func:`multiprocessing.connection.wait`; the supervisor itself is
loop-agnostic and delivers events on that thread, so callers decide how to
hop threads (the server wraps the callback in ``call_soon_threadsafe``).
"""

from __future__ import annotations

import os
import signal
import threading
from multiprocessing import connection, get_context
from typing import Any, Callable, Dict, List, Optional

from repro.service.workers import worker_main

__all__ = ["WorkerSupervisor", "WorkerHandle"]


class WorkerHandle:
    """One live worker process: its pipes, pid and assignment bookkeeping."""

    def __init__(self, worker_id: int, process, cmd_conn, event_conn) -> None:
        self.id = worker_id
        self.process = process
        self.cmd_conn = cmd_conn
        self.event_conn = event_conn
        self.pid: int = process.pid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerHandle(id={self.id}, pid={self.pid})"


class WorkerSupervisor:
    """Spawn, monitor and replace the service's pool of worker processes.

    ``emit`` receives every worker event dict (``worker-online``, ``idle``,
    ``started``, ``progress``, ``checkpoint``, ``yielded``, ``result``,
    ``job-error`` -- see :mod:`repro.service.workers`) plus the synthesized
    ``worker-died`` event, **on the pump thread**.  ``all_pids_ever``
    records every pid the pool ever spawned, which is what the
    graceful-shutdown tests sweep ``/proc`` with to prove no orphans
    survive.
    """

    def __init__(
        self,
        store_root: str,
        size: int,
        emit: Callable[[Dict[str, Any]], None],
    ) -> None:
        if size < 1:
            raise ValueError(f"worker pool size must be >= 1, got {size}")
        self._store_root = str(store_root)
        self._size = size
        self._emit = emit
        self._ctx = get_context("spawn")
        self._handles: Dict[int, WorkerHandle] = {}
        self._next_id = 0
        self._lock = threading.Lock()
        self._stopping = False
        self._wake_r, self._wake_w = os.pipe()
        self._thread: Optional[threading.Thread] = None
        self._respawn_budget = size * 50
        self.all_pids_ever: List[int] = []

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the initial pool and the event pump thread."""
        for _ in range(self._size):
            self._spawn_locked()
        self._thread = threading.Thread(
            target=self._pump, name="cgsim-service-pump", daemon=True
        )
        self._thread.start()

    def stop(self, *, graceful: bool = True, timeout: float = 10.0) -> None:
        """Shut the pool down: ``shutdown`` commands, join, escalate, reap.

        With ``graceful`` the workers are asked to exit (they finish --
        checkpoint-and-yield -- any in-flight chunk first); stragglers past
        ``timeout`` are terminated, then killed.  Every child is joined, so
        after this returns no worker pid exists in ``/proc``.
        """
        with self._lock:
            self._stopping = True
            handles = list(self._handles.values())
        if graceful:
            for handle in handles:
                self._safe_send(handle, {"cmd": "shutdown"})
        for handle in handles:
            handle.process.join(timeout if graceful else 0.1)
        for handle in handles:
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(2.0)
            if handle.process.is_alive():  # pragma: no cover - last resort
                handle.process.kill()
                handle.process.join(2.0)
        self._wake()
        if self._thread is not None:
            self._thread.join(5.0)
        with self._lock:
            for handle in self._handles.values():
                handle.cmd_conn.close()
                handle.event_conn.close()
            self._handles.clear()
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass

    # -- commands ----------------------------------------------------------

    def send(self, worker_id: int, msg: Dict[str, Any]) -> bool:
        """Send a command dict to one worker; False if it is gone."""
        with self._lock:
            handle = self._handles.get(worker_id)
        if handle is None:
            return False
        return self._safe_send(handle, msg)

    def kill(self, worker_id: int) -> bool:
        """SIGKILL a worker (crash-recovery tests); False if unknown."""
        with self._lock:
            handle = self._handles.get(worker_id)
        if handle is None:
            return False
        try:
            os.kill(handle.pid, signal.SIGKILL)
        except ProcessLookupError:
            return False
        return True

    def pid(self, worker_id: int) -> Optional[int]:
        """The pid of a live worker, or None."""
        with self._lock:
            handle = self._handles.get(worker_id)
        return None if handle is None else handle.pid

    def live_pids(self) -> List[int]:
        """Pids of workers the supervisor currently believes alive."""
        with self._lock:
            return [h.pid for h in self._handles.values()]

    # -- internals ---------------------------------------------------------

    def _spawn_locked(self) -> WorkerHandle:
        worker_id = self._next_id
        self._next_id += 1
        cmd_r, cmd_w = self._ctx.Pipe(duplex=False)
        event_r, event_w = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, cmd_r, event_w, self._store_root),
            name=f"cgsim-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        # Close the child's pipe ends in this process so a dead child reads
        # as EOF instead of a silently idle connection.
        cmd_r.close()
        event_w.close()
        handle = WorkerHandle(worker_id, process, cmd_w, event_r)
        self._handles[worker_id] = handle
        self.all_pids_ever.append(handle.pid)
        self._wake()
        return handle

    def _safe_send(self, handle: WorkerHandle, msg: Dict[str, Any]) -> bool:
        try:
            handle.cmd_conn.send(msg)
            return True
        except (BrokenPipeError, OSError):
            return False

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    def _pump(self) -> None:
        """Multiplex every event pipe + sentinel until the pool stops."""
        while True:
            with self._lock:
                if self._stopping and not self._handles:
                    return
                handles = list(self._handles.values())
            waitables: List[Any] = [self._wake_r]
            by_event = {h.event_conn: h for h in handles}
            by_sentinel = {h.process.sentinel: h for h in handles}
            waitables.extend(by_event)
            waitables.extend(by_sentinel)
            for ready in connection.wait(waitables, timeout=1.0):
                if ready == self._wake_r:
                    try:
                        os.read(self._wake_r, 4096)
                    except OSError:
                        return
                    if self._stopping:
                        return
                elif ready in by_event:
                    self._drain_events(by_event[ready])
                elif ready in by_sentinel:
                    self._reap(by_sentinel[ready])

    def _drain_events(self, handle: WorkerHandle) -> None:
        try:
            while handle.event_conn.poll():
                self._emit(handle.event_conn.recv())
        except Exception:
            # EOF, a torn pipe, or a half-written pickle from a worker that
            # was SIGKILLed mid-send: death is reported by the sentinel.
            pass

    def _reap(self, handle: WorkerHandle) -> None:
        """A sentinel fired: flush its last events, reap, report, respawn."""
        self._drain_events(handle)
        handle.process.join(2.0)
        exitcode = handle.process.exitcode
        with self._lock:
            self._handles.pop(handle.id, None)
            stopping = self._stopping
        handle.cmd_conn.close()
        handle.event_conn.close()
        self._emit({"type": "worker-died", "worker": handle.id, "exitcode": exitcode})
        if not stopping:
            with self._lock:
                # The budget is a backstop against a respawn storm when the
                # environment itself is broken (every child dies at import).
                if not self._stopping and self._respawn_budget > 0:
                    self._respawn_budget -= 1
                    self._spawn_locked()
