"""Sans-IO WebSocket framing and handshake helpers (RFC 6455 subset).

The service speaks WebSocket for its live event streams without any
third-party dependency, so the frame codec lives here as pure functions
shared by the asyncio server (:mod:`repro.service.server`) and the blocking
client (:mod:`repro.service.client`).  The subset is deliberately small --
unfragmented text/binary/control frames, client-to-server masking, 16- and
64-bit extended lengths -- which is exactly what the service's own peers
produce; anything outside it raises :class:`WireError` instead of being
guessed at.
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct
from typing import Tuple

from repro.utils.errors import CGSimError

__all__ = [
    "WireError",
    "OP_TEXT",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "websocket_accept",
    "encode_frame",
    "parse_frame_header",
    "unmask",
]

#: RFC 6455 handshake GUID appended to the client key before hashing.
_WS_GUID = b"258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_KNOWN_OPCODES = frozenset({0x0, OP_TEXT, OP_BINARY, OP_CLOSE, OP_PING, OP_PONG})


class WireError(CGSimError):
    """A WebSocket frame or handshake violated the supported RFC 6455 subset.

    Raised on malformed frame headers, unknown opcodes, fragmented messages
    (which the service never produces) and handshake responses missing the
    computed ``Sec-WebSocket-Accept`` value.  Both the server and the client
    close the connection on it rather than resynchronise a corrupt stream.
    """


def websocket_accept(key: str) -> str:
    """Compute the ``Sec-WebSocket-Accept`` value for a handshake ``key``.

    The RFC 6455 construction: base64 of the SHA-1 of the client-supplied
    ``Sec-WebSocket-Key`` concatenated with the protocol GUID.  Used by the
    server to answer an upgrade and by the client to verify the answer.
    """
    digest = hashlib.sha1(key.strip().encode("ascii") + _WS_GUID).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(payload: bytes, opcode: int = OP_TEXT, mask: bool = False) -> bytes:
    """Encode one final (FIN=1, unfragmented) WebSocket frame.

    Servers send unmasked frames (``mask=False``); clients must mask
    (``mask=True``, with a fresh random masking key per frame, as the RFC
    requires).  ``payload`` is the raw frame body -- encode text as UTF-8
    before calling.
    """
    if opcode not in _KNOWN_OPCODES:
        raise WireError(f"cannot encode unknown WebSocket opcode {opcode:#x}")
    header = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if not mask:
        return bytes(header) + payload
    key = os.urandom(4)
    return bytes(header) + key + unmask(payload, key)


def parse_frame_header(first_two: bytes) -> Tuple[int, bool, int]:
    """Parse the fixed two-byte frame header.

    Returns ``(opcode, masked, length_code)`` where ``length_code`` is the
    7-bit payload length field: a literal length below 126, or the sentinel
    126/127 announcing a 16-/64-bit extended length to be read next.
    Fragmented frames (FIN=0 or continuation opcode) and reserved bits are
    rejected -- the service's peers never produce them.
    """
    if len(first_two) != 2:
        raise WireError("truncated WebSocket frame header")
    b0, b1 = first_two[0], first_two[1]
    if not b0 & 0x80 or b0 & 0x70:
        raise WireError("fragmented or reserved-bit WebSocket frames are not supported")
    opcode = b0 & 0x0F
    if opcode not in _KNOWN_OPCODES or opcode == 0x0:
        raise WireError(f"unsupported WebSocket opcode {opcode:#x}")
    return opcode, bool(b1 & 0x80), b1 & 0x7F


def unmask(payload: bytes, key: bytes) -> bytes:
    """Apply (or remove -- XOR is its own inverse) a 4-byte masking key."""
    if len(key) != 4:
        raise WireError("WebSocket masking key must be 4 bytes")
    return bytes(b ^ key[i % 4] for i, b in enumerate(payload))
