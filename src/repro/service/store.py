"""Content-addressed artifact store for checkpoint blobs and results.

Workers freeze their sessions into checkpoint blobs (:mod:`repro.state`)
and put them here; the server records the returned digest so a killed
worker's study can be resumed from its latest blob by the next free worker
-- possibly in a different process, or on a different host when the store
root sits on shared storage.  Addressing is by content (sha256 of the blob),
so identical states deduplicate, a digest can be handed across process
boundaries as a plain string, and a read verifies integrity by re-hashing.

Layout under the store root::

    objects/<aa>/<sha256-hex>     the blobs, sharded by their first byte
    sessions/<id>.latest          one-line pointer: a session's newest digest

Writes are atomic (temp file + ``os.replace``) so a SIGKILL mid-write never
leaves a torn object behind -- at worst an orphaned temp file.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import List, Optional

from repro.utils.errors import CGSimError

__all__ = ["ArtifactStore", "ArtifactError"]


class ArtifactError(CGSimError):
    """A blob was missing, unreadable, or failed its content-hash check.

    Raised by :meth:`ArtifactStore.get` when the requested digest has no
    object file or the file's sha256 no longer matches its address (torn
    write, bit rot, manual tampering) -- the caller must treat the blob as
    lost rather than resume a corrupt study from it.
    """


class ArtifactStore:
    """Content-addressed blob store rooted at a directory.

    ``put(blob)`` hashes the blob, writes it atomically under its digest and
    returns the digest; ``get(digest)`` reads it back and verifies the hash.
    ``set_latest``/``latest`` maintain a per-session pointer to the newest
    checkpoint digest so crash recovery needs no directory scans.  Safe for
    concurrent use from many processes: objects are immutable once written
    and every write goes through an atomic rename.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        (self.root / "objects").mkdir(parents=True, exist_ok=True)
        (self.root / "sessions").mkdir(parents=True, exist_ok=True)

    # -- objects ---------------------------------------------------------------
    def path_for(self, digest: str) -> Path:
        """Filesystem path of a digest's object (existing or not)."""
        digest = self._check_digest(digest)
        return self.root / "objects" / digest[:2] / digest

    def put(self, blob: bytes) -> str:
        """Store ``blob``; return its sha256 hex digest (the address)."""
        if not isinstance(blob, (bytes, bytearray)):
            raise ArtifactError(f"artifact must be bytes, got {type(blob).__name__}")
        blob = bytes(blob)
        digest = hashlib.sha256(blob).hexdigest()
        path = self.path_for(digest)
        if path.exists():
            return digest
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path, blob)
        return digest

    def get(self, digest: str) -> bytes:
        """Read the blob at ``digest`` back, verifying its content hash."""
        path = self.path_for(digest)
        if not path.exists():
            raise ArtifactError(f"no artifact with digest {digest}")
        blob = path.read_bytes()
        actual = hashlib.sha256(blob).hexdigest()
        if actual != digest:
            raise ArtifactError(
                f"artifact {digest} failed its integrity check "
                f"(content hashes to {actual}); refusing to return corrupt data"
            )
        return blob

    def has(self, digest: str) -> bool:
        """Whether an object with this digest exists."""
        return self.path_for(digest).exists()

    def digests(self) -> List[str]:
        """Every stored object digest, sorted (mainly for tests/inspection)."""
        objects = self.root / "objects"
        return sorted(p.name for p in objects.glob("??/*") if p.is_file())

    # -- per-session latest pointers -------------------------------------------
    def set_latest(self, session_id: str, digest: str) -> None:
        """Point ``session_id``'s latest-checkpoint pointer at ``digest``."""
        digest = self._check_digest(digest)
        path = self.root / "sessions" / f"{self._check_id(session_id)}.latest"
        self._atomic_write(path, (digest + "\n").encode("ascii"))

    def latest(self, session_id: str) -> Optional[str]:
        """The session's newest checkpoint digest, or ``None`` if never set."""
        path = self.root / "sessions" / f"{self._check_id(session_id)}.latest"
        if not path.exists():
            return None
        return path.read_text(encoding="ascii").strip() or None

    # -- internals -------------------------------------------------------------
    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @staticmethod
    def _check_digest(digest: str) -> str:
        digest = str(digest).lower()
        if len(digest) != 64 or any(c not in "0123456789abcdef" for c in digest):
            raise ArtifactError(f"not a sha256 hex digest: {digest!r}")
        return digest

    @staticmethod
    def _check_id(session_id: str) -> str:
        session_id = str(session_id)
        if not session_id or any(c in session_id for c in "/\\\0"):
            raise ArtifactError(f"invalid session id {session_id!r}")
        return session_id
