"""Worker-process side of the simulation service.

:func:`worker_main` is the entry point every pool process runs (spawned by
:mod:`repro.service.supervisor`): block on the command pipe for work, drive
each assigned scenario pack through a :class:`~repro.core.session
.SimulationSession` in checkpoint-sized chunks, and report events (progress,
checkpoint digests, results, errors) on the event pipe.

The chunked drive loop mirrors :func:`repro.state.drive_with_checkpoints`
exactly -- chunking changes where the clock pauses, never what happens -- so
a study's final :func:`~repro.state.fingerprint_result` is bit-identical to
an uninterrupted ``repro scenario run`` of the same pack, whether the study
ran in one piece, was paused and resumed on another worker, or was SIGKILLed
mid-run and recovered from its latest blob.  Between chunks the worker polls
its command pipe, which is what makes running sessions pausable and
stoppable without threads inside the simulation.
"""

from __future__ import annotations

import os
import signal
import traceback
from typing import Any, Dict, Optional

from repro.service.store import ArtifactStore

__all__ = ["worker_main", "DEFAULT_CHECKPOINT_EVERY"]

#: Default chunk length (simulated seconds) between checkpoints when neither
#: the submit request nor the server configuration chose one.
DEFAULT_CHECKPOINT_EVERY = 3600.0


def worker_main(worker_id: int, cmd_conn, event_conn, store_root: str) -> None:
    """Run one pool worker: an event loop over the command pipe.

    Commands are dicts with a ``cmd`` key: ``run`` (a job assignment:
    pack dict, checkpoint cadence, optional resume digest), ``stop`` /
    ``pause`` (only meaningful mid-run; stale ones for finished jobs are
    ignored), and ``shutdown``.  Every outbound event carries the worker id
    and the session id it concerns.  The function returns (exiting the
    process) on ``shutdown`` or when the command pipe closes.
    """
    # A foreground `cgsim serve` shares its process group with the pool, so
    # a terminal Ctrl-C would SIGINT every worker mid-recv.  The supervisor
    # owns worker lifetime (shutdown commands, then SIGTERM escalation);
    # ignore SIGINT here exactly like multiprocessing.Pool workers do.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    store = ArtifactStore(store_root)
    _send(event_conn, {"type": "worker-online", "worker": worker_id, "pid": os.getpid()})
    while True:
        try:
            msg = cmd_conn.recv()
        except (EOFError, OSError):
            break
        cmd = msg.get("cmd")
        if cmd == "shutdown":
            break
        if cmd != "run":
            continue  # stale pause/stop for a job that already ended
        outcome = _run_job(worker_id, msg["job"], cmd_conn, event_conn, store)
        if outcome == "shutdown":
            break
        _send(event_conn, {"type": "idle", "worker": worker_id})


def _send(conn, event: Dict[str, Any]) -> None:
    """Best-effort event send; a vanished parent ends the worker, not the job."""
    try:
        conn.send(event)
    except (BrokenPipeError, OSError):
        os._exit(0)


def _run_job(worker_id: int, job: Dict[str, Any], cmd_conn, event_conn, store) -> str:
    """Drive one assigned study; returns ``"done"``/``"yielded"``/``"shutdown"``."""
    from repro.scenarios.schema import ScenarioPack

    session_id = str(job["id"])

    def emit(kind: str, **payload: Any) -> None:
        _send(
            event_conn,
            {"type": kind, "worker": worker_id, "session": session_id, **payload},
        )

    try:
        pack = ScenarioPack.from_dict(job["pack"])
        canonical = pack.to_dict()
        every = float(job.get("checkpoint_every") or DEFAULT_CHECKPOINT_EVERY)
        _reset_job_ids()
        session = _open_session(store, job, canonical)
    except Exception as exc:  # noqa: BLE001 - the pool must survive bad jobs
        emit("job-error", error=f"{type(exc).__name__}: {exc}",
             detail=traceback.format_exc()[-2000:])
        return "done"

    emit(
        "started",
        pid=os.getpid(),
        attempt=int(job.get("attempt", 1)),
        resumed_from=job.get("resume"),
        time=session.now,
    )
    provenance = {"scenario_pack": canonical, "service_session": session_id}
    last_checkpoint: Dict[str, Any] = {
        "time": None,
        "digest": job.get("resume"),
        # The newest blob's bytes: the state at the last chunk boundary,
        # which the exact-tail replay below re-opens.
        "blob": store.get(job["resume"]) if job.get("resume") else None,
    }

    def checkpoint_now() -> Optional[str]:
        # Skip duplicate blobs of an unchanged clock (mirrors the driver's
        # same-time guard); the previous digest keeps pointing at the state.
        if last_checkpoint["time"] == session.now and last_checkpoint["digest"]:
            return last_checkpoint["digest"]
        blob = session.checkpoint(extra=provenance)
        digest = store.put(blob)
        store.set_latest(session_id, digest)
        last_checkpoint["time"] = session.now
        last_checkpoint["digest"] = digest
        last_checkpoint["blob"] = blob
        emit("checkpoint", digest=digest, time=session.now)
        return digest

    def emit_progress() -> None:
        progress = session.progress()
        metrics = session.peek_metrics()
        emit(
            "progress",
            time=progress.time,
            total_jobs=progress.total_jobs,
            completed_jobs=progress.completed_jobs,
            finished_jobs=progress.finished_jobs,
            failed_jobs=progress.failed_jobs,
            pending_jobs=progress.pending_jobs,
            metrics={
                "finished_jobs": metrics.finished_jobs,
                "failed_jobs": metrics.failed_jobs,
                "makespan": metrics.makespan,
                "mean_queue_time": metrics.mean_queue_time,
                "throughput": metrics.throughput,
            },
        )

    try:
        legacy_deadline = session.simulator.execution.max_simulation_time
        while session.stopped_reason is None:
            action = _poll_command(cmd_conn, session_id)
            if action == "stop":
                session.stop("stopped by service client")
                break
            if action in ("pause", "shutdown"):
                digest = checkpoint_now()
                emit("yielded", digest=digest, time=session.now)
                return "yielded" if action == "pause" else "shutdown"
            if legacy_deadline is not None:
                next_pause = min(session.now + every, legacy_deadline)
                if next_pause <= session.now:
                    break
                session.advance_until(next_pause)
            else:
                if session.done:
                    break
                session.advance_for(every)
                if session.done and session.stopped_reason is None:
                    # The workload drained mid-chunk, but advance_for parks
                    # the clock on the chunk boundary (SimGrid semantics)
                    # while an uninterrupted run ends on the last event.
                    # Re-open the state at the previous boundary and drive
                    # the tail with one advance_to_completion, so the final
                    # clock -- and the result fingerprint -- are
                    # bit-identical to ``repro scenario run`` of this pack.
                    session = _reopen(store, job, canonical, last_checkpoint["blob"])
                    break
            checkpoint_now()
            emit_progress()
        session.advance_to_completion()
        result = session.finalize()
    except Exception as exc:  # noqa: BLE001 - record the failure, keep the pool
        session.simulator._close_live_sinks()
        emit("job-error", error=f"{type(exc).__name__}: {exc}",
             detail=traceback.format_exc()[-2000:])
        return "done"

    from repro.scenarios.runner import _data_extras, _reliability_extras
    from repro.state import fingerprint_result

    extras: Dict[str, float] = {}
    if pack.faults is not None or pack.execution.max_retries:
        extras.update(_reliability_extras(session.jobs, result))
    if pack.data is not None:
        extras.update(_data_extras(session.simulator))
    emit(
        "result",
        fingerprint=fingerprint_result(result),
        simulated_time=result.simulated_time,
        stopped_reason=result.stopped_reason,
        metrics=result.metrics.to_dict(),
        extras=extras,
    )
    return "done"


def _reset_job_ids() -> None:
    """Pin the process-global job-id counter to a fresh process's base.

    Auto-assigned job ids draw from a module-global counter, so the second
    study built in a long-lived worker process would otherwise get shifted
    ids -- and a shifted fingerprint.  Resetting to 1 before every build
    and every checkpoint replay makes a worker's Nth study bit-identical
    to the same pack run in a fresh ``repro scenario run`` process.
    """
    from repro.workload.job import reset_job_id_counter

    reset_job_id_counter(1)


def _reopen(store: ArtifactStore, job: Dict[str, Any], canonical: dict, blob):
    """Re-open the state at the last chunk boundary for the exact tail.

    ``blob`` is the newest checkpoint's bytes; ``None`` means no boundary
    was reached yet (the workload drained inside the very first chunk), in
    which case the exact tail is simply a cold rebuild of the pack.
    """
    _reset_job_ids()
    if blob is None:
        from repro.scenarios.runner import _build_simulator
        from repro.scenarios.schema import ScenarioPack

        simulator, jobs = _build_simulator(ScenarioPack.from_dict(canonical))
        return simulator.session(jobs)
    from repro.state import restore_session_from_blob

    session, _ = restore_session_from_blob(blob, expected_pack=canonical)
    return session


def _open_session(store: ArtifactStore, job: Dict[str, Any], canonical: dict):
    """Build the job's session: cold from the pack, or resumed from a blob.

    Resume goes through :func:`repro.state.restore_session_from_blob` with
    the pack's canonical dict as the expected provenance -- a digest
    pointing at a blob from a different pack is a hard error, never a
    silent wrong-study replay.
    """
    resume = job.get("resume")
    if resume:
        from repro.state import restore_session_from_blob

        session, _ = restore_session_from_blob(
            store.get(resume), expected_pack=canonical
        )
        return session
    from repro.scenarios.runner import _build_simulator
    from repro.scenarios.schema import ScenarioPack

    simulator, jobs = _build_simulator(ScenarioPack.from_dict(canonical))
    return simulator.session(jobs)


def _poll_command(cmd_conn, session_id: str) -> Optional[str]:
    """Non-blocking check for a control command addressed to this job."""
    while True:
        try:
            if not cmd_conn.poll():
                return None
            msg = cmd_conn.recv()
        except (EOFError, OSError):
            return "shutdown"
        cmd = msg.get("cmd")
        if cmd == "shutdown":
            return "shutdown"
        if cmd in ("pause", "stop") and msg.get("session") == session_id:
            return cmd
        # Anything else is stale (for a previous job) -- drop and re-poll.
