"""Deterministic in-process test harness for the simulation service.

:class:`ServiceUnderTest` boots a real :class:`~repro.service.server
.ServiceServer` -- real socket on an ephemeral port, real spawned worker
processes -- inside the current test process, with the event loop running
on a background thread so synchronous test code can drive it through the
blocking :class:`~repro.service.client.ServiceClient`.  Nothing in the
harness sleeps-and-polls: readiness is observed through the server's own
event-based hooks (``wait_for_idle_workers``), state transitions through
long-poll ``?wait=`` requests, and execution milestones through the WS
event stream -- which is what keeps the service test layer fast and
timing-independent.

:func:`tiny_pack` builds the minimal synthetic scenario pack the service
tests and the throughput benchmark submit by the dozen.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable, Optional, TypeVar

from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, ServiceServer

__all__ = ["ServiceUnderTest", "tiny_pack"]

T = TypeVar("T")


def tiny_pack(
    name: str = "tiny",
    *,
    jobs: int = 6,
    sites: int = 2,
    seed: int = 7,
    plugin: str = "least_loaded",
) -> dict:
    """A minimal single-mode scenario pack: synthetic grid, tiny workload.

    Small enough that a session completes in well under a second, yet a
    full real study -- deterministic for a given ``(jobs, sites, seed)``,
    so two submissions of the same pack must produce bit-identical result
    fingerprints (the property the service e2e tests assert).
    """
    return {
        "name": name,
        "grid": {"kind": "synthetic", "sites": sites, "seed": seed},
        "workload": {"jobs": jobs, "seed": seed + 1},
        "execution": {"plugin": plugin},
    }


class ServiceUnderTest:
    """A live service instance owned by one test (see module docstring).

    Use as a context manager: entering starts the loop thread, the server
    socket and the worker pool; leaving drains and shuts everything down
    (the harness asserts nothing about your session states -- stop or
    finish them yourself, or pass ``drain=False`` to ``close``).  Test
    code talks to it three ways: :attr:`client` for the public API,
    :meth:`submit_and_wait` for the common happy path, and :meth:`call` /
    :meth:`run` to execute code on the server's loop thread when a test
    needs to reach into server internals in a race-free way.
    """

    def __init__(self, config: Optional[ServiceConfig] = None,
                 timeout: float = 60.0) -> None:
        self.config = config or ServiceConfig()
        self.timeout = float(timeout)
        self.server = ServiceServer(self.config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "ServiceUnderTest":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def start(self) -> None:
        """Start the loop thread, bind the server, spawn the worker pool."""
        self._thread = threading.Thread(
            target=self._thread_main, name="cgsim-service-test", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self.timeout):
            raise RuntimeError("service harness event loop failed to start")
        self.run(self.server.start())

    def close(self, *, drain: bool = True) -> None:
        """Shut the service down and join the loop thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and self._loop.is_running():
            self.run(self.server.shutdown(drain=drain, timeout=self.timeout))
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(self.timeout)

    def _thread_main(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    # -- plumbing --------------------------------------------------------

    def run(self, coro) -> Any:
        """Await ``coro`` on the server's loop thread; return its result."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(self.timeout)

    def call(self, fn: Callable[..., T], *args: Any) -> T:
        """Run a plain callable on the loop thread (single-writer safe)."""

        async def _invoke() -> T:
            return fn(*args)

        return self.run(_invoke())

    # -- conveniences ----------------------------------------------------

    @property
    def port(self) -> int:
        """The ephemeral port the server bound (ready after ``start``)."""
        return self.server.port

    @property
    def client(self) -> ServiceClient:
        """A fresh blocking client pointed at this server."""
        return ServiceClient(self.config.host, self.port, timeout=self.timeout)

    def wait_idle_workers(self, count: int) -> None:
        """Block until ``count`` workers are online and idle (event-based)."""
        ok = self.run(self.server.wait_for_idle_workers(count, timeout=self.timeout))
        if not ok:
            raise RuntimeError(f"{count} idle workers never materialised")

    def submit_and_wait(self, pack: dict, timeout: float = 30.0, **kwargs: Any) -> dict:
        """Submit a pack and long-poll it to a terminal state; return the view."""
        view = self.client.submit(pack, **kwargs)
        return self.client.wait(view["id"], "terminal", timeout=timeout)

    def worker_for(self, session_id: str) -> Optional[int]:
        """The worker id currently assigned to a session (or None)."""

        def lookup() -> Optional[int]:
            for worker, sid in self.server._assignments.items():
                if sid == session_id:
                    return worker
            return None

        return self.call(lookup)

    def kill_worker_for(self, session_id: str) -> int:
        """SIGKILL the worker running ``session_id``; returns its worker id."""
        worker = self.worker_for(session_id)
        if worker is None:
            raise RuntimeError(f"no worker is running session {session_id}")
        if not self.server.supervisor.kill(worker):
            raise RuntimeError(f"worker {worker} could not be killed")
        return worker
