"""Wire models of the simulation service: requests, views and WS messages.

Every JSON document that crosses the service's HTTP or WebSocket boundary
is declared here as a dataclass, and each one's JSON Schema is generated
from the dataclass itself via :func:`repro.schema.dataclass_schema` -- the
same code-is-the-contract idiom the scenario-pack schema uses.  The server
validates request bodies against these schemas before acting (schema
violations come back as 422 responses carrying RFC 6901 pointers), the
blocking client parses event frames through :func:`parse_ws_message`, and
``docs/service.md``'s WebSocket message reference is rendered from the same
declarations by :func:`ws_message_reference` (kept in sync by
``scripts/gen_service_docs.py --check``).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, Union

from repro.schema import SchemaError, dataclass_schema, validate_instance
from repro.utils.errors import CGSimError

__all__ = [
    "ServiceError",
    "SubmitRequest",
    "SessionView",
    "WsMessage",
    "StateMessage",
    "ProgressMessage",
    "CheckpointMessage",
    "ResultMessage",
    "ErrorMessage",
    "WS_MESSAGE_TYPES",
    "SUBMIT_REQUEST_SCHEMA",
    "parse_ws_message",
    "ws_message_reference",
    "SESSION_STATES",
]

#: Every state a service session can be in.  ``queued``, ``running`` and
#: ``paused`` are live; ``done``, ``stopped`` and ``failed`` are terminal.
SESSION_STATES = ("queued", "running", "paused", "done", "stopped", "failed")


class ServiceError(CGSimError):
    """A service request could not be honored.

    Carries an HTTP-ish ``status`` (400 malformed, 404 unknown session,
    409 invalid lifecycle transition, 422 schema violation, 503 shutting
    down) plus an optional list of field-level detail strings -- the server
    renders it as the JSON error body, and :class:`~repro.service.client
    .ServiceClient` re-raises it on the caller's side.
    """

    def __init__(self, message: str, status: int = 400, details: Optional[List[str]] = None):
        super().__init__(message)
        self.status = int(status)
        self.details = [str(d) for d in details or []]


def _meta(description: str) -> Dict[str, str]:
    return {"description": description}


@dataclass
class SubmitRequest:
    """Body of ``POST /v1/sessions``: one scenario pack to queue and run.

    The pack must be a *single-mode* scenario pack (no ``sweep`` /
    ``calibration`` section -- submit each combination as its own session)
    and is validated against the published scenario-pack JSON Schema plus
    the eager :class:`~repro.scenarios.ScenarioPack` loader before the
    session is created.  Higher ``priority`` drains first; within one
    priority, sessions run in submission (FIFO) order.
    """

    pack: dict = field(metadata=_meta("single-mode scenario pack document"))
    priority: int = field(
        default=0, metadata=_meta("higher drains first; FIFO within a priority")
    )
    checkpoint_every: Union[float, str, None] = field(
        default=None,
        metadata=_meta(
            "simulated seconds (or a duration string such as '6h') between "
            "checkpoints; default: the server's --checkpoint-every"
        ),
    )
    label: Optional[str] = field(
        default=None, metadata=_meta("free-form client tag echoed in views")
    )

    @classmethod
    def from_body(cls, body: Any) -> "SubmitRequest":
        """Validate a decoded request body and build the dataclass.

        Schema violations raise :class:`ServiceError` with status 422 and
        one JSON-pointer-addressed detail line per violation.
        """
        errors = validate_instance(body, SUBMIT_REQUEST_SCHEMA)
        if errors:
            raise ServiceError(
                "submit request failed schema validation",
                status=422,
                details=[str(e) for e in errors],
            )
        return cls(
            pack=body["pack"],
            priority=int(body.get("priority", 0)),
            checkpoint_every=body.get("checkpoint_every"),
            label=body.get("label"),
        )


@dataclass
class SessionView:
    """The status document of one service session (``GET /v1/sessions/{id}``).

    A point-in-time view assembled from the server's job record: lifecycle
    ``state``, queue position facts (``priority``, ``submit_seq``,
    ``dispatch_seq``), execution facts (``attempts``, ``worker_pid``,
    checkpoint counters, latest digest) and -- once terminal -- the result
    summary (``fingerprint``, ``stopped_reason``, ``error``).  ``metrics``
    holds the most recent live snapshot streamed by the worker.
    """

    id: str = field(metadata=_meta("service-assigned session id"))
    state: str = field(metadata=_meta("one of SESSION_STATES"))
    priority: int = field(metadata=_meta("submit priority"))
    submit_seq: int = field(metadata=_meta("global submission sequence number"))
    label: Optional[str] = field(default=None, metadata=_meta("client-supplied tag"))
    dispatch_seq: Optional[int] = field(
        default=None, metadata=_meta("global dispatch order (None until first run)")
    )
    attempts: int = field(default=0, metadata=_meta("times dispatched to a worker"))
    worker_pid: Optional[int] = field(
        default=None, metadata=_meta("pid of the worker running it (while running)")
    )
    checkpoints: int = field(default=0, metadata=_meta("checkpoint blobs written"))
    latest_checkpoint: Optional[str] = field(
        default=None, metadata=_meta("digest of the newest checkpoint blob")
    )
    progress: Optional[dict] = field(
        default=None, metadata=_meta("latest progress counters from the worker")
    )
    metrics: Optional[dict] = field(
        default=None, metadata=_meta("latest live metrics snapshot")
    )
    fingerprint: Optional[str] = field(
        default=None, metadata=_meta("sha256 fingerprint_result of the final run")
    )
    simulated_time: Optional[float] = field(
        default=None, metadata=_meta("final simulated time (terminal states)")
    )
    stopped_reason: Optional[str] = field(
        default=None, metadata=_meta("why the run ended early, if it did")
    )
    error: Optional[str] = field(
        default=None, metadata=_meta("failure description (state 'failed')")
    )
    finalized: bool = field(default=False, metadata=_meta("finalize was called"))
    wait_satisfied: Optional[bool] = field(
        default=None, metadata=_meta("long-poll verdict (only with ?wait=...)")
    )

    def to_dict(self) -> dict:
        """JSON-ready mapping (``None`` fields included for a stable shape)."""
        return dataclasses.asdict(self)


# -- WebSocket messages ----------------------------------------------------------


@dataclass
class WsMessage:
    """Common envelope of every WebSocket event message.

    Every frame on ``GET /v1/sessions/{id}/events`` is a JSON object with a
    ``type`` tag (the concrete class's ``TYPE``), the ``session`` id it
    belongs to (stream isolation: a subscription only ever carries its own
    session's messages) and a per-session monotonically increasing ``seq``.
    """

    TYPE: ClassVar[str] = ""

    session: str = field(metadata=_meta("session id the event belongs to"))
    seq: int = field(metadata=_meta("per-session monotonic sequence number"))

    def encode(self) -> str:
        """Render the message as its JSON wire form (with the ``type`` tag)."""
        payload = {"type": self.TYPE, **dataclasses.asdict(self)}
        return json.dumps(payload, sort_keys=False)


@dataclass
class StateMessage(WsMessage):
    """Lifecycle transition: the session entered ``state``.

    Emitted on every transition (queued, running, paused, ..., including
    the initial snapshot a new subscriber receives), with ``detail``
    explaining the cause when there is one (e.g. ``"resumed from
    checkpoint <digest>"`` after a worker crash).
    """

    TYPE: ClassVar[str] = "state"

    state: str = field(default="", metadata=_meta("the state just entered"))
    attempts: int = field(default=0, metadata=_meta("dispatch attempts so far"))
    detail: Optional[str] = field(default=None, metadata=_meta("transition cause"))


@dataclass
class ProgressMessage(WsMessage):
    """Live progress counters plus a headline metrics snapshot.

    Streamed at every checkpoint boundary from the worker's
    :meth:`~repro.core.session.SimulationSession.progress` and
    :meth:`~repro.core.session.SimulationSession.peek_metrics` calls.
    """

    TYPE: ClassVar[str] = "progress"

    time: float = field(default=0.0, metadata=_meta("simulated clock"))
    total_jobs: int = field(default=0, metadata=_meta("jobs expected"))
    completed_jobs: int = field(default=0, metadata=_meta("terminal jobs"))
    finished_jobs: int = field(default=0, metadata=_meta("successful jobs"))
    failed_jobs: int = field(default=0, metadata=_meta("failed attempts"))
    pending_jobs: int = field(default=0, metadata=_meta("jobs awaiting dispatch"))
    metrics: Optional[dict] = field(
        default=None, metadata=_meta("headline peek_metrics numbers")
    )


@dataclass
class CheckpointMessage(WsMessage):
    """A checkpoint blob was written to the artifact store.

    ``digest`` is the content address a crashed worker's successor resumes
    from; ``time`` the simulated clock the blob froze.
    """

    TYPE: ClassVar[str] = "checkpoint"

    digest: str = field(default="", metadata=_meta("sha256 blob address"))
    time: float = field(default=0.0, metadata=_meta("simulated clock of the blob"))


@dataclass
class ResultMessage(WsMessage):
    """Terminal result of the session's study.

    Sent exactly once when the session reaches ``done`` or ``stopped``:
    the full metrics document, the scenario extras, the result
    ``fingerprint`` (:func:`repro.state.fingerprint_result` -- bit-identical
    runs share it) and the ``stopped_reason`` when the run ended early.
    """

    TYPE: ClassVar[str] = "result"

    state: str = field(default="done", metadata=_meta("'done' or 'stopped'"))
    fingerprint: str = field(default="", metadata=_meta("sha256 of the run's outputs"))
    simulated_time: float = field(default=0.0, metadata=_meta("final simulated time"))
    stopped_reason: Optional[str] = field(
        default=None, metadata=_meta("why the run ended early, if it did")
    )
    metrics: Optional[dict] = field(default=None, metadata=_meta("final metrics"))
    extras: Optional[dict] = field(
        default=None, metadata=_meta("scenario extras (faults/data bookkeeping)")
    )


@dataclass
class ErrorMessage(WsMessage):
    """The session failed: the study raised, or retries were exhausted."""

    TYPE: ClassVar[str] = "error"

    error: str = field(default="", metadata=_meta("failure description"))
    detail: Optional[str] = field(default=None, metadata=_meta("traceback tail"))


#: The WS message catalogue, in documentation order.
WS_MESSAGE_TYPES = (
    StateMessage,
    ProgressMessage,
    CheckpointMessage,
    ResultMessage,
    ErrorMessage,
)

_BY_TYPE = {cls.TYPE: cls for cls in WS_MESSAGE_TYPES}

#: Generated JSON Schema of the submit request body.
SUBMIT_REQUEST_SCHEMA = dataclass_schema(SubmitRequest)


def parse_ws_message(text: str) -> WsMessage:
    """Decode one WebSocket text frame back into its message dataclass.

    The inverse of :meth:`WsMessage.encode`; unknown ``type`` tags and
    missing required fields raise :class:`ServiceError` (the stream is
    misbehaving, not merely stale).
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"WS frame is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServiceError("WS frame is not a JSON object")
    tag = payload.pop("type", None)
    cls = _BY_TYPE.get(tag)
    if cls is None:
        raise ServiceError(f"unknown WS message type {tag!r}")
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - names)
    if unknown:
        raise ServiceError(f"WS {tag} message carries unknown fields {unknown}")
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ServiceError(f"malformed WS {tag} message: {exc}") from exc


def ws_message_reference() -> str:
    """Markdown reference of the WebSocket messages, rendered from the models.

    One section per message type: the first docstring paragraph, then a
    field table (name, JSON type, description) derived from the dataclass
    schema.  ``docs/service.md`` embeds this text between generated-block
    markers; ``scripts/gen_service_docs.py --check`` keeps it in sync.
    """
    lines: List[str] = []
    for cls in WS_MESSAGE_TYPES:
        schema = dataclass_schema(cls)
        doc = (schema.get("description") or "").strip()
        lines.append(f"### `{cls.TYPE}`")
        lines.append("")
        if doc:
            lines.append(doc)
            lines.append("")
        lines.append("| field | type | description |")
        lines.append("| --- | --- | --- |")
        for name, prop in schema["properties"].items():
            lines.append(
                f"| `{name}` | {_schema_type(prop)} | {prop.get('description', '')} |"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _schema_type(prop: Dict[str, Any]) -> str:
    """Compact human rendering of a property schema's type."""
    if "anyOf" in prop:
        return " \\| ".join(_schema_type(b) for b in prop["anyOf"])
    return str(prop.get("type", "any"))
