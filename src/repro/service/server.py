"""The simulation-as-a-service server: asyncio HTTP + WebSocket front end.

:class:`ServiceServer` is the multi-tenant session server of the
reproduction: clients ``POST`` scenario packs to ``/v1/sessions``, the
server validates them against the published JSON Schema, queues them
(strict priority, FIFO within a priority) and executes them on a bounded
pool of worker processes (:mod:`repro.service.supervisor`) that drive each
study through the PR-6 checkpoint loop -- periodic blobs land in a
content-addressed :class:`~repro.service.store.ArtifactStore`, so a
SIGKILLed worker's study resumes from its latest blob on the next free
worker instead of failing.

Everything is stdlib: HTTP/1.1 is parsed directly off ``asyncio``
streams, WebSocket framing comes from the sans-IO codec in
:mod:`repro.service.wire`.  The server follows a single-writer rule --
all queue/record mutation happens on the event-loop thread (worker events
hop threads via ``call_soon_threadsafe``) -- which is why the queue needs
no locks and why every observable ordering (session ids, dispatch order,
WS sequence numbers) is deterministic.  Status reads support long-polling
(``GET /v1/sessions/{id}?wait=done&timeout=30``) so tests and clients
never sleep-and-retry, and ``POST /v1/queue/hold`` freezes dispatch so
concurrency tests can stage a queue and observe the exact drain order.
"""

from __future__ import annotations

import asyncio
import json
import struct
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.service import wire
from repro.service.models import (
    SESSION_STATES,
    CheckpointMessage,
    ErrorMessage,
    ProgressMessage,
    ResultMessage,
    ServiceError,
    StateMessage,
    SubmitRequest,
)
from repro.service.queue import JobQueue, JobRecord
from repro.service.store import ArtifactStore
from repro.service.supervisor import WorkerSupervisor

__all__ = ["ServiceConfig", "ServiceServer"]

_TERMINAL = ("done", "stopped", "failed")
_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 422: "Unprocessable Entity",
    500: "Internal Server Error", 503: "Service Unavailable",
}


@dataclass
class ServiceConfig:
    """Tunable knobs of one :class:`ServiceServer` instance.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`ServiceServer.port` -- the test harness relies on this).
    ``store_root=None`` creates a throwaway artifact store under the system
    temp directory; real deployments point it at durable storage so
    resumes survive server restarts too.  ``hold_dispatch`` starts the
    server with dispatch frozen (tests stage the queue first and release
    it explicitly via ``POST /v1/queue/release``).
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    store_root: Optional[str] = None
    checkpoint_every: Optional[float] = None
    max_attempts: int = 5
    hold_dispatch: bool = False
    max_body_bytes: int = 8 * 1024 * 1024
    long_poll_cap: float = 120.0


class ServiceServer:
    """One running multi-tenant simulation service (see module docstring).

    Lifecycle: construct with a :class:`ServiceConfig`, ``await start()``
    inside a running event loop (binds the socket, spawns the worker
    pool), then either ``await serve_until(event)`` or drive requests some
    other way, and finally ``await shutdown(drain=True)`` -- drain waits
    for every queued/running session to settle, asks the workers to exit,
    and joins (reaps) every child so no orphan processes survive.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.records: Dict[str, JobRecord] = {}
        self.queue = JobQueue()
        self.accepting = True
        self.hold_dispatch = bool(self.config.hold_dispatch)
        self.port: Optional[int] = None
        self.store: Optional[ArtifactStore] = None
        self.supervisor: Optional[WorkerSupervisor] = None
        self._history: Dict[str, List[str]] = {}
        self._subscribers: Dict[str, List[asyncio.Queue]] = {}
        self._idle: List[int] = []
        self._assignments: Dict[int, str] = {}
        self._submit_seq = 0
        self._dispatch_seq = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._settle_waiters: List[asyncio.Event] = []
        self._pool_waiters: List[asyncio.Event] = []
        self._ws_tasks: Set[asyncio.Task] = set()
        self._shut_down = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and spawn the worker pool."""
        self._loop = asyncio.get_running_loop()
        root = self.config.store_root or tempfile.mkdtemp(prefix="cgsim-service-")
        self.store = ArtifactStore(root)
        self.supervisor = WorkerSupervisor(
            str(self.store.root), self.config.workers, self._emit_from_pump
        )
        self.supervisor.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve requests until ``stop`` is set, then shut down gracefully."""
        await stop.wait()
        await self.shutdown(drain=False)

    async def shutdown(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the service: optionally drain, then reap every worker.

        With ``drain`` the server first refuses new submissions (503) and
        waits until no session is ``queued`` or ``running`` (paused
        sessions stay paused -- they are checkpointed, not orphaned).  The
        worker pool is then shut down gracefully and every child joined,
        so after this returns none of ``supervisor.all_pids_ever`` exists.
        """
        if self._shut_down:
            return
        self.accepting = False
        if drain:
            self.hold_dispatch = False
            self._dispatch()
            await self._wait_settled(timeout)
        self._shut_down = True
        if self.supervisor is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: self.supervisor.stop(graceful=True)
            )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for queues in self._subscribers.values():
            for q in list(queues):
                q.put_nowait(None)
        if self._ws_tasks:
            await asyncio.gather(*self._ws_tasks, return_exceptions=True)

    async def _wait_settled(self, timeout: Optional[float]) -> None:
        def busy() -> bool:
            return any(r.state in ("queued", "running") for r in self.records.values())

        deadline = None if timeout is None else self._loop.time() + timeout
        while busy():
            event = asyncio.Event()
            self._settle_waiters.append(event)
            if deadline is None:
                await event.wait()
            else:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    return
                try:
                    await asyncio.wait_for(event.wait(), remaining)
                except asyncio.TimeoutError:
                    return

    def _settled(self) -> None:
        waiters, self._settle_waiters = self._settle_waiters, []
        for event in waiters:
            event.set()

    # -- worker events (loop thread) ---------------------------------------

    def _emit_from_pump(self, event: Dict[str, Any]) -> None:
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(self._handle_worker_event, event)
        except RuntimeError:
            pass  # loop already closed during teardown

    def _handle_worker_event(self, event: Dict[str, Any]) -> None:
        kind = event.get("type")
        if kind in ("worker-online", "idle"):
            worker = event["worker"]
            self._assignments.pop(worker, None)
            if worker not in self._idle:
                self._idle.append(worker)
            self._dispatch()
            waiters, self._pool_waiters = self._pool_waiters, []
            for waiter in waiters:
                waiter.set()
            return
        if kind == "worker-died":
            self._on_worker_died(event)
            return
        record = self.records.get(event.get("session", ""))
        if record is None or record.terminal:
            return
        if kind == "started":
            record.worker_pid = event["pid"]
        elif kind == "progress":
            record.progress = {
                k: event[k]
                for k in ("time", "total_jobs", "completed_jobs",
                          "finished_jobs", "failed_jobs", "pending_jobs")
            }
            record.metrics = event.get("metrics")
            self._publish(record, ProgressMessage(
                session=record.id, seq=record.next_seq(), **record.progress,
                metrics=record.metrics,
            ))
        elif kind == "checkpoint":
            record.checkpoints += 1
            record.latest_checkpoint = event["digest"]
            self._publish(record, CheckpointMessage(
                session=record.id, seq=record.next_seq(),
                digest=event["digest"], time=event["time"],
            ))
        elif kind == "yielded":
            record.latest_checkpoint = event["digest"]
            if record.stop_requested:
                self._finish_stopped(record, "stopped while paused")
            else:
                record.pause_requested = False
                self._transition(record, "paused", detail="paused by client")
        elif kind == "result":
            record.result = {
                "fingerprint": event["fingerprint"],
                "simulated_time": event["simulated_time"],
                "stopped_reason": event["stopped_reason"],
                "metrics": event["metrics"],
                "extras": event["extras"],
            }
            record.metrics = event["metrics"]
            state = "stopped" if record.stop_requested else "done"
            record.state = state
            record.worker = None
            self._publish(record, ResultMessage(
                session=record.id, seq=record.next_seq(), state=state,
                fingerprint=event["fingerprint"],
                simulated_time=event["simulated_time"],
                stopped_reason=event["stopped_reason"],
                metrics=event["metrics"], extras=event["extras"],
            ))
            self._notify(record)
            self._settled()
        elif kind == "job-error":
            record.error = event["error"]
            record.error_detail = event.get("detail")
            record.state = "failed"
            record.worker = None
            self._publish(record, ErrorMessage(
                session=record.id, seq=record.next_seq(),
                error=record.error, detail=record.error_detail,
            ))
            self._notify(record)
            self._settled()

    def _on_worker_died(self, event: Dict[str, Any]) -> None:
        worker = event["worker"]
        if worker in self._idle:
            self._idle.remove(worker)
        session_id = self._assignments.pop(worker, None)
        record = self.records.get(session_id) if session_id else None
        if record is None or record.state != "running":
            return
        record.worker = None
        record.worker_pid = None
        if record.stop_requested:
            self._finish_stopped(record, "stopped (worker died first)")
            return
        exitcode = event.get("exitcode")
        if record.attempts >= self.config.max_attempts:
            record.error = (
                f"worker died (exit {exitcode}) and the retry budget of "
                f"{self.config.max_attempts} attempts is exhausted"
            )
            record.state = "failed"
            self._publish(record, ErrorMessage(
                session=record.id, seq=record.next_seq(), error=record.error,
            ))
            self._notify(record)
            self._settled()
            return
        detail = (
            f"worker died (exit {exitcode}); will resume from checkpoint "
            f"{record.latest_checkpoint[:12]}" if record.latest_checkpoint
            else f"worker died (exit {exitcode}); will restart from scratch"
        )
        record.state = "queued"
        self.queue.push(record)
        self._publish(record, StateMessage(
            session=record.id, seq=record.next_seq(), state="queued",
            attempts=record.attempts, detail=detail,
        ))
        self._notify(record)
        self._dispatch()

    def _finish_stopped(self, record: JobRecord, reason: str) -> None:
        record.result = record.result or {
            "fingerprint": None, "simulated_time": None,
            "stopped_reason": reason, "metrics": None, "extras": None,
        }
        record.worker = None
        self._transition(record, "stopped", detail=reason)
        self._settled()

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self) -> None:
        if self.hold_dispatch or self._shut_down:
            return
        while self._idle and len(self.queue):
            record = self.queue.pop()
            if record is None:
                return
            worker = self._idle.pop(0)
            self._dispatch_seq += 1
            record.dispatch_seq = self._dispatch_seq
            record.attempts += 1
            record.state = "running"
            record.worker = worker
            record.worker_pid = self.supervisor.pid(worker)
            self._assignments[worker] = record.id
            sent = self.supervisor.send(worker, {
                "cmd": "run",
                "job": {
                    "id": record.id,
                    "pack": record.pack,
                    "checkpoint_every": record.checkpoint_every,
                    "resume": record.latest_checkpoint,
                    "attempt": record.attempts,
                },
            })
            if not sent:
                self._assignments.pop(worker, None)
                record.state = "queued"
                record.attempts -= 1
                record.worker = None
                self.queue.push(record)
                continue
            detail = (
                f"resuming from checkpoint {record.latest_checkpoint[:12]}"
                if record.latest_checkpoint else None
            )
            self._publish(record, StateMessage(
                session=record.id, seq=record.next_seq(), state="running",
                attempts=record.attempts, detail=detail,
            ))
            self._notify(record)

    # -- record plumbing ---------------------------------------------------

    def _transition(self, record: JobRecord, state: str, detail: Optional[str] = None) -> None:
        record.state = state
        self._publish(record, StateMessage(
            session=record.id, seq=record.next_seq(), state=state,
            attempts=record.attempts, detail=detail,
        ))
        self._notify(record)

    def _publish(self, record: JobRecord, message) -> None:
        text = message.encode()
        self._history[record.id].append(text)
        for q in self._subscribers.get(record.id, []):
            q.put_nowait(text)

    def _notify(self, record: JobRecord) -> None:
        waiters, record.waiters = record.waiters, []
        for event in waiters:
            event.set()

    def _get_record(self, session_id: str) -> JobRecord:
        record = self.records.get(session_id)
        if record is None:
            raise ServiceError(f"unknown session {session_id!r}", status=404)
        return record

    # -- API operations (loop thread) --------------------------------------

    def submit(self, body: Any) -> JobRecord:
        """Validate a submit body and enqueue it as a new session record."""
        if not self.accepting:
            raise ServiceError("service is shutting down", status=503)
        request = SubmitRequest.from_body(body)
        every = self._parse_every(request.checkpoint_every)
        from repro.scenarios.schema import ScenarioPack

        try:
            pack = ScenarioPack.from_dict(request.pack)
        except Exception as exc:
            raise ServiceError(
                f"scenario pack rejected: {exc}", status=422
            ) from exc
        if pack.mode() != "single":
            raise ServiceError(
                f"only single-mode packs can run as service sessions, got a "
                f"{pack.mode()!r} pack; submit each combination separately",
                status=422,
            )
        self._submit_seq += 1
        record = JobRecord(
            id=f"s{self._submit_seq:06d}",
            pack=pack.to_dict(),
            priority=request.priority,
            submit_seq=self._submit_seq,
            label=request.label,
            checkpoint_every=every,
        )
        self.records[record.id] = record
        self._history[record.id] = []
        self._subscribers[record.id] = []
        self._publish(record, StateMessage(
            session=record.id, seq=record.next_seq(), state="queued",
            attempts=0, detail="submitted",
        ))
        self.queue.push(record)
        self._dispatch()
        return record

    def _parse_every(self, value) -> Optional[float]:
        if value is None:
            return self.config.checkpoint_every
        if isinstance(value, str):
            from repro.utils.units import parse_duration

            try:
                value = parse_duration(value)
            except Exception as exc:
                raise ServiceError(
                    f"invalid checkpoint_every: {exc}", status=422
                ) from exc
        value = float(value)
        if value <= 0:
            raise ServiceError(
                f"checkpoint_every must be positive, got {value}", status=422
            )
        return value

    def pause(self, session_id: str) -> JobRecord:
        """Pause a session: dequeue it, or ask its worker to yield."""
        record = self._get_record(session_id)
        if record.state == "queued":
            self._transition(record, "paused", detail="paused while queued")
            self._settled()
        elif record.state == "running":
            if not record.pause_requested:
                record.pause_requested = True
                self.supervisor.send(
                    record.worker, {"cmd": "pause", "session": record.id}
                )
        elif record.state != "paused":
            raise ServiceError(
                f"cannot pause a {record.state} session", status=409
            )
        return record

    def resume(self, session_id: str) -> JobRecord:
        """Re-queue a paused session at its original queue position."""
        record = self._get_record(session_id)
        if record.state == "paused":
            record.state = "queued"
            self.queue.push(record)
            self._publish(record, StateMessage(
                session=record.id, seq=record.next_seq(), state="queued",
                attempts=record.attempts, detail="resumed by client",
            ))
            self._notify(record)
            self._dispatch()
        elif record.terminal:
            raise ServiceError(
                f"cannot resume a {record.state} session", status=409
            )
        return record

    def stop(self, session_id: str) -> JobRecord:
        """Stop a session (idempotent): cancel it, or stop the live run."""
        record = self._get_record(session_id)
        if record.terminal:
            return record
        record.stop_requested = True
        if record.state == "queued":
            self._finish_stopped(record, "stopped before start")
        elif record.state == "paused":
            self._finish_stopped(record, "stopped while paused")
        elif record.state == "running":
            self.supervisor.send(
                record.worker, {"cmd": "stop", "session": record.id}
            )
        return record

    def finalize(self, session_id: str) -> dict:
        """Return the full result document of a terminal session."""
        record = self._get_record(session_id)
        if not record.terminal:
            raise ServiceError(
                f"session is {record.state}; finalize requires a terminal "
                "state (done/stopped/failed)", status=409,
            )
        record.finalized = True
        return {
            "session": record.view().to_dict(),
            "result": record.result,
            "error": record.error,
            "error_detail": record.error_detail,
        }

    async def wait_for(self, record: JobRecord, states: Tuple[str, ...], timeout: float) -> bool:
        """Long-poll helper: true once the record reaches one of ``states``."""
        deadline = self._loop.time() + timeout
        while record.state not in states:
            remaining = deadline - self._loop.time()
            if remaining <= 0 or record.terminal:
                return record.state in states
            event = asyncio.Event()
            record.waiters.append(event)
            try:
                await asyncio.wait_for(event.wait(), remaining)
            except asyncio.TimeoutError:
                if event in record.waiters:
                    record.waiters.remove(event)
                return record.state in states
        return True

    async def wait_for_idle_workers(self, count: int, timeout: float = 30.0) -> bool:
        """Event-based wait until ``count`` workers are online and idle.

        The harness uses this instead of sleep-polling before staging
        deterministic dispatch-order tests; returns False on timeout.
        """
        deadline = self._loop.time() + timeout
        while len(self._idle) < count:
            remaining = deadline - self._loop.time()
            if remaining <= 0:
                return False
            event = asyncio.Event()
            self._pool_waiters.append(event)
            try:
                await asyncio.wait_for(event.wait(), remaining)
            except asyncio.TimeoutError:
                return len(self._idle) >= count
        return True

    # -- HTTP --------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, target, headers, body = request
            if headers.get("upgrade", "").lower() == "websocket":
                await self._handle_websocket(reader, writer, target, headers)
                return
            status, payload = await self._route(method, target, body)
            self._write_response(writer, status, payload)
            await writer.drain()
        except ConnectionError:
            pass
        except ServiceError as exc:
            try:
                self._write_response(writer, exc.status, {"error": str(exc)})
                await writer.drain()
            except Exception:
                pass
        except Exception as exc:  # noqa: BLE001 - a request must not kill the server
            try:
                self._write_response(writer, 500, {"error": f"{type(exc).__name__}: {exc}"})
                await writer.drain()
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line.strip():
            return None
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            raise ServiceError("malformed request line", status=400) from None
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.config.max_body_bytes:
            raise ServiceError("request body too large", status=400)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _route(self, method: str, target: str, body: bytes) -> Tuple[int, dict]:
        parts = urlsplit(target)
        path = [p for p in parts.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        try:
            return await self._dispatch_route(method, path, query, body)
        except ServiceError as exc:
            return exc.status, {"error": str(exc), "details": exc.details}

    async def _dispatch_route(self, method: str, path: List[str], query: Dict[str, str],
                              body: bytes) -> Tuple[int, dict]:
        if not path or path[0] != "v1":
            raise ServiceError("unknown endpoint", status=404)
        path = path[1:]
        if path == ["healthz"] and method == "GET":
            return 200, {
                "status": "ok" if self.accepting else "shutting-down",
                "workers": self.config.workers,
                "queued": len(self.queue),
                "sessions": len(self.records),
            }
        if path == ["queue", "hold"] and method == "POST":
            self.hold_dispatch = True
            return 200, {"hold": True, "queued": len(self.queue)}
        if path == ["queue", "release"] and method == "POST":
            self.hold_dispatch = False
            self._dispatch()
            return 200, {"hold": False, "queued": len(self.queue)}
        if path == ["sessions"]:
            if method == "POST":
                record = self.submit(self._decode_json(body))
                return 201, record.view().to_dict()
            if method == "GET":
                views = [
                    r.view().to_dict()
                    for r in sorted(self.records.values(), key=lambda r: r.submit_seq)
                ]
                return 200, {"sessions": views}
            raise ServiceError("method not allowed", status=405)
        if len(path) == 2 and path[0] == "sessions" and method == "GET":
            record = self._get_record(path[1])
            if "wait" in query:
                states = self._parse_wait(query["wait"])
                timeout = min(
                    float(query.get("timeout", "30")), self.config.long_poll_cap
                )
                satisfied = await self.wait_for(record, states, timeout)
                return 200, record.view(wait_satisfied=satisfied).to_dict()
            return 200, record.view().to_dict()
        if len(path) == 3 and path[0] == "sessions" and method == "POST":
            action, session_id = path[2], path[1]
            if action == "pause":
                return 200, self.pause(session_id).view().to_dict()
            if action == "resume":
                return 200, self.resume(session_id).view().to_dict()
            if action == "stop":
                return 200, self.stop(session_id).view().to_dict()
            if action == "finalize":
                return 200, self.finalize(session_id)
            raise ServiceError(f"unknown action {action!r}", status=404)
        raise ServiceError("unknown endpoint", status=404)

    def _parse_wait(self, raw: str) -> Tuple[str, ...]:
        states: List[str] = []
        for token in raw.split(","):
            token = token.strip()
            if token == "terminal":
                states.extend(_TERMINAL)
            elif token in SESSION_STATES:
                states.append(token)
            elif token:
                raise ServiceError(f"unknown wait state {token!r}", status=400)
        if not states:
            raise ServiceError("wait= requires at least one state", status=400)
        return tuple(states)

    def _decode_json(self, body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not JSON: {exc}", status=400) from exc

    def _write_response(self, writer, status: int, payload: dict) -> None:
        data = json.dumps(payload, sort_keys=False).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + data)

    # -- WebSocket ---------------------------------------------------------

    async def _handle_websocket(self, reader, writer, target: str,
                                headers: Dict[str, str]) -> None:
        path = [p for p in urlsplit(target).path.split("/") if p]
        valid = (
            len(path) == 4 and path[0] == "v1" and path[1] == "sessions"
            and path[3] == "events" and path[2] in self.records
        )
        key = headers.get("sec-websocket-key")
        if not valid or not key:
            status = 404 if key else 400
            self._write_response(writer, status, {"error": "bad websocket request"})
            await writer.drain()
            return
        session_id = path[2]
        accept = wire.websocket_accept(key)
        writer.write(
            b"HTTP/1.1 101 Switching Protocols\r\n"
            b"Upgrade: websocket\r\nConnection: Upgrade\r\n"
            b"Sec-WebSocket-Accept: " + accept.encode("latin-1") + b"\r\n\r\n"
        )
        await writer.drain()
        queue: asyncio.Queue = asyncio.Queue()
        for text in self._history[session_id]:
            queue.put_nowait(text)
        self._subscribers[session_id].append(queue)
        reader_task = asyncio.create_task(self._ws_reader(reader, writer, queue))
        self._ws_tasks.add(reader_task)
        reader_task.add_done_callback(self._ws_tasks.discard)
        try:
            while True:
                text = await queue.get()
                if text is None:
                    writer.write(wire.encode_frame(b"", opcode=wire.OP_CLOSE))
                    await writer.drain()
                    break
                writer.write(wire.encode_frame(text.encode("utf-8")))
                await writer.drain()
        except ConnectionError:
            pass
        finally:
            subscribers = self._subscribers.get(session_id, [])
            if queue in subscribers:
                subscribers.remove(queue)
            reader_task.cancel()
            try:
                await reader_task
            except (asyncio.CancelledError, Exception):
                pass

    async def _ws_reader(self, reader, writer, queue: asyncio.Queue) -> None:
        """Consume client frames: answer pings, end the stream on close."""
        try:
            while True:
                head = await reader.readexactly(2)
                opcode, masked, length_code = wire.parse_frame_header(head)
                if length_code == 126:
                    (length,) = struct.unpack("!H", await reader.readexactly(2))
                elif length_code == 127:
                    (length,) = struct.unpack("!Q", await reader.readexactly(8))
                else:
                    length = length_code
                mask_key = await reader.readexactly(4) if masked else b""
                payload = await reader.readexactly(length) if length else b""
                if masked:
                    payload = wire.unmask(payload, mask_key)
                if opcode == wire.OP_CLOSE:
                    queue.put_nowait(None)
                    return
                if opcode == wire.OP_PING:
                    writer.write(wire.encode_frame(payload, opcode=wire.OP_PONG))
                    await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, wire.WireError):
            queue.put_nowait(None)
