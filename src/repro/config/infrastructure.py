"""Infrastructure configuration: the computing sites.

Each :class:`SiteConfig` describes one computing site exactly as the CGSim
input JSON does: how many hosts it has, how many cores and how fast each core
is (HS23-normalised operations per second), RAM per host, storage capacity
and bandwidths, plus free-form properties (tier, cloud, country).  The
per-core ``speed`` is the quantity the calibration framework tunes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.utils.errors import ConfigurationError
from repro.utils.units import parse_bandwidth, parse_bytes, parse_frequency

__all__ = ["SiteConfig", "InfrastructureConfig"]


@dataclass
class SiteConfig:
    """Static description of one computing site.

    Parameters
    ----------
    name:
        Unique site name (e.g. ``"BNL"``, ``"CERN"``).
    cores:
        Total CPU cores at the site.
    core_speed:
        Per-core processing speed in operations/second (accepts strings such
        as ``"10Gf"`` when loaded from JSON).
    hosts:
        Number of worker hosts the cores are spread over (cores are split as
        evenly as possible).
    ram_per_host:
        Memory per host in bytes.
    storage_capacity / storage_read_bandwidth / storage_write_bandwidth:
        Site storage element characteristics.
    local_bandwidth / local_latency:
        Intra-site (LAN) link characteristics.
    walltime_overhead:
        Fixed per-job overhead in seconds added to every execution at this
        site (models setup/stage-in not captured by the pure compute time).
    properties:
        Free-form metadata; the WLCG builder stores ``tier``, ``cloud`` and
        ``country`` here.
    """

    name: str
    cores: int
    core_speed: float
    hosts: int = 1
    ram_per_host: float = 64 * 2**30
    storage_capacity: float = float("inf")
    storage_read_bandwidth: float = 1e9
    storage_write_bandwidth: float = 1e9
    local_bandwidth: float = 1.25e9
    local_latency: float = 1e-4
    walltime_overhead: float = 0.0
    properties: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("site name must be non-empty")
        self.cores = int(self.cores)
        self.hosts = int(self.hosts)
        self.core_speed = parse_frequency(self.core_speed)
        self.ram_per_host = parse_bytes(self.ram_per_host)
        if self.storage_capacity not in (float("inf"),):
            self.storage_capacity = parse_bytes(self.storage_capacity)
        self.storage_read_bandwidth = parse_bandwidth(self.storage_read_bandwidth)
        self.storage_write_bandwidth = parse_bandwidth(self.storage_write_bandwidth)
        self.local_bandwidth = parse_bandwidth(self.local_bandwidth)
        self.local_latency = float(self.local_latency)
        self.walltime_overhead = float(self.walltime_overhead)
        if self.cores < 1:
            raise ConfigurationError(f"site {self.name!r}: cores must be >= 1")
        if self.hosts < 1:
            raise ConfigurationError(f"site {self.name!r}: hosts must be >= 1")
        if self.hosts > self.cores:
            raise ConfigurationError(
                f"site {self.name!r}: more hosts ({self.hosts}) than cores ({self.cores})"
            )
        if self.core_speed <= 0:
            raise ConfigurationError(f"site {self.name!r}: core_speed must be positive")
        if self.walltime_overhead < 0:
            raise ConfigurationError(f"site {self.name!r}: walltime_overhead must be >= 0")

    def cores_per_host(self) -> List[int]:
        """Split the site's cores across its hosts as evenly as possible."""
        base, extra = divmod(self.cores, self.hosts)
        return [base + (1 if i < extra else 0) for i in range(self.hosts)]

    def with_core_speed(self, core_speed: float) -> "SiteConfig":
        """Return a copy of this site with a different per-core speed.

        This is the operation the calibration loop performs for every
        candidate parameter vector.
        """
        return replace(self, core_speed=float(core_speed), properties=dict(self.properties))

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        data = {
            "name": self.name,
            "cores": self.cores,
            "core_speed": self.core_speed,
            "hosts": self.hosts,
            "ram_per_host": self.ram_per_host,
            "storage_read_bandwidth": self.storage_read_bandwidth,
            "storage_write_bandwidth": self.storage_write_bandwidth,
            "local_bandwidth": self.local_bandwidth,
            "local_latency": self.local_latency,
            "walltime_overhead": self.walltime_overhead,
            "properties": dict(self.properties),
        }
        if self.storage_capacity != float("inf"):
            data["storage_capacity"] = self.storage_capacity
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SiteConfig":
        """Build a :class:`SiteConfig` from a JSON dictionary."""
        known = {
            "name",
            "cores",
            "core_speed",
            "hosts",
            "ram_per_host",
            "storage_capacity",
            "storage_read_bandwidth",
            "storage_write_bandwidth",
            "local_bandwidth",
            "local_latency",
            "walltime_overhead",
            "properties",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"site {data.get('name', '?')!r}: unknown fields {sorted(unknown)}"
            )
        missing = {"name", "cores", "core_speed"} - set(data)
        if missing:
            raise ConfigurationError(f"site config missing required fields {sorted(missing)}")
        return cls(**data)


@dataclass
class InfrastructureConfig:
    """The full set of sites making up the simulated grid.

    This is the first of CGSim's three input files: an ordered collection of
    :class:`SiteConfig` entries with name-based lookup, aggregate helpers and
    JSON round-tripping.  Build one programmatically, from the generators, or
    load it from disk with :func:`repro.config.load_infrastructure`.

    Examples
    --------
    >>> from repro import generate_grid
    >>> infrastructure, _ = generate_grid(3, seed=1)
    >>> len(infrastructure), infrastructure.total_cores > 0
    (3, True)
    >>> infrastructure.site(infrastructure.site_names[0]).cores >= 1
    True
    """

    sites: List[SiteConfig] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [site.name for site in self.sites]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ConfigurationError(f"duplicate site names: {sorted(duplicates)}")

    def site(self, name: str) -> SiteConfig:
        """Return the site called ``name`` (raises if unknown)."""
        for site in self.sites:
            if site.name == name:
                return site
        raise ConfigurationError(f"unknown site {name!r}")

    @property
    def site_names(self) -> List[str]:
        """All site names in declaration order."""
        return [site.name for site in self.sites]

    @property
    def total_cores(self) -> int:
        """Sum of cores over every site."""
        return sum(site.cores for site in self.sites)

    def subset(self, names: List[str]) -> "InfrastructureConfig":
        """Return a new infrastructure containing only ``names`` (order preserved)."""
        wanted = set(names)
        missing = wanted - set(self.site_names)
        if missing:
            raise ConfigurationError(f"unknown sites {sorted(missing)}")
        return InfrastructureConfig(sites=[s for s in self.sites if s.name in wanted])

    def with_core_speeds(self, speeds: Dict[str, float]) -> "InfrastructureConfig":
        """Return a copy where the listed sites get new per-core speeds."""
        unknown = set(speeds) - set(self.site_names)
        if unknown:
            raise ConfigurationError(f"unknown sites in speed override: {sorted(unknown)}")
        return InfrastructureConfig(
            sites=[
                site.with_core_speed(speeds[site.name]) if site.name in speeds else site
                for site in self.sites
            ]
        )

    def to_dict(self) -> dict:
        """JSON-friendly representation (top-level object of the JSON file)."""
        return {"sites": [site.to_dict() for site in self.sites]}

    @classmethod
    def from_dict(cls, data: dict) -> "InfrastructureConfig":
        """Build from the parsed JSON object."""
        if "sites" not in data or not isinstance(data["sites"], list):
            raise ConfigurationError("infrastructure config must contain a 'sites' list")
        return cls(sites=[SiteConfig.from_dict(entry) for entry in data["sites"]])

    def __len__(self) -> int:
        return len(self.sites)

    def __iter__(self):
        return iter(self.sites)
