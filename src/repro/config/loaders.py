"""JSON (de)serialisation of the three configuration files.

The functions here are the file-facing edge of the input layer: they read or
write the infrastructure, topology and execution JSON files and return the
validated dataclasses from :mod:`repro.config`.  Everything structural is
validated in the dataclasses themselves; these loaders only add I/O and
nicer error messages pointing at the offending file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Tuple, Union

from repro.config.execution import ExecutionConfig
from repro.config.infrastructure import InfrastructureConfig
from repro.config.topology import TopologyConfig
from repro.utils.errors import ConfigurationError

__all__ = [
    "load_infrastructure",
    "load_topology",
    "load_execution",
    "load_simulation_inputs",
    "save_infrastructure",
    "save_topology",
    "save_execution",
]

PathLike = Union[str, Path]


def _read_json(path: PathLike, what: str) -> dict:
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"{what} config file not found: {path}")
    try:
        with path.open("r", encoding="utf-8") as handle:
            data = json.load(handle)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{what} config {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigurationError(f"{what} config {path} must contain a JSON object")
    return data


def _write_json(path: PathLike, data: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_infrastructure(path: PathLike) -> InfrastructureConfig:
    """Load and validate the infrastructure (sites) JSON file."""
    return InfrastructureConfig.from_dict(_read_json(path, "infrastructure"))


def load_topology(path: PathLike) -> TopologyConfig:
    """Load and validate the network-topology JSON file."""
    return TopologyConfig.from_dict(_read_json(path, "topology"))


def load_execution(path: PathLike) -> ExecutionConfig:
    """Load and validate the execution-parameters JSON file."""
    return ExecutionConfig.from_dict(_read_json(path, "execution"))


def load_simulation_inputs(
    infrastructure_path: PathLike,
    topology_path: PathLike,
    execution_path: PathLike,
) -> Tuple[InfrastructureConfig, TopologyConfig, ExecutionConfig]:
    """Load all three CGSim input files and cross-validate them.

    Cross validation ensures every link endpoint in the topology refers to a
    declared site (or to the main-server zone).
    """
    infrastructure = load_infrastructure(infrastructure_path)
    topology = load_topology(topology_path)
    execution = load_execution(execution_path)
    validate_cross_references(infrastructure, topology)
    return infrastructure, topology, execution


def validate_cross_references(
    infrastructure: InfrastructureConfig, topology: TopologyConfig
) -> None:
    """Check that the topology only references declared sites."""
    valid = set(infrastructure.site_names) | {topology.server_zone}
    for link in topology.links:
        for endpoint in (link.source, link.destination):
            if endpoint not in valid:
                raise ConfigurationError(
                    f"topology link {link.name!r} references unknown site {endpoint!r}"
                )


def save_infrastructure(config: InfrastructureConfig, path: PathLike) -> Path:
    """Write an infrastructure config to ``path`` as JSON."""
    return _write_json(path, config.to_dict())


def save_topology(config: TopologyConfig, path: PathLike) -> Path:
    """Write a topology config to ``path`` as JSON."""
    return _write_json(path, config.to_dict())


def save_execution(config: ExecutionConfig, path: PathLike) -> Path:
    """Write an execution config to ``path`` as JSON."""
    return _write_json(path, config.to_dict())
