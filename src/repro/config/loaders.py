"""File (de)serialisation of the three configuration files.

The functions here are the file-facing edge of the input layer: they read or
write the infrastructure, topology and execution files and return the
validated dataclasses from :mod:`repro.config`.  Everything structural is
validated in the dataclasses themselves; these loaders only add I/O and
nicer error messages pointing at the offending file.

Configuration files are JSON by default.  Files whose suffix is ``.yaml`` or
``.yml`` are parsed with PyYAML when it is installed; YAML support is
strictly optional -- the stdlib JSON path always works and a YAML file on a
yaml-less interpreter produces a clear :class:`ConfigurationError` instead of
an ImportError.  Writers always emit JSON (the canonical interchange format).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Tuple, Union

from repro.config.execution import ExecutionConfig
from repro.config.infrastructure import InfrastructureConfig
from repro.config.topology import TopologyConfig
from repro.utils.errors import ConfigurationError

__all__ = [
    "read_structured_file",
    "load_infrastructure",
    "load_topology",
    "load_execution",
    "load_simulation_inputs",
    "save_infrastructure",
    "save_topology",
    "save_execution",
]

PathLike = Union[str, Path]

#: File suffixes parsed as YAML (requires the optional PyYAML dependency).
YAML_SUFFIXES = (".yaml", ".yml")


def _yaml_module(path: Path, what: str):
    """Import PyYAML or explain, in config-error terms, that it is missing."""
    try:
        import yaml
    except ImportError:
        raise ConfigurationError(
            f"{what} file {path} is YAML but PyYAML is not installed; "
            "install 'pyyaml' or provide the file as JSON"
        ) from None
    return yaml


def read_structured_file(path: PathLike, what: str = "configuration") -> dict:
    """Read a JSON (or, optionally, YAML) mapping from ``path``.

    ``what`` names the kind of file in error messages (``"infrastructure"``,
    ``"scenario pack"``, ...).  The file must contain a single mapping at the
    top level; anything else -- a missing file, a parse error, a list or
    scalar document -- raises :class:`ConfigurationError` pointing at the
    file.  ``.yaml``/``.yml`` suffixes are parsed with PyYAML when available
    and rejected with a clear message when it is not; every other suffix is
    parsed as JSON with the standard library.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"{what} file not found: {path}")
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() in YAML_SUFFIXES:
        yaml = _yaml_module(path, what)
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ConfigurationError(f"{what} file {path} is not valid YAML: {exc}") from exc
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{what} file {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"{what} file {path} must contain a single top-level object/mapping"
        )
    return data


def _read_json(path: PathLike, what: str) -> dict:
    return read_structured_file(path, f"{what} config")


def _write_json(path: PathLike, data: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_infrastructure(path: PathLike) -> InfrastructureConfig:
    """Load and validate the infrastructure (sites) JSON/YAML file."""
    return InfrastructureConfig.from_dict(_read_json(path, "infrastructure"))


def load_topology(path: PathLike) -> TopologyConfig:
    """Load and validate the network-topology JSON/YAML file."""
    return TopologyConfig.from_dict(_read_json(path, "topology"))


def load_execution(path: PathLike) -> ExecutionConfig:
    """Load and validate the execution-parameters JSON/YAML file."""
    return ExecutionConfig.from_dict(_read_json(path, "execution"))


def load_simulation_inputs(
    infrastructure_path: PathLike,
    topology_path: PathLike,
    execution_path: PathLike,
) -> Tuple[InfrastructureConfig, TopologyConfig, ExecutionConfig]:
    """Load all three CGSim input files and cross-validate them.

    Cross validation ensures every link endpoint in the topology refers to a
    declared site (or to the main-server zone).
    """
    infrastructure = load_infrastructure(infrastructure_path)
    topology = load_topology(topology_path)
    execution = load_execution(execution_path)
    validate_cross_references(infrastructure, topology)
    return infrastructure, topology, execution


def validate_cross_references(
    infrastructure: InfrastructureConfig, topology: TopologyConfig
) -> None:
    """Check that the topology only references declared sites."""
    valid = set(infrastructure.site_names) | {topology.server_zone}
    for link in topology.links:
        for endpoint in (link.source, link.destination):
            if endpoint not in valid:
                raise ConfigurationError(
                    f"topology link {link.name!r} references unknown site {endpoint!r}"
                )


def save_infrastructure(config: InfrastructureConfig, path: PathLike) -> Path:
    """Write an infrastructure config to ``path`` as JSON."""
    return _write_json(path, config.to_dict())


def save_topology(config: TopologyConfig, path: PathLike) -> Path:
    """Write a topology config to ``path`` as JSON."""
    return _write_json(path, config.to_dict())


def save_execution(config: ExecutionConfig, path: PathLike) -> Path:
    """Write an execution config to ``path`` as JSON."""
    return _write_json(path, config.to_dict())
