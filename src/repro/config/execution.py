"""Execution-parameter configuration: how a simulation run behaves.

This is the third CGSim input file: which allocation-policy plugin to load,
how the workload is obtained (a trace file or a synthetic generator), the
monitoring cadence, random seeds, and where outputs go.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.utils.errors import ConfigurationError
from repro.utils.units import parse_duration

__all__ = ["MonitoringConfig", "OutputConfig", "StopConfig", "ExecutionConfig"]

#: Comparison operators a metric-predicate stop condition may use.
STOP_OPS = (">", ">=", "<", "<=")


@dataclass
class StopConfig:
    """Declarative early-stop conditions for a run.

    Lives inside :class:`ExecutionConfig` (and therefore inside a scenario
    pack's ``execution`` section).  Each condition is optional; the run stops
    at the *first* one that fires, and the reason is recorded as the
    session's ``stopped_reason`` (surfaced in ``RunResult`` and the scenario
    outcome).  Conditions are evaluated by
    :class:`repro.core.session.SimulationSession` between events, whenever a
    job reaches a terminal state:

    * ``max_simulated_time`` -- stop once the simulated clock reaches this
      horizon (unit strings like ``"12h"`` accepted).  Unlike
      ``max_simulation_time`` -- which runs the clock *to* the deadline even
      if the workload finished long before -- this stops at whichever comes
      first, workload completion or the budget: the bounded-cost semantics
      sweep trials want.
    * ``max_finished_jobs`` / ``max_failed_jobs`` -- stop once that many
      jobs have finished / failed.
    * ``metric`` + ``op`` + ``value`` -- a metric predicate: stop once the
      named :class:`~repro.core.metrics.SimulationMetrics` field (e.g.
      ``"failure_rate"``) compares true against ``value`` under ``op``
      (one of ``>``, ``>=``, ``<``, ``<=``).  Metrics are recomputed every
      ``check_every`` job completions (predicate evaluation is O(jobs), so
      raise this on huge runs).

    Examples
    --------
    >>> from repro import ExecutionConfig
    >>> from repro.config.execution import StopConfig
    >>> execution = ExecutionConfig(
    ...     stop=StopConfig(metric="failure_rate", op=">=", value=0.5))
    >>> execution.stop.metric
    'failure_rate'
    """

    max_simulated_time: Optional[float] = None
    max_finished_jobs: Optional[int] = None
    max_failed_jobs: Optional[int] = None
    metric: Optional[str] = None
    op: str = ">="
    value: Optional[float] = None
    check_every: int = 1

    def __post_init__(self) -> None:
        if self.max_simulated_time is not None:
            self.max_simulated_time = parse_duration(self.max_simulated_time)
            if self.max_simulated_time <= 0:
                raise ConfigurationError("stop: max_simulated_time must be positive")
        for name in ("max_finished_jobs", "max_failed_jobs"):
            bound = getattr(self, name)
            if bound is not None:
                if isinstance(bound, bool) or not isinstance(bound, int) or bound < 1:
                    raise ConfigurationError(
                        f"stop: {name} must be a positive integer, got {bound!r}"
                    )
        if self.op not in STOP_OPS:
            raise ConfigurationError(
                f"stop: op must be one of {'|'.join(STOP_OPS)}, got {self.op!r}"
            )
        if (self.metric is None) != (self.value is None):
            raise ConfigurationError(
                "stop: 'metric' and 'value' must be given together"
            )
        if self.metric is not None and (not isinstance(self.metric, str) or not self.metric):
            raise ConfigurationError("stop: metric must be a non-empty string")
        if self.value is not None:
            if isinstance(self.value, bool) or not isinstance(self.value, (int, float)):
                raise ConfigurationError(f"stop: value must be a number, got {self.value!r}")
            self.value = float(self.value)
        self.check_every = int(self.check_every)
        if self.check_every < 1:
            raise ConfigurationError("stop: check_every must be >= 1")

    def enabled(self) -> bool:
        """Whether any condition is actually configured."""
        return (
            self.max_simulated_time is not None
            or self.max_finished_jobs is not None
            or self.max_failed_jobs is not None
            or self.metric is not None
        )

    def to_dict(self) -> dict:
        """JSON-friendly representation (only the configured conditions)."""
        data: Dict[str, object] = {}
        if self.max_simulated_time is not None:
            data["max_simulated_time"] = self.max_simulated_time
        if self.max_finished_jobs is not None:
            data["max_finished_jobs"] = self.max_finished_jobs
        if self.max_failed_jobs is not None:
            data["max_failed_jobs"] = self.max_failed_jobs
        if self.metric is not None:
            data["metric"] = self.metric
            data["op"] = self.op
            data["value"] = self.value
            if self.check_every != 1:
                data["check_every"] = self.check_every
        return data


@dataclass
class MonitoringConfig:
    """Controls event-level monitoring and periodic snapshots.

    Lives inside :class:`ExecutionConfig` and balances observability against
    speed/memory on huge runs: per-transition rows can be disabled
    (``enable_events``), thinned (``sample_stride``), reduced to per-site
    counters (``detail="aggregate"``) or streamed to sinks instead of
    retained (``keep_in_memory=False``); snapshots fire every
    ``snapshot_interval`` simulated seconds (0 disables them).

    Examples
    --------
    >>> from repro import ExecutionConfig, MonitoringConfig
    >>> execution = ExecutionConfig(
    ...     monitoring=MonitoringConfig(snapshot_interval=0.0, sample_stride=10))
    >>> execution.monitoring.sample_stride
    10
    """

    #: Record per-job state transitions (Table 1 rows).
    enable_events: bool = True
    #: Interval in seconds between site-level snapshots (0 disables them).
    snapshot_interval: float = 300.0
    #: Keep records in memory (needed for the dashboard and ML dataset export).
    keep_in_memory: bool = True
    #: Rows buffered before attached sinks receive a batch.
    batch_size: int = 1024
    #: "full" records every transition row; "aggregate" keeps only the
    #: per-site counters (huge runs that only need site-level aggregates).
    detail: str = "full"
    #: Retain every Nth transition row (1 = all; counters stay exact).
    sample_stride: int = 1

    def __post_init__(self) -> None:
        self.snapshot_interval = parse_duration(self.snapshot_interval)
        if self.snapshot_interval < 0:
            raise ConfigurationError("snapshot_interval must be >= 0")
        if self.detail not in ("full", "aggregate"):
            raise ConfigurationError(
                f"monitoring detail must be 'full' or 'aggregate', got {self.detail!r}"
            )
        if self.batch_size < 1:
            raise ConfigurationError("monitoring batch_size must be >= 1")
        if self.sample_stride < 1:
            raise ConfigurationError("monitoring sample_stride must be >= 1")

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "enable_events": self.enable_events,
            "snapshot_interval": self.snapshot_interval,
            "keep_in_memory": self.keep_in_memory,
            "batch_size": self.batch_size,
            "detail": self.detail,
            "sample_stride": self.sample_stride,
        }


@dataclass
class OutputConfig:
    """Where simulation results are written.

    Lives inside :class:`ExecutionConfig`.  Each destination is optional and
    independent: a SQLite database (``sqlite_path``), a directory of CSV
    exports (``csv_directory``), and the ML-ready event-level dataset dump
    (``ml_dataset``); leaving everything ``None``/``False`` keeps the run
    purely in memory.  E.g.
    ``ExecutionConfig(output=OutputConfig(sqlite_path="run.sqlite"))``
    persists every monitored transition to ``run.sqlite``.
    """

    #: SQLite database path (``None`` disables the SQLite store).
    sqlite_path: Optional[str] = None
    #: Directory for CSV exports (``None`` disables CSV export).
    csv_directory: Optional[str] = None
    #: Also dump the ML-ready event-level dataset.
    ml_dataset: bool = False

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "sqlite_path": self.sqlite_path,
            "csv_directory": self.csv_directory,
            "ml_dataset": self.ml_dataset,
        }


@dataclass
class ExecutionConfig:
    """Run-level parameters of one simulation.

    Parameters
    ----------
    plugin:
        Allocation policy to use.  Either the name of a bundled policy
        (``"round_robin"``, ``"least_loaded"``, ...) or a dotted
        ``"module:ClassName"`` path to a user plugin, mirroring CGSim's
        shared-library plugin loading.
    plugin_options:
        Free-form options handed to the plugin's constructor.
    seed:
        Root random seed for the whole run.
    max_simulation_time:
        Hard stop for the simulated clock (``None`` runs to completion).
    dispatch_interval:
        Minimum simulated time between two dispatch rounds of the main
        server (batching window).
    pending_retry_interval:
        How often the main server re-examines the pending list when no
        resource change has occurred.
    scheduling_overhead:
        Fixed simulated cost (seconds) added per dispatched job, modelling
        the workload-management latency.
    max_retries:
        How many times the main server automatically resubmits a failed job
        (0 disables retries).  This mirrors PanDA's automatic resubmission;
        every attempt appears in the output dataset, so the job failure rate
        metric counts attempts exactly as production monitoring does.
    macro_batch:
        Route batch-eligible timeouts (workload release times, job-completion
        timers, monitoring ticks) through the kernel's columnar macro-event
        lanes (:mod:`repro.des.macro`) instead of per-event pooled timeouts.
        Off by default: the scalar path is the bit-identical reference; turn
        this on for large throughput-bound runs.
    shards:
        Number of sharded-clock regions to run the simulation across
        (:mod:`repro.des.sharded`).  1 (the default) is the ordinary
        single-clock engine; N > 1 partitions the sites into N regions, each
        advancing its own clock in a worker process.  Only workloads whose
        jobs are pinned to sites a priori are eligible (see
        ``repro.des.sharded.check_shardable``).
    shard_window:
        Synchronization-window size (seconds) between sharded-clock regions;
        ``None`` derives it from the topology's cross-region lookahead.
    """

    plugin: str = "round_robin"
    plugin_options: Dict[str, object] = field(default_factory=dict)
    seed: int = 0
    max_simulation_time: Optional[float] = None
    dispatch_interval: float = 1.0
    pending_retry_interval: float = 60.0
    scheduling_overhead: float = 0.0
    max_retries: int = 0
    macro_batch: bool = False
    shards: int = 1
    shard_window: Optional[float] = None
    monitoring: MonitoringConfig = field(default_factory=MonitoringConfig)
    output: OutputConfig = field(default_factory=OutputConfig)
    #: Optional early-stop conditions evaluated between events by sessions
    #: (``None`` disables them; see :class:`StopConfig`).
    stop: Optional[StopConfig] = None

    def __post_init__(self) -> None:
        if not self.plugin:
            raise ConfigurationError("execution config: plugin must be non-empty")
        self.macro_batch = bool(self.macro_batch)
        self.shards = int(self.shards)
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.shard_window is not None:
            self.shard_window = parse_duration(self.shard_window)
            if self.shard_window <= 0:
                raise ConfigurationError("shard_window must be positive")
        self.dispatch_interval = parse_duration(self.dispatch_interval)
        self.pending_retry_interval = parse_duration(self.pending_retry_interval)
        self.scheduling_overhead = parse_duration(self.scheduling_overhead)
        if self.max_simulation_time is not None:
            self.max_simulation_time = parse_duration(self.max_simulation_time)
            if self.max_simulation_time <= 0:
                raise ConfigurationError("max_simulation_time must be positive")
        if self.dispatch_interval < 0:
            raise ConfigurationError("dispatch_interval must be >= 0")
        if self.pending_retry_interval <= 0:
            raise ConfigurationError("pending_retry_interval must be positive")
        if self.scheduling_overhead < 0:
            raise ConfigurationError("scheduling_overhead must be >= 0")
        self.max_retries = int(self.max_retries)
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        self.seed = int(self.seed)
        if isinstance(self.monitoring, dict):
            self.monitoring = MonitoringConfig(**self.monitoring)
        if isinstance(self.output, dict):
            self.output = OutputConfig(**self.output)
        if isinstance(self.stop, dict):
            try:
                self.stop = StopConfig(**self.stop)
            except TypeError as exc:
                raise ConfigurationError(f"execution config: stop: {exc}") from exc

    def to_dict(self) -> dict:
        """JSON-friendly representation (top-level object of the JSON file)."""
        data = {
            "plugin": self.plugin,
            "plugin_options": dict(self.plugin_options),
            "seed": self.seed,
            "max_simulation_time": self.max_simulation_time,
            "dispatch_interval": self.dispatch_interval,
            "pending_retry_interval": self.pending_retry_interval,
            "scheduling_overhead": self.scheduling_overhead,
            "max_retries": self.max_retries,
            "monitoring": self.monitoring.to_dict(),
            "output": self.output.to_dict(),
        }
        # Emitted only when non-default so existing config files / scenario
        # pack canonical JSON stay byte-stable.
        if self.macro_batch:
            data["macro_batch"] = self.macro_batch
        if self.shards != 1:
            data["shards"] = self.shards
        if self.shard_window is not None:
            data["shard_window"] = self.shard_window
        if self.stop is not None:
            data["stop"] = self.stop.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionConfig":
        """Build from the parsed JSON object."""
        known = {
            "plugin",
            "plugin_options",
            "seed",
            "max_simulation_time",
            "dispatch_interval",
            "pending_retry_interval",
            "scheduling_overhead",
            "max_retries",
            "macro_batch",
            "shards",
            "shard_window",
            "monitoring",
            "output",
            "stop",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(f"execution config: unknown fields {sorted(unknown)}")
        return cls(**data)
