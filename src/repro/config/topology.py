"""Network topology configuration: how the sites are interconnected.

The topology JSON lists inter-site links (bandwidth, latency, endpoints) plus
the name of the zone hosting the main server.  Common WLCG-like shapes
(star around the Tier-0, tiered hierarchy, full mesh) can be produced by
:mod:`repro.config.generators`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.utils.errors import ConfigurationError
from repro.utils.units import parse_bandwidth, parse_duration

__all__ = ["LinkConfig", "TopologyConfig"]


@dataclass
class LinkConfig:
    """One inter-site (wide-area) link of the network topology.

    Joins two endpoints (site names, or the main-server zone) with a
    bandwidth in bytes/second and a latency in seconds; unit strings are
    accepted and normalised (``bandwidth="10Gbps"``, ``latency="15ms"``).
    Links are declared in the topology file and cross-validated against the
    infrastructure so a link can never reference an undeclared site.

    Examples
    --------
    >>> from repro import LinkConfig
    >>> link = LinkConfig(name="cern-bnl", source="CERN", destination="BNL",
    ...                   bandwidth="10Gbps", latency="15ms")
    >>> round(link.latency, 3)
    0.015
    """

    name: str
    source: str
    destination: str
    bandwidth: float
    latency: float = 0.0
    sharing: str = "shared"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("link name must be non-empty")
        if self.source == self.destination:
            raise ConfigurationError(f"link {self.name!r} connects a site to itself")
        self.bandwidth = parse_bandwidth(self.bandwidth)
        self.latency = parse_duration(self.latency)
        if self.sharing not in ("shared", "fatpipe"):
            raise ConfigurationError(f"link {self.name!r}: unknown sharing {self.sharing!r}")
        if self.bandwidth <= 0:
            raise ConfigurationError(f"link {self.name!r}: bandwidth must be positive")
        if self.latency < 0:
            raise ConfigurationError(f"link {self.name!r}: latency must be >= 0")

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "name": self.name,
            "source": self.source,
            "destination": self.destination,
            "bandwidth": self.bandwidth,
            "latency": self.latency,
            "sharing": self.sharing,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LinkConfig":
        """Build from a JSON dictionary."""
        missing = {"name", "source", "destination", "bandwidth"} - set(data)
        if missing:
            raise ConfigurationError(f"link config missing required fields {sorted(missing)}")
        return cls(**data)


@dataclass
class TopologyConfig:
    """The inter-site network topology.

    Parameters
    ----------
    links:
        Wide-area links between sites.
    server_zone:
        Name of the zone where the main server (sender actor) lives.  The
        builder creates this zone automatically when it is not one of the
        infrastructure sites.
    server_bandwidth / server_latency:
        Characteristics of the automatically created links connecting the
        main server zone to every site that has no explicit link to it.
    routing_weight:
        Shortest-path weight for inter-zone routing.
    """

    links: List[LinkConfig] = field(default_factory=list)
    server_zone: str = "main-server"
    server_bandwidth: float = 1.25e9
    server_latency: float = 0.01
    routing_weight: str = "latency"

    def __post_init__(self) -> None:
        self.server_bandwidth = parse_bandwidth(self.server_bandwidth)
        self.server_latency = parse_duration(self.server_latency)
        if self.routing_weight not in ("latency", "hops", "inverse_bandwidth"):
            raise ConfigurationError(f"unknown routing weight {self.routing_weight!r}")
        names = [link.name for link in self.links]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ConfigurationError(f"duplicate link names: {sorted(duplicates)}")

    def endpoints(self) -> List[str]:
        """Every site name referenced by at least one link."""
        seen: List[str] = []
        for link in self.links:
            for endpoint in (link.source, link.destination):
                if endpoint not in seen:
                    seen.append(endpoint)
        return seen

    def links_for(self, site: str) -> List[LinkConfig]:
        """Links that have ``site`` as one endpoint."""
        return [l for l in self.links if site in (l.source, l.destination)]

    def to_dict(self) -> dict:
        """JSON-friendly representation (top-level object of the JSON file)."""
        return {
            "server_zone": self.server_zone,
            "server_bandwidth": self.server_bandwidth,
            "server_latency": self.server_latency,
            "routing_weight": self.routing_weight,
            "links": [link.to_dict() for link in self.links],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TopologyConfig":
        """Build from the parsed JSON object."""
        links = [LinkConfig.from_dict(entry) for entry in data.get("links", [])]
        kwargs = {k: v for k, v in data.items() if k != "links"}
        known = {"server_zone", "server_bandwidth", "server_latency", "routing_weight"}
        unknown = set(kwargs) - known
        if unknown:
            raise ConfigurationError(f"topology config: unknown fields {sorted(unknown)}")
        return cls(links=links, **kwargs)
