"""Input layer: the three JSON configuration files of CGSim.

The paper's input layer configures a simulation through three JSON files:

1. **Infrastructure** -- the computing sites: core counts, per-core speed,
   RAM, storage and site properties (:class:`SiteConfig`,
   :class:`InfrastructureConfig`).
2. **Network topology** -- how sites are interconnected: links with
   bandwidth/latency, and which sites they join (:class:`LinkConfig`,
   :class:`TopologyConfig`).
3. **Execution parameters** -- everything about the run itself: the workload
   source, the allocation-policy plugin, monitoring cadence, seeds and output
   destinations (:class:`ExecutionConfig`).

All three are plain dataclasses with eager validation, JSON (de)serialisation
helpers in :mod:`repro.config.loaders`, and synthetic generators in
:mod:`repro.config.generators` for building WLCG-like setups of arbitrary
size.
"""

from repro.config.execution import ExecutionConfig, MonitoringConfig, OutputConfig
from repro.config.infrastructure import InfrastructureConfig, SiteConfig
from repro.config.loaders import (
    load_execution,
    load_infrastructure,
    load_simulation_inputs,
    load_topology,
    read_structured_file,
    save_execution,
    save_infrastructure,
    save_topology,
)
from repro.config.topology import LinkConfig, TopologyConfig

__all__ = [
    "SiteConfig",
    "InfrastructureConfig",
    "LinkConfig",
    "TopologyConfig",
    "ExecutionConfig",
    "MonitoringConfig",
    "OutputConfig",
    "read_structured_file",
    "load_infrastructure",
    "load_topology",
    "load_execution",
    "load_simulation_inputs",
    "save_infrastructure",
    "save_topology",
    "save_execution",
]
