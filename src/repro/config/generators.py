"""Synthetic configuration generators.

The evaluation of the paper runs WLCG-like setups ranging from one to fifty
(and eventually hundreds of) sites.  These helpers generate infrastructure
and topology configurations of arbitrary size with realistic heterogeneity:

* per-site core counts drawn in the 100-2,000 range used in the paper's
  scalability study;
* heterogeneous per-core speeds (HS23-like spread);
* a star or tiered topology around a Tier-0-like hub.

The generators are deterministic for a given seed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config.infrastructure import InfrastructureConfig, SiteConfig
from repro.config.topology import LinkConfig, TopologyConfig
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomSource

__all__ = [
    "generate_sites",
    "generate_star_topology",
    "generate_tiered_topology",
    "generate_grid",
]


def generate_sites(
    count: int,
    seed: int = 0,
    min_cores: int = 100,
    max_cores: int = 2000,
    mean_core_speed: float = 10e9,
    speed_spread: float = 0.35,
    name_prefix: str = "SITE",
) -> InfrastructureConfig:
    """Generate ``count`` heterogeneous sites.

    Core counts are uniform in ``[min_cores, max_cores]`` (the range used by
    the paper's multi-site scaling experiment) and per-core speeds are
    lognormally distributed around ``mean_core_speed`` with multiplicative
    spread ``speed_spread``.
    """
    if count < 1:
        raise ConfigurationError("site count must be >= 1")
    if min_cores < 1 or max_cores < min_cores:
        raise ConfigurationError("invalid core range")
    rng = RandomSource(seed)
    sites: List[SiteConfig] = []
    for index in range(count):
        cores = rng.integers("cores", min_cores, max_cores + 1)
        speed = mean_core_speed * float(
            rng.generator("speed").lognormal(0.0, speed_spread)
        )
        hosts = max(1, cores // 64)
        sites.append(
            SiteConfig(
                name=f"{name_prefix}_{index:03d}",
                cores=cores,
                core_speed=speed,
                hosts=hosts,
                properties={"tier": "2"},
            )
        )
    return InfrastructureConfig(sites=sites)


def generate_star_topology(
    infrastructure: InfrastructureConfig,
    hub: Optional[str] = None,
    bandwidth: float = 1.25e9,
    latency: float = 0.02,
    server_zone: str = "main-server",
) -> TopologyConfig:
    """Connect every site to a central hub site (or to the server zone).

    When ``hub`` is ``None`` the main-server zone is the hub, which is the
    minimal topology used by the scalability benchmarks.
    """
    links: List[LinkConfig] = []
    if hub is not None and hub not in infrastructure.site_names:
        raise ConfigurationError(f"hub {hub!r} is not a declared site")
    center = hub or server_zone
    for site in infrastructure.sites:
        if site.name == center:
            continue
        links.append(
            LinkConfig(
                name=f"{center}--{site.name}",
                source=center,
                destination=site.name,
                bandwidth=bandwidth,
                latency=latency,
            )
        )
    return TopologyConfig(links=links, server_zone=server_zone)


def generate_tiered_topology(
    infrastructure: InfrastructureConfig,
    tier0: Optional[str] = None,
    tier1_count: int = 5,
    backbone_bandwidth: float = 12.5e9,
    edge_bandwidth: float = 1.25e9,
    backbone_latency: float = 0.01,
    edge_latency: float = 0.03,
    server_zone: str = "main-server",
    seed: int = 0,
) -> TopologyConfig:
    """Build a WLCG-like tiered topology.

    The first site (or ``tier0``) plays the Tier-0 role; the next
    ``tier1_count`` sites become Tier-1 hubs connected to the Tier-0 by
    high-bandwidth backbone links; every remaining site attaches to one
    Tier-1 hub (round-robin) through an edge link.  The main server is
    connected to the Tier-0.
    """
    names = infrastructure.site_names
    if not names:
        raise ConfigurationError("cannot build a topology over zero sites")
    t0 = tier0 or names[0]
    if t0 not in names:
        raise ConfigurationError(f"tier0 site {t0!r} is not declared")
    others = [n for n in names if n != t0]
    tier1 = others[: max(0, tier1_count)]
    tier2 = others[len(tier1):]

    links: List[LinkConfig] = [
        LinkConfig(
            name=f"{server_zone}--{t0}",
            source=server_zone,
            destination=t0,
            bandwidth=backbone_bandwidth,
            latency=backbone_latency,
        )
    ]
    for name in tier1:
        links.append(
            LinkConfig(
                name=f"{t0}--{name}",
                source=t0,
                destination=name,
                bandwidth=backbone_bandwidth,
                latency=backbone_latency,
            )
        )
    hubs = tier1 or [t0]
    for index, name in enumerate(tier2):
        hub = hubs[index % len(hubs)]
        links.append(
            LinkConfig(
                name=f"{hub}--{name}",
                source=hub,
                destination=name,
                bandwidth=edge_bandwidth,
                latency=edge_latency,
            )
        )
    return TopologyConfig(links=links, server_zone=server_zone)


def generate_grid(
    site_count: int,
    seed: int = 0,
    topology: str = "star",
    **site_kwargs,
) -> Tuple[InfrastructureConfig, TopologyConfig]:
    """Convenience helper generating both infrastructure and topology.

    ``topology`` is ``"star"`` (every site connected to the main server) or
    ``"tiered"`` (WLCG-like hierarchy).
    """
    infrastructure = generate_sites(site_count, seed=seed, **site_kwargs)
    if topology == "star":
        topo = generate_star_topology(infrastructure)
    elif topology == "tiered":
        topo = generate_tiered_topology(infrastructure, seed=seed)
    else:
        raise ConfigurationError(f"unknown topology kind {topology!r}")
    return infrastructure, topo
