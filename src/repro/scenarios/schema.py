"""The declarative scenario-pack schema.

A *scenario pack* is a single YAML/JSON file describing a complete "what if"
study: the grid (generated, the WLCG catalogue, or references to the three
classic config files), the workload, optional fault-injection campaigns and
data placement, the execution parameters, and -- optionally -- either a sweep
over any pack field (fanned across worker processes) or a calibration study.

Every section validates eagerly into the existing configuration dataclasses
with config-style error messages that name the pack and the offending field,
so a typo in a pack fails at ``repro scenario validate`` time, never ten
minutes into a sweep.

The schema is deliberately data-only: a pack contains parameters, never code,
which is what makes packs diffable, sweepable (axes are dotted paths into the
pack, e.g. ``execution.plugin``) and safe to share.
"""

from __future__ import annotations

import copy
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config.execution import ExecutionConfig
from repro.config.infrastructure import InfrastructureConfig
from repro.config.topology import TopologyConfig
from repro.faults.models import JobFailureModel, OutageWindow, SiteOutageModel
from repro.utils.errors import ConfigurationError
from repro.utils.jsonpointer import join_pointer
from repro.utils.units import parse_bytes, parse_duration
from repro.workload.generator import WorkloadSpec
from repro.workload.job import Job

__all__ = [
    "GridSection",
    "WorkloadSection",
    "FaultsSection",
    "DataSection",
    "CacheSection",
    "CalibrationSection",
    "SweepSection",
    "ScenarioPack",
    "apply_override",
    "apply_overrides",
]

#: Default metrics rendered for sweep packs that do not choose their own.
DEFAULT_SWEEP_METRICS = ("makespan", "mean_queue_time", "throughput", "failure_rate")


class _Ctx(str):
    """Validation context: the human-readable label plus a JSON pointer.

    Behaves exactly like the plain context string it always was (callers
    interpolate it into messages with ``f"{ctx}: ..."``), but additionally
    carries the RFC 6901 pointer of the pack field being validated, so error
    messages can end with a machine-matchable ``(at /workload/jobs)`` suffix
    -- the same addressing scheme the generated JSON Schema validator in
    :mod:`repro.schema` reports.  External callers that pass a plain ``str``
    context still work; their messages simply omit the pointer suffix.
    """

    __slots__ = ("pointer",)

    pointer: str

    def __new__(cls, label: str, pointer: str = "") -> "_Ctx":
        self = super().__new__(cls, label)
        self.pointer = pointer
        return self

    def child(self, label: str, *parts: Any) -> "_Ctx":
        """Context for a sub-field: label appended, pointer tokens joined."""
        return _Ctx(f"{self}: {label}", self.pointer + join_pointer(parts))


def _at(ctx: str, *parts: Any) -> str:
    """The ``" (at /json/pointer)"`` suffix for an error raised under ``ctx``.

    Empty when ``ctx`` is a plain string (no pointer available); the
    whole-document pointer renders as ``/`` for readability.
    """
    pointer = getattr(ctx, "pointer", None)
    if pointer is None:
        return ""
    return f" (at {pointer + join_pointer(parts) or '/'})"


def _child(ctx: str, label: str, *parts: Any) -> str:
    """Sub-field context: pointer-carrying when ``ctx`` is, plain otherwise."""
    if isinstance(ctx, _Ctx):
        return ctx.child(label, *parts)
    return f"{ctx}: {label}"


def _require_mapping(data: Any, ctx: str) -> dict:
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"{ctx} must be a mapping, got {type(data).__name__}{_at(ctx)}"
        )
    return data


def _reject_unknown(data: dict, known: Sequence[str], ctx: str) -> None:
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise ConfigurationError(
            f"{ctx}: unknown fields {unknown}; known fields: {sorted(known)}"
            f"{_at(ctx, unknown[0])}"
        )


def _float_field(data: dict, name: str, default: float, ctx: str) -> float:
    value = data.get(name, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"{ctx}: {name} must be a number, got {value!r}{_at(ctx, name)}"
        )
    return float(value)


def _int_field(data: dict, name: str, default: int, ctx: str, minimum: int) -> int:
    value = data.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"{ctx}: {name} must be an integer, got {value!r}{_at(ctx, name)}"
        )
    if value < minimum:
        raise ConfigurationError(
            f"{ctx}: {name} must be >= {minimum}, got {value}{_at(ctx, name)}"
        )
    return value


@dataclass
class GridSection:
    """Where the simulated infrastructure and topology come from.

    ``kind`` selects one of three sources:

    * ``"synthetic"`` -- :func:`repro.config.generators.generate_grid` builds a
      heterogeneous grid of ``sites`` sites with the given ``layout``
      (``"star"`` or ``"tiered"``) and ``seed``;
    * ``"wlcg"`` -- the built-in WLCG catalogue
      (:func:`repro.atlas.wlcg.wlcg_grid`) provides the ``sites`` largest
      ATLAS-like sites with their tiered topology;
    * ``"files"`` -- the classic pair of config files: ``infrastructure`` and
      ``topology`` are paths (JSON, or YAML with PyYAML installed), resolved
      relative to the pack file.
    """

    kind: str = "synthetic"
    sites: int = 10
    layout: str = "star"
    seed: int = 0
    infrastructure: Optional[str] = None
    topology: Optional[str] = None

    @classmethod
    def from_dict(cls, data: Any, ctx: str) -> "GridSection":
        data = _require_mapping(data, ctx)
        _reject_unknown(
            data, ["kind", "sites", "layout", "seed", "infrastructure", "topology"], ctx
        )
        kind = data.get("kind", "synthetic")
        if kind not in ("synthetic", "wlcg", "files"):
            raise ConfigurationError(
                f"{ctx}: kind must be one of synthetic|wlcg|files, got {kind!r}"
                f"{_at(ctx, 'kind')}"
            )
        section = cls(
            kind=kind,
            sites=_int_field(data, "sites", 10, ctx, minimum=1),
            layout=data.get("layout", "star"),
            seed=_int_field(data, "seed", 0, ctx, minimum=0),
            infrastructure=data.get("infrastructure"),
            topology=data.get("topology"),
        )
        if section.layout not in ("star", "tiered"):
            raise ConfigurationError(
                f"{ctx}: layout must be star|tiered, got {section.layout!r}"
                f"{_at(ctx, 'layout')}"
            )
        if kind == "files":
            for name in ("infrastructure", "topology"):
                if not getattr(section, name):
                    raise ConfigurationError(
                        f"{ctx}: kind 'files' requires the {name!r} path{_at(ctx, name)}"
                    )
        else:
            for name in ("infrastructure", "topology"):
                if data.get(name) is not None:
                    raise ConfigurationError(
                        f"{ctx}: {name!r} is only valid with kind 'files'{_at(ctx, name)}"
                    )
        return section

    def build(self, base_dir: Optional[Path]) -> Tuple[InfrastructureConfig, TopologyConfig]:
        """Materialise the infrastructure and topology this section describes."""
        if self.kind == "wlcg":
            from repro.atlas.wlcg import wlcg_grid

            return wlcg_grid(site_count=self.sites)
        if self.kind == "files":
            from repro.config.loaders import (
                load_infrastructure,
                load_topology,
                validate_cross_references,
            )

            base = base_dir or Path.cwd()
            assert self.infrastructure is not None and self.topology is not None
            infrastructure = load_infrastructure(_resolve(base, self.infrastructure))
            topology = load_topology(_resolve(base, self.topology))
            validate_cross_references(infrastructure, topology)
            return infrastructure, topology
        from repro.config.generators import generate_grid

        return generate_grid(self.sites, seed=self.seed, topology=self.layout)

    def to_dict(self) -> dict:
        data: Dict[str, Any] = {"kind": self.kind}
        if self.kind == "files":
            data["infrastructure"] = self.infrastructure
            data["topology"] = self.topology
        else:
            data["sites"] = self.sites
            if self.kind == "synthetic":
                data["layout"] = self.layout
                data["seed"] = self.seed
        return data


def _resolve(base: Path, relative: str) -> Path:
    path = Path(relative)
    return path if path.is_absolute() else base / path


@dataclass
class WorkloadSection:
    """How the job trace is produced.

    ``generator`` is ``"synthetic"`` (:class:`SyntheticWorkloadGenerator`) or
    ``"panda"`` (:class:`repro.atlas.panda.PandaWorkloadModel`, which groups
    jobs into PanDA-like tasks).  ``spec`` holds :class:`WorkloadSpec` field
    overrides (``walltime_sigma``, ``multicore_fraction``, ...); unknown keys
    are rejected by name.  ``per_site_jobs`` switches the synthetic generator
    to exactly-N-jobs-per-site mode (the multi-site scaling and calibration
    studies), and ``trace`` replays a CSV trace file instead of generating.
    """

    generator: str = "synthetic"
    jobs: int = 1000
    seed: int = 0
    spec: Dict[str, Any] = field(default_factory=dict)
    mean_task_size: float = 25.0
    per_site_jobs: Optional[int] = None
    trace: Optional[str] = None

    @classmethod
    def from_dict(cls, data: Any, ctx: str) -> "WorkloadSection":
        data = _require_mapping(data, ctx)
        _reject_unknown(
            data,
            ["generator", "jobs", "seed", "spec", "mean_task_size", "per_site_jobs", "trace"],
            ctx,
        )
        generator = data.get("generator", "synthetic")
        if generator not in ("synthetic", "panda"):
            raise ConfigurationError(
                f"{ctx}: generator must be synthetic|panda, got {generator!r}"
                f"{_at(ctx, 'generator')}"
            )
        spec_ctx = _child(ctx, "spec", "spec")
        spec = _require_mapping(data.get("spec", {}), spec_ctx)
        valid_spec = set(WorkloadSpec.__dataclass_fields__)
        _reject_unknown(spec, sorted(valid_spec), spec_ctx)
        try:
            WorkloadSpec(**spec)  # eager validation with WorkloadSpec's messages
        except Exception as exc:
            raise ConfigurationError(f"{spec_ctx}: {exc}{_at(spec_ctx)}") from exc
        section = cls(
            generator=generator,
            jobs=_int_field(data, "jobs", 1000, ctx, minimum=1),
            seed=_int_field(data, "seed", 0, ctx, minimum=0),
            spec=dict(spec),
            mean_task_size=_float_field(data, "mean_task_size", 25.0, ctx),
            per_site_jobs=data.get("per_site_jobs"),
            trace=data.get("trace"),
        )
        if section.mean_task_size < 1:
            raise ConfigurationError(
                f"{ctx}: mean_task_size must be >= 1, got {section.mean_task_size}"
                f"{_at(ctx, 'mean_task_size')}"
            )
        if section.per_site_jobs is not None:
            if generator != "synthetic":
                raise ConfigurationError(
                    f"{ctx}: per_site_jobs requires the synthetic generator"
                    f"{_at(ctx, 'per_site_jobs')}"
                )
            if not isinstance(section.per_site_jobs, int) or section.per_site_jobs < 1:
                raise ConfigurationError(
                    f"{ctx}: per_site_jobs must be a positive integer"
                    f"{_at(ctx, 'per_site_jobs')}"
                )
        if section.trace is not None and section.per_site_jobs is not None:
            raise ConfigurationError(
                f"{ctx}: trace and per_site_jobs are exclusive{_at(ctx, 'trace')}"
            )
        return section

    def build(self, infrastructure: InfrastructureConfig, base_dir: Optional[Path]) -> List[Job]:
        """Generate (or load) the job list against ``infrastructure``."""
        if self.trace is not None:
            from repro.workload.trace import load_trace

            return load_trace(_resolve(base_dir or Path.cwd(), self.trace))
        spec = WorkloadSpec(**self.spec)
        if self.generator == "panda":
            from repro.atlas.panda import PandaWorkloadModel

            model = PandaWorkloadModel(
                infrastructure, spec=spec, seed=self.seed, mean_task_size=self.mean_task_size
            )
            return model.generate_trace(self.jobs)
        from repro.workload.generator import SyntheticWorkloadGenerator

        generator = SyntheticWorkloadGenerator(infrastructure, spec=spec, seed=self.seed)
        if self.per_site_jobs is not None:
            return generator.generate_per_site(self.per_site_jobs)
        return generator.generate(self.jobs)

    def to_dict(self) -> dict:
        data: Dict[str, Any] = {"generator": self.generator, "seed": self.seed}
        if self.trace is not None:
            data["trace"] = self.trace
        elif self.per_site_jobs is not None:
            data["per_site_jobs"] = self.per_site_jobs
        else:
            data["jobs"] = self.jobs
        if self.spec:
            data["spec"] = dict(self.spec)
        if self.generator == "panda" and self.mean_task_size != 25.0:
            data["mean_task_size"] = self.mean_task_size
        return data


@dataclass
class FaultsSection:
    """Fault-injection campaign: job failures plus site outages.

    ``job_failures`` maps straight onto :class:`JobFailureModel` (per-site
    failure probabilities); ``outages`` lists explicit
    :class:`OutageWindow` intervals (durations accept unit strings such as
    ``"4h"``); ``outage_model`` draws an MTBF/MTTR schedule for every site
    via :class:`SiteOutageModel` over the given ``horizon``.
    """

    job_failures: Optional[Dict[str, Any]] = None
    outages: List[Dict[str, Any]] = field(default_factory=list)
    outage_model: Optional[Dict[str, Any]] = None

    @classmethod
    def from_dict(cls, data: Any, ctx: str) -> "FaultsSection":
        data = _require_mapping(data, ctx)
        _reject_unknown(data, ["job_failures", "outages", "outage_model"], ctx)
        section = cls(
            job_failures=data.get("job_failures"),
            outages=list(data.get("outages", [])),
            outage_model=data.get("outage_model"),
        )
        if section.job_failures is not None:
            failures_ctx = _child(ctx, "job_failures", "job_failures")
            failures = _require_mapping(section.job_failures, failures_ctx)
            _reject_unknown(
                failures,
                ["default_rate", "site_rates", "mean_failure_fraction", "seed"],
                failures_ctx,
            )
            try:
                JobFailureModel(**failures)
            except Exception as exc:
                raise ConfigurationError(
                    f"{failures_ctx}: {exc}{_at(failures_ctx)}"
                ) from exc
        for index, window in enumerate(section.outages):
            window_ctx = _child(ctx, f"outages[{index}]", "outages", index)
            window = _require_mapping(window, window_ctx)
            _reject_unknown(window, ["site", "start", "end"], window_ctx)
            for key in ("site", "start", "end"):
                if key not in window:
                    raise ConfigurationError(
                        f"{window_ctx} requires {key!r}{_at(window_ctx, key)}"
                    )
            try:
                OutageWindow(
                    site=window["site"],
                    start=parse_duration(window["start"]),
                    end=parse_duration(window["end"]),
                )
            except Exception as exc:
                raise ConfigurationError(
                    f"{window_ctx}: {exc}{_at(window_ctx)}"
                ) from exc
        if section.outage_model is not None:
            model_ctx = _child(ctx, "outage_model", "outage_model")
            model = _require_mapping(section.outage_model, model_ctx)
            _reject_unknown(
                model,
                ["mean_time_between_failures", "mean_time_to_repair", "horizon", "seed"],
                model_ctx,
            )
            if "horizon" not in model:
                raise ConfigurationError(
                    f"{ctx}: outage_model requires 'horizon'{_at(model_ctx, 'horizon')}"
                )
            try:
                params = {k: v for k, v in model.items() if k != "horizon"}
                for key in ("mean_time_between_failures", "mean_time_to_repair"):
                    if key in params:
                        params[key] = parse_duration(params[key])
                SiteOutageModel(**params)
                if parse_duration(model["horizon"]) <= 0:
                    raise ConfigurationError(
                        f"horizon must be positive{_at(model_ctx, 'horizon')}"
                    )
            except ConfigurationError:
                raise
            except Exception as exc:
                raise ConfigurationError(
                    f"{model_ctx}: {exc}{_at(model_ctx)}"
                ) from exc
        return section

    def build(
        self, site_names: Sequence[str]
    ) -> Tuple[Optional[JobFailureModel], List[OutageWindow]]:
        """Materialise the failure model and the concrete outage windows."""
        failure_model = None
        if self.job_failures is not None:
            failure_model = JobFailureModel(**self.job_failures)
        windows = [
            OutageWindow(
                site=w["site"], start=parse_duration(w["start"]), end=parse_duration(w["end"])
            )
            for w in self.outages
        ]
        if self.outage_model is not None:
            params = {k: v for k, v in self.outage_model.items() if k != "horizon"}
            for key in ("mean_time_between_failures", "mean_time_to_repair"):
                if key in params:
                    params[key] = parse_duration(params[key])
            model = SiteOutageModel(**params)
            windows.extend(model.schedule(site_names, parse_duration(self.outage_model["horizon"])))
        return failure_model, windows

    def to_dict(self) -> dict:
        data: Dict[str, Any] = {}
        if self.job_failures is not None:
            data["job_failures"] = dict(self.job_failures)
        if self.outages:
            data["outages"] = [dict(w) for w in self.outages]
        if self.outage_model is not None:
            data["outage_model"] = dict(self.outage_model)
        return data


@dataclass
class CacheSection:
    """Site-cache configuration inside a pack's ``data`` section.

    ``capacity`` bounds each site's dataset cache in bytes (unit strings
    like ``"200GB"`` accepted; omit for unbounded-with-accounting);
    ``policy`` names an eviction plugin of the ``"eviction"`` family
    (``lru``, ``lfu``, ``size_weighted``, ``pinned``, or
    ``"module:Class"``) and ``replication`` a placement plugin of the
    ``"replication"`` family (``static_n``, ``popularity``,
    ``topology_aware``); both accept an ``*_options`` mapping.
    ``prewarm: true`` pre-populates each site's cache with the datasets its
    jobs read (warm-cache study; the default is a cold start).
    """

    capacity: Optional[float] = None
    policy: str = "lru"
    policy_options: Dict[str, Any] = field(default_factory=dict)
    replication: str = "static_n"
    replication_options: Dict[str, Any] = field(default_factory=dict)
    prewarm: bool = False

    KNOWN_FIELDS = (
        "capacity",
        "policy",
        "policy_options",
        "replication",
        "replication_options",
        "prewarm",
    )

    @classmethod
    def from_dict(cls, data: Any, ctx: str) -> "CacheSection":
        data = _require_mapping(data, ctx)
        _reject_unknown(data, cls.KNOWN_FIELDS, ctx)
        capacity = data.get("capacity")
        if capacity is not None:
            try:
                capacity = parse_bytes(capacity)
            except Exception as exc:
                raise ConfigurationError(
                    f"{ctx}: capacity: {exc}{_at(ctx, 'capacity')}"
                ) from exc
            if capacity <= 0:
                raise ConfigurationError(
                    f"{ctx}: capacity must be positive{_at(ctx, 'capacity')}"
                )
        policy = data.get("policy", "lru")
        replication = data.get("replication", "static_n")
        for name, value in (("policy", policy), ("replication", replication)):
            if not isinstance(value, str) or not value:
                raise ConfigurationError(
                    f"{ctx}: {name} must be a non-empty string{_at(ctx, name)}"
                )
        policy_options = _require_mapping(
            data.get("policy_options", {}), _child(ctx, "policy_options", "policy_options")
        )
        replication_options = _require_mapping(
            data.get("replication_options", {}),
            _child(ctx, "replication_options", "replication_options"),
        )
        prewarm = data.get("prewarm", False)
        if not isinstance(prewarm, bool):
            raise ConfigurationError(
                f"{ctx}: prewarm must be a boolean, got {prewarm!r}{_at(ctx, 'prewarm')}"
            )
        section = cls(
            capacity=capacity,
            policy=policy,
            policy_options=dict(policy_options),
            replication=replication,
            replication_options=dict(replication_options),
            prewarm=prewarm,
        )
        try:
            section.build_spec().validate()
        except Exception as exc:
            raise ConfigurationError(f"{ctx}: {exc}{_at(ctx)}") from exc
        return section

    def build_spec(self):
        """Materialise the validated :class:`repro.data.DataCacheSpec`."""
        from repro.data.spec import DataCacheSpec

        return DataCacheSpec(
            capacity=self.capacity,
            policy=self.policy,
            policy_options=dict(self.policy_options),
            replication=self.replication,
            replication_options=dict(self.replication_options),
            prewarm=self.prewarm,
        )

    def to_dict(self) -> dict:
        data: Dict[str, Any] = {"policy": self.policy, "replication": self.replication}
        if self.capacity is not None:
            data["capacity"] = self.capacity
        if self.policy_options:
            data["policy_options"] = dict(self.policy_options)
        if self.replication_options:
            data["replication_options"] = dict(self.replication_options)
        if self.prewarm:
            data["prewarm"] = True
        return data


@dataclass
class DataSection:
    """Rucio-like dataset placement for data-aware scheduling studies.

    ``datasets`` shared datasets of ``dataset_size`` bytes each (unit strings
    like ``"50GB"`` accepted) are replicated ``replication_factor`` times
    across the grid; every job reads one dataset (round-robin assignment)
    and data transfers are simulated, so allocation decisions have
    WAN-traffic consequences.  Without a ``cache`` sub-section the placement
    is the seeded random :class:`repro.atlas.rucio.RucioCatalog`; with one
    (:class:`CacheSection`) the named replication strategy places the
    replicas and every site gets a finite cache with the configured eviction
    policy, unlocking cache-sizing and replica-placement studies.

    ``assignment`` controls which dataset each job reads:
    ``"round_robin"`` (default) cycles uniformly -- every dataset equally
    popular, the cache-hostile worst case -- while ``"zipf"`` draws from a
    Zipf distribution with the given ``zipf_exponent`` (seeded by ``seed``),
    the skewed popularity real caches exploit.
    """

    datasets: int = 20
    dataset_size: float = 50e9
    replication_factor: int = 2
    seed: int = 0
    assignment: str = "round_robin"
    zipf_exponent: float = 1.2
    cache: Optional[CacheSection] = None

    @classmethod
    def from_dict(cls, data: Any, ctx: str) -> "DataSection":
        data = _require_mapping(data, ctx)
        _reject_unknown(
            data,
            [
                "datasets",
                "dataset_size",
                "replication_factor",
                "seed",
                "assignment",
                "zipf_exponent",
                "cache",
            ],
            ctx,
        )
        try:
            size = parse_bytes(data.get("dataset_size", 50e9))
        except Exception as exc:
            raise ConfigurationError(
                f"{ctx}: dataset_size: {exc}{_at(ctx, 'dataset_size')}"
            ) from exc
        assignment = data.get("assignment", "round_robin")
        if assignment not in ("round_robin", "zipf"):
            raise ConfigurationError(
                f"{ctx}: assignment must be round_robin|zipf, got {assignment!r}"
                f"{_at(ctx, 'assignment')}"
            )
        section = cls(
            datasets=_int_field(data, "datasets", 20, ctx, minimum=1),
            dataset_size=size,
            replication_factor=_int_field(data, "replication_factor", 2, ctx, minimum=1),
            seed=_int_field(data, "seed", 0, ctx, minimum=0),
            assignment=assignment,
            zipf_exponent=_float_field(data, "zipf_exponent", 1.2, ctx),
            cache=(
                CacheSection.from_dict(data["cache"], _child(ctx, "cache", "cache"))
                if data.get("cache") is not None
                else None
            ),
        )
        if section.dataset_size <= 0:
            raise ConfigurationError(
                f"{ctx}: dataset_size must be positive{_at(ctx, 'dataset_size')}"
            )
        if section.zipf_exponent <= 0:
            raise ConfigurationError(
                f"{ctx}: zipf_exponent must be positive{_at(ctx, 'zipf_exponent')}"
            )
        return section

    def dataset_catalog(self) -> Dict[str, float]:
        """Mapping of dataset name to size in bytes."""
        return {f"dataset_{i:03d}": self.dataset_size for i in range(self.datasets)}

    def to_dict(self) -> dict:
        data: Dict[str, Any] = {
            "datasets": self.datasets,
            "dataset_size": self.dataset_size,
            "replication_factor": self.replication_factor,
            "seed": self.seed,
        }
        if self.assignment != "round_robin":
            data["assignment"] = self.assignment
            data["zipf_exponent"] = self.zipf_exponent
        if self.cache is not None:
            data["cache"] = self.cache.to_dict()
        return data


@dataclass
class CalibrationSection:
    """Run the per-site walltime calibration instead of a plain simulation.

    The pack's workload becomes the ground truth (``per_site_jobs`` is the
    usual shape) and :class:`repro.calibration.GridCalibrator` tunes every
    site's per-core speed with the chosen black-box ``optimizer`` under the
    per-site evaluation ``budget``.  Sites are independent optimisation
    problems, so ``workers`` processes fan them out (0 = one per CPU) with a
    worker-count-invariant report.
    """

    optimizer: str = "random"
    budget: int = 30
    mode: str = "analytic"
    seed: int = 0
    min_jobs_per_site: int = 5
    workers: int = 1

    @classmethod
    def from_dict(cls, data: Any, ctx: str) -> "CalibrationSection":
        data = _require_mapping(data, ctx)
        _reject_unknown(
            data,
            ["optimizer", "budget", "mode", "seed", "min_jobs_per_site", "workers"],
            ctx,
        )
        section = cls(
            optimizer=data.get("optimizer", "random"),
            budget=_int_field(data, "budget", 30, ctx, minimum=1),
            mode=data.get("mode", "analytic"),
            seed=_int_field(data, "seed", 0, ctx, minimum=0),
            min_jobs_per_site=_int_field(data, "min_jobs_per_site", 5, ctx, minimum=1),
            workers=_int_field(data, "workers", 1, ctx, minimum=0),
        )
        if section.optimizer not in ("random", "bayesian", "cmaes", "brute_force"):
            raise ConfigurationError(
                f"{ctx}: optimizer must be one of random|bayesian|cmaes|brute_force, "
                f"got {section.optimizer!r}{_at(ctx, 'optimizer')}"
            )
        if section.mode not in ("simulate", "analytic"):
            raise ConfigurationError(
                f"{ctx}: mode must be simulate|analytic, got {section.mode!r}"
                f"{_at(ctx, 'mode')}"
            )
        return section

    def to_dict(self) -> dict:
        return {
            "optimizer": self.optimizer,
            "budget": self.budget,
            "mode": self.mode,
            "seed": self.seed,
            "min_jobs_per_site": self.min_jobs_per_site,
            "workers": self.workers,
        }


@dataclass
class SweepSection:
    """Fan the pack over a cartesian grid of field values.

    ``axes`` maps dotted paths into the pack (``"execution.plugin"``,
    ``"workload.jobs"``, ``"faults.job_failures.default_rate"``, ...) to the
    list of values to sweep; every combination becomes one scenario, each
    replicated ``replications`` times with derived seeds, executed across
    ``workers`` processes by :class:`repro.experiments.SweepRunner` (0 means
    one per CPU).  ``metrics`` selects the columns of the aggregate table.
    """

    axes: Dict[str, List[Any]] = field(default_factory=dict)
    replications: int = 1
    workers: int = 1
    metrics: List[str] = field(default_factory=lambda: list(DEFAULT_SWEEP_METRICS))

    @classmethod
    def from_dict(cls, data: Any, ctx: str) -> "SweepSection":
        data = _require_mapping(data, ctx)
        _reject_unknown(data, ["axes", "replications", "workers", "metrics"], ctx)
        axes_ctx = _child(ctx, "axes", "axes")
        axes = _require_mapping(data.get("axes", {}), axes_ctx)
        if not axes:
            raise ConfigurationError(
                f"{ctx}: axes must name at least one sweep axis{_at(axes_ctx)}"
            )
        for path, values in axes.items():
            if not isinstance(path, str) or not path:
                raise ConfigurationError(
                    f"{ctx}: axis names must be dotted paths{_at(axes_ctx)}"
                )
            if not isinstance(values, list) or not values:
                raise ConfigurationError(
                    f"{ctx}: axis {path!r} must list at least one value"
                    f"{_at(axes_ctx, path)}"
                )
        metrics = data.get("metrics", list(DEFAULT_SWEEP_METRICS))
        if not isinstance(metrics, list) or not all(isinstance(m, str) for m in metrics):
            raise ConfigurationError(
                f"{ctx}: metrics must be a list of metric names{_at(ctx, 'metrics')}"
            )
        return cls(
            axes={path: list(values) for path, values in axes.items()},
            replications=_int_field(data, "replications", 1, ctx, minimum=1),
            workers=_int_field(data, "workers", 1, ctx, minimum=0),
            metrics=list(metrics),
        )

    def combinations(self) -> List[Dict[str, Any]]:
        """Every axis combination as an ``{dotted path: value}`` mapping."""
        names = list(self.axes)
        return [
            dict(zip(names, values))
            for values in itertools.product(*(self.axes[name] for name in names))
        ]

    def to_dict(self) -> dict:
        return {
            "axes": {path: list(values) for path, values in self.axes.items()},
            "replications": self.replications,
            "workers": self.workers,
            "metrics": list(self.metrics),
        }


def apply_override(data: dict, path: str, value: Any) -> None:
    """Set ``path`` (dotted) in the nested mapping ``data`` to ``value``.

    Intermediate mappings are created on demand, so an axis can introduce a
    section the base pack leaves out (e.g. sweeping
    ``faults.job_failures.default_rate`` over a faultless baseline).
    Overriding *through* a non-mapping value is an error: the path must
    descend into mappings all the way down.

    One special case: sweep-axis keys are themselves dotted paths, so
    everything after a ``sweep.axes.`` prefix is treated as a single literal
    key -- ``"sweep.axes.workload.jobs"`` replaces the value list of the
    ``workload.jobs`` axis rather than creating a nested ``workload`` axis.
    """
    if path.startswith("sweep.axes.") and len(path) > len("sweep.axes."):
        parts = ["sweep", "axes", path[len("sweep.axes."):]]
    else:
        parts = path.split(".")
    if not all(parts):
        raise ConfigurationError(f"invalid override path {path!r}")
    node = data
    for part in parts[:-1]:
        child = node.get(part)
        if child is None:
            child = node[part] = {}
        elif not isinstance(child, dict):
            raise ConfigurationError(
                f"override path {path!r} descends into non-mapping field {part!r}"
            )
        node = child
    node[parts[-1]] = value


def apply_overrides(data: dict, overrides: Dict[str, Any]) -> dict:
    """Return a deep copy of ``data`` with every dotted-path override applied."""
    result = copy.deepcopy(data)
    for path, value in overrides.items():
        apply_override(result, path, value)
    return result


@dataclass
class ScenarioPack:
    """One validated scenario-pack file.

    The sections mirror the subsystems they configure: ``grid``
    (:class:`GridSection`), ``workload`` (:class:`WorkloadSection`),
    ``execution`` (:class:`~repro.config.ExecutionConfig`, inline or a path
    to the classic execution file), optional ``faults``
    (:class:`FaultsSection`), ``data`` (:class:`DataSection`), and at most
    one of ``sweep`` (:class:`SweepSection`) or ``calibration``
    (:class:`CalibrationSection`).

    Examples
    --------
    >>> from repro.scenarios import ScenarioPack
    >>> pack = ScenarioPack.from_dict({
    ...     "name": "tiny",
    ...     "grid": {"kind": "synthetic", "sites": 2, "seed": 1},
    ...     "workload": {"jobs": 20, "seed": 7},
    ...     "execution": {"plugin": "least_loaded"},
    ... })
    >>> pack.name
    'tiny'
    """

    name: str
    title: str = ""
    description: str = ""
    tags: List[str] = field(default_factory=list)
    grid: GridSection = field(default_factory=GridSection)
    workload: WorkloadSection = field(default_factory=WorkloadSection)
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    faults: Optional[FaultsSection] = None
    data: Optional[DataSection] = None
    calibration: Optional[CalibrationSection] = None
    sweep: Optional[SweepSection] = None
    #: Path of the file this pack was loaded from (``None`` for in-memory
    #: packs); relative file references inside the pack resolve against it.
    source_path: Optional[Path] = None

    KNOWN_FIELDS = (
        "name",
        "title",
        "description",
        "tags",
        "grid",
        "workload",
        "execution",
        "faults",
        "data",
        "calibration",
        "sweep",
    )

    @classmethod
    def from_dict(
        cls,
        data: Any,
        source: Optional[Path] = None,
    ) -> "ScenarioPack":
        """Validate a parsed pack mapping into a :class:`ScenarioPack`.

        Raises :class:`ConfigurationError` naming the pack and the offending
        field for every schema violation.  When the pack declares a sweep,
        every axis value is dry-applied and re-validated, so a bad value in
        the middle of an axis list is reported up front.
        """
        data = _require_mapping(data, "scenario pack")
        name = data.get("name")
        if not name or not isinstance(name, str):
            where = f" ({source})" if source else ""
            raise ConfigurationError(
                f"scenario pack{where}: 'name' is required and must be a string"
                " (at /name)"
            )
        ctx = _Ctx(f"scenario pack {name!r}")
        _reject_unknown(data, cls.KNOWN_FIELDS, ctx)
        tags = data.get("tags", [])
        if not isinstance(tags, list) or not all(isinstance(t, str) for t in tags):
            raise ConfigurationError(
                f"{ctx}: tags must be a list of strings{_at(ctx, 'tags')}"
            )

        execution_data = data.get("execution", {})
        if isinstance(execution_data, str):
            base = source.parent if source else Path.cwd()
            from repro.config.loaders import load_execution

            execution = load_execution(_resolve(base, execution_data))
        else:
            _require_mapping(execution_data, ctx.child("execution", "execution"))
            try:
                execution = ExecutionConfig.from_dict(execution_data)
            except ConfigurationError as exc:
                raise ConfigurationError(
                    f"{ctx}: {exc}{_at(ctx, 'execution')}"
                ) from exc

        pack = cls(
            name=name,
            title=str(data.get("title", "")),
            description=str(data.get("description", "")),
            tags=list(tags),
            grid=GridSection.from_dict(data.get("grid", {}), ctx.child("grid", "grid")),
            workload=WorkloadSection.from_dict(
                data.get("workload", {}), ctx.child("workload", "workload")
            ),
            execution=execution,
            faults=(
                FaultsSection.from_dict(data["faults"], ctx.child("faults", "faults"))
                if data.get("faults") is not None
                else None
            ),
            data=(
                DataSection.from_dict(data["data"], ctx.child("data", "data"))
                if data.get("data") is not None
                else None
            ),
            calibration=(
                CalibrationSection.from_dict(
                    data["calibration"], ctx.child("calibration", "calibration")
                )
                if data.get("calibration") is not None
                else None
            ),
            sweep=(
                SweepSection.from_dict(data["sweep"], ctx.child("sweep", "sweep"))
                if data.get("sweep") is not None
                else None
            ),
            source_path=Path(source) if source is not None else None,
        )
        if pack.calibration is not None and pack.sweep is not None:
            raise ConfigurationError(
                f"{ctx}: 'calibration' and 'sweep' are mutually exclusive"
                f"{_at(ctx, 'sweep')}"
            )
        if pack.calibration is not None and (pack.faults or pack.data):
            raise ConfigurationError(
                f"{ctx}: calibration packs do not support 'faults' or 'data' sections"
                f"{_at(ctx, 'calibration')}"
            )
        if pack.sweep is not None:
            pack._validate_sweep_axes(data)
        return pack

    def _validate_sweep_axes(self, data: dict) -> None:
        """Dry-apply every axis value so a bad one fails at validate time."""
        assert self.sweep is not None
        base = {k: v for k, v in data.items() if k != "sweep"}
        axes_pointer = join_pointer(["sweep", "axes"])
        for path, values in self.sweep.axes.items():
            pointer = axes_pointer + join_pointer([path])
            if path.split(".")[0] in ("name", "title", "description", "tags", "sweep"):
                raise ConfigurationError(
                    f"scenario pack {self.name!r}: sweep: axis {path!r} must target "
                    "a simulation field (grid/workload/execution/faults/data)"
                    f" (at {pointer})"
                )
            for index, value in enumerate(values):
                try:
                    candidate = apply_overrides(base, {path: value})
                    ScenarioPack.from_dict(candidate, source=self.source_path)
                except ConfigurationError as exc:
                    raise ConfigurationError(
                        f"scenario pack {self.name!r}: sweep: axis {path!r} "
                        f"value {value!r} is invalid: {exc}"
                        f" (at {pointer + join_pointer([index])})"
                    ) from None

    def with_overrides(self, overrides: Dict[str, Any]) -> "ScenarioPack":
        """Return a revalidated copy with dotted-path ``overrides`` applied.

        >>> from repro.scenarios import ScenarioPack
        >>> pack = ScenarioPack.from_dict({"name": "p", "workload": {"jobs": 10}})
        >>> pack.with_overrides({"workload.jobs": 99}).workload.jobs
        99
        """
        if not overrides:
            return self
        return ScenarioPack.from_dict(
            apply_overrides(self.to_dict(), overrides), source=self.source_path
        )

    def base_dir(self) -> Optional[Path]:
        """Directory that relative file references inside the pack resolve against."""
        return self.source_path.parent if self.source_path is not None else None

    def mode(self) -> str:
        """How this pack executes: ``"single"``, ``"sweep"`` or ``"calibration"``."""
        if self.calibration is not None:
            return "calibration"
        if self.sweep is not None:
            return "sweep"
        return "single"

    def to_dict(self) -> dict:
        """JSON-friendly representation (round-trips through :meth:`from_dict`)."""
        data: Dict[str, Any] = {"name": self.name}
        if self.title:
            data["title"] = self.title
        if self.description:
            data["description"] = self.description
        if self.tags:
            data["tags"] = list(self.tags)
        data["grid"] = self.grid.to_dict()
        data["workload"] = self.workload.to_dict()
        data["execution"] = self.execution.to_dict()
        if self.faults is not None:
            data["faults"] = self.faults.to_dict()
        if self.data is not None:
            data["data"] = self.data.to_dict()
        if self.calibration is not None:
            data["calibration"] = self.calibration.to_dict()
        if self.sweep is not None:
            data["sweep"] = self.sweep.to_dict()
        return data

    def to_json(self) -> str:
        """The pack as pretty-printed JSON (what ``repro scenario show`` prints)."""
        return json.dumps(self.to_dict(), indent=2)

    def summary_row(self) -> dict:
        """One row for the ``repro scenario list`` table."""
        return {
            "name": self.name,
            "mode": self.mode(),
            "grid": f"{self.grid.kind}:{self.grid.sites}"
            if self.grid.kind != "files"
            else "files",
            "jobs": self.workload.per_site_jobs or self.workload.jobs,
            "title": self.title or self.description.split("\n")[0][:60],
        }
