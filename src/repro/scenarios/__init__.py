"""Declarative scenario packs: whole "what if" studies as single files.

Every study in this reproduction used to be a hand-written Python script
gluing together three JSON configs, a workload generator, optional fault
models and monitoring knobs.  A *scenario pack* turns that glue into data:
one YAML/JSON file bundling the grid, the workload, fault-injection
campaigns, data placement, execution parameters and -- optionally -- a sweep
axis or a calibration study.  Packs are validated eagerly
(:mod:`~repro.scenarios.schema`), discovered through a registry with
bundled/entry-point/directory sources (:mod:`~repro.scenarios.registry`),
and executed end-to-end -- in parallel when a sweep axis is present -- by
:func:`~repro.scenarios.runner.run_scenario_pack`.

The bundled packs reproduce the paper's studies; ``repro scenario list``
names them and ``docs/scenarios/cookbook.md`` walks through each one.

Quickstart
----------
>>> from repro.scenarios import get_scenario_pack, run_scenario_pack
>>> pack = get_scenario_pack("heavy-tail-stress")
>>> outcome = run_scenario_pack(pack, overrides={
...     "workload.jobs": 60, "grid.sites": 3,
...     "sweep.axes": {"workload.spec.walltime_sigma": [0.7]},
...     "sweep.replications": 1,
... })
>>> outcome.ok
True
"""

from repro.scenarios.loader import load_scenario_pack, save_scenario_pack
from repro.scenarios.registry import (
    ScenarioRegistry,
    add_scenario_directory,
    available_scenario_packs,
    get_scenario_pack,
    register_scenario_pack,
)
from repro.scenarios.runner import (
    ScenarioOutcome,
    execute_scenario_spec,
    run_scenario_pack,
    sweep_specs,
)
from repro.scenarios.schema import (
    CacheSection,
    CalibrationSection,
    DataSection,
    FaultsSection,
    GridSection,
    ScenarioPack,
    SweepSection,
    WorkloadSection,
    apply_override,
    apply_overrides,
)

__all__ = [
    # schema
    "ScenarioPack",
    "GridSection",
    "WorkloadSection",
    "FaultsSection",
    "DataSection",
    "CacheSection",
    "CalibrationSection",
    "SweepSection",
    "apply_override",
    "apply_overrides",
    # loader
    "load_scenario_pack",
    "save_scenario_pack",
    # registry
    "ScenarioRegistry",
    "available_scenario_packs",
    "get_scenario_pack",
    "register_scenario_pack",
    "add_scenario_directory",
    # runner
    "ScenarioOutcome",
    "run_scenario_pack",
    "sweep_specs",
    "execute_scenario_spec",
]
