"""Discovery and registration of scenario packs.

Packs reach the registry through four doors, in increasing precedence:

1. **Bundled packs** -- the ``repro/scenarios/packs/`` data files shipped
   with the package (the paper's canned studies);
2. **Entry points** -- third-party distributions advertise packs under the
   ``cgsim_repro.scenarios`` entry-point group; an entry point may resolve to
   a :class:`~repro.scenarios.schema.ScenarioPack`, a pack mapping, a path to
   a pack file or directory, or a zero-argument callable returning any of
   those (or a list of them);
3. **Directories** -- every directory on the ``CGSIM_SCENARIO_PATH``
   environment variable (``os.pathsep``-separated), plus directories added
   programmatically with :func:`add_scenario_directory`, is scanned for
   ``*.json``/``*.yaml``/``*.yml`` files;
4. **Explicit registration** -- :func:`register_scenario_pack` for packs
   built in code.

This mirrors how :mod:`repro.plugins` lets users bring their own allocation
policies: the simulator core never needs to know where a scenario came from.
A later door shadows an earlier one when names collide, so a user pack can
deliberately override a bundled one.  Broken third-party sources (an entry
point that raises, an unparsable file) are recorded as warnings on the
registry rather than breaking ``repro scenario list`` for everyone else.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.scenarios.loader import PACK_SUFFIXES, load_scenario_pack
from repro.scenarios.schema import ScenarioPack
from repro.utils.errors import ConfigurationError

__all__ = [
    "ScenarioRegistry",
    "available_scenario_packs",
    "get_scenario_pack",
    "register_scenario_pack",
    "add_scenario_directory",
    "default_registry",
]

#: Entry-point group third-party distributions use to advertise packs.
ENTRY_POINT_GROUP = "cgsim_repro.scenarios"

#: Environment variable listing extra pack directories (``os.pathsep``-separated).
SEARCH_PATH_ENV = "CGSIM_SCENARIO_PATH"

#: Directory holding the packs bundled with the package.
BUNDLED_PACK_DIR = Path(__file__).resolve().parent / "packs"


def _iter_entry_points():
    """Yield entry points of our group across importlib.metadata API versions."""
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - py<3.8 is unsupported anyway
        return []
    try:
        eps = entry_points()
        if hasattr(eps, "select"):  # py3.10+
            return list(eps.select(group=ENTRY_POINT_GROUP))
        return list(eps.get(ENTRY_POINT_GROUP, []))  # py3.9 mapping API
    except Exception:  # pragma: no cover - a broken metadata store
        return []


class ScenarioRegistry:
    """A named collection of scenario packs with lazy discovery.

    Parameters
    ----------
    bundled:
        Include the packs shipped in ``repro/scenarios/packs/``.
    entry_points:
        Scan the ``cgsim_repro.scenarios`` entry-point group.
    search_env:
        Scan the directories listed in ``CGSIM_SCENARIO_PATH``.

    Examples
    --------
    >>> from repro.scenarios.registry import ScenarioRegistry
    >>> registry = ScenarioRegistry()
    >>> "wlcg-baseline" in registry.names()
    True
    """

    def __init__(
        self,
        bundled: bool = True,
        entry_points: bool = True,
        search_env: bool = True,
    ) -> None:
        self._bundled = bundled
        self._entry_points = entry_points
        self._search_env = search_env
        self._directories: List[Path] = []
        self._registered: Dict[str, ScenarioPack] = {}
        self._cache: Optional[Dict[str, ScenarioPack]] = None
        #: Human-readable notes about sources that failed to load (consulted
        #: by ``repro scenario list`` to report problems without dying).
        self.warnings: List[str] = []

    # -- mutation ----------------------------------------------------------------
    def register(self, pack: ScenarioPack) -> ScenarioPack:
        """Register an in-memory pack (highest precedence, replaces same name)."""
        if not isinstance(pack, ScenarioPack):
            raise ConfigurationError(
                f"register() takes a ScenarioPack, got {type(pack).__name__}"
            )
        self._registered[pack.name] = pack
        self._cache = None
        return pack

    def add_directory(self, path: Union[str, Path]) -> None:
        """Add a directory whose pack files join the registry."""
        path = Path(path)
        if not path.is_dir():
            raise ConfigurationError(f"scenario directory not found: {path}")
        self._directories.append(path)
        self._cache = None

    def refresh(self) -> None:
        """Drop the discovery cache (e.g. after changing the environment)."""
        self._cache = None

    # -- discovery ---------------------------------------------------------------
    def _scan_directory(self, directory: Path, packs: Dict[str, ScenarioPack]) -> None:
        for path in sorted(directory.iterdir()):
            if path.suffix.lower() not in PACK_SUFFIXES or not path.is_file():
                continue
            try:
                pack = load_scenario_pack(path)
            except ConfigurationError as exc:
                self.warnings.append(f"skipped {path}: {exc}")
                continue
            packs[pack.name] = pack

    def _adopt(self, source: str, value, packs: Dict[str, ScenarioPack]) -> None:
        """Fold one entry-point payload (of any supported shape) into ``packs``."""
        if callable(value) and not isinstance(value, type):
            value = value()
        if isinstance(value, (list, tuple)):
            for item in value:
                self._adopt(source, item, packs)
            return
        if isinstance(value, ScenarioPack):
            packs[value.name] = value
        elif isinstance(value, dict):
            pack = ScenarioPack.from_dict(value)
            packs[pack.name] = pack
        elif isinstance(value, (str, Path)):
            path = Path(value)
            if path.is_dir():
                self._scan_directory(path, packs)
            else:
                pack = load_scenario_pack(path)
                packs[pack.name] = pack
        else:
            raise ConfigurationError(
                f"{source} resolved to unsupported type {type(value).__name__}"
            )

    def _discover(self) -> Dict[str, ScenarioPack]:
        if self._cache is not None:
            return self._cache
        self.warnings = []
        packs: Dict[str, ScenarioPack] = {}
        if self._bundled and BUNDLED_PACK_DIR.is_dir():
            self._scan_directory(BUNDLED_PACK_DIR, packs)
        if self._entry_points:
            for entry_point in _iter_entry_points():
                source = f"entry point {ENTRY_POINT_GROUP}:{entry_point.name}"
                try:
                    self._adopt(source, entry_point.load(), packs)
                except Exception as exc:  # noqa: BLE001 - third-party code
                    self.warnings.append(f"skipped {source}: {exc}")
        directories = list(self._directories)
        if self._search_env:
            raw = os.environ.get(SEARCH_PATH_ENV, "")
            directories.extend(
                Path(part) for part in raw.split(os.pathsep) if part.strip()
            )
        for directory in directories:
            if directory.is_dir():
                self._scan_directory(directory, packs)
            else:
                self.warnings.append(f"skipped scenario directory {directory}: not found")
        packs.update(self._registered)
        self._cache = packs
        return packs

    # -- queries -----------------------------------------------------------------
    def names(self) -> List[str]:
        """Sorted names of every discoverable pack."""
        return sorted(self._discover())

    def packs(self) -> List[ScenarioPack]:
        """Every discoverable pack, sorted by name."""
        discovered = self._discover()
        return [discovered[name] for name in sorted(discovered)]

    def get(self, name: str) -> ScenarioPack:
        """The pack registered under ``name`` (with a did-you-mean error)."""
        discovered = self._discover()
        if name in discovered:
            return discovered[name]
        close = [n for n in discovered if name.replace("_", "-") == n.replace("_", "-")]
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ConfigurationError(
            f"unknown scenario pack {name!r}{hint}; available: {sorted(discovered)}"
        )


#: Process-wide default registry used by the module-level helpers and the CLI.
default_registry = ScenarioRegistry()


def available_scenario_packs() -> List[str]:
    """Names of every scenario pack the default registry can see.

    >>> from repro import available_scenario_packs
    >>> "job-scaling" in available_scenario_packs()
    True
    """
    return default_registry.names()


def get_scenario_pack(name: str) -> ScenarioPack:
    """Fetch one pack by name from the default registry.

    >>> from repro import get_scenario_pack
    >>> get_scenario_pack("wlcg-baseline").grid.kind
    'wlcg'
    """
    return default_registry.get(name)


def register_scenario_pack(pack: ScenarioPack) -> ScenarioPack:
    """Register an in-memory pack with the default registry (returns it).

    >>> from repro.scenarios import ScenarioPack, register_scenario_pack
    >>> pack = register_scenario_pack(ScenarioPack.from_dict({"name": "mine"}))
    >>> from repro import get_scenario_pack
    >>> get_scenario_pack("mine") is pack
    True
    """
    return default_registry.register(pack)


def add_scenario_directory(path: Union[str, Path]) -> None:
    """Make every pack file in ``path`` discoverable via the default registry."""
    default_registry.add_directory(path)
