"""Execute scenario packs end-to-end.

:func:`run_scenario_pack` is the single front door behind ``repro scenario
run``: hand it a pack (or its registry name) and it builds the grid, the
workload and the fault/data models, then executes whichever study the pack
declares --

* a **single run** through :class:`repro.core.Simulator`;
* a **sweep**: every axis combination x replication becomes one
  :class:`~repro.experiments.spec.RunSpec` fanned across worker processes by
  :class:`~repro.experiments.runner.SweepRunner`, with per-replicate seeds
  derived via :func:`repro.utils.rng.derive_seed` (replicate 0 keeps the
  pack's base seeds, so a one-replication sweep reproduces the single-run
  numbers exactly);
* a **calibration** study through :class:`repro.calibration.GridCalibrator`.

Every mode returns a :class:`ScenarioOutcome` that renders itself with the
existing metric/sweep/calibration tables.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.metrics import SimulationMetrics
from repro.core.session import SimulationSession
from repro.core.simulator import SimulationResult, Simulator
from repro.experiments.runner import SweepResult, SweepRunner
from repro.experiments.spec import RunResult, RunSpec
from repro.scenarios.schema import ScenarioPack, apply_overrides
from repro.utils.errors import CGSimError
from repro.utils.rng import derive_seed
from repro.workload.job import JobState

__all__ = ["ScenarioOutcome", "run_scenario_pack", "sweep_specs", "execute_scenario_spec"]


def _build_simulator(pack: ScenarioPack) -> Tuple[Simulator, List]:
    """Materialise a pack's grid, workload and fault/data wiring."""
    base_dir = pack.base_dir()
    infrastructure, topology = pack.grid.build(base_dir)
    jobs = pack.workload.build(infrastructure, base_dir)

    failure_model = None
    outages: List = []
    if pack.faults is not None:
        failure_model, outages = pack.faults.build(infrastructure.site_names)

    build_hook = None
    enable_data_transfers = False
    data_cache = None
    if pack.data is not None:
        data = pack.data
        catalog_sizes = data.dataset_catalog()
        names = sorted(catalog_sizes)
        if data.assignment == "zipf":
            import numpy as np

            from repro.utils.rng import RandomSource

            ranks = np.arange(1, len(names) + 1, dtype=float)
            weights = ranks ** -data.zipf_exponent
            weights /= weights.sum()
            generator = RandomSource(data.seed).generator("dataset-assignment")
            draws = generator.choice(len(names), size=len(jobs), p=weights)
            for job, draw in zip(jobs, draws):
                job.attributes["dataset"] = names[int(draw)]
        else:
            for index, job in enumerate(jobs):
                job.attributes["dataset"] = names[index % len(names)]
        site_names = list(infrastructure.site_names)
        enable_data_transfers = True
        if data.cache is not None:
            data_cache = data.cache.build_spec()

        def build_hook(simulator: Simulator) -> None:
            if data_cache is None:
                from repro.atlas.rucio import RucioCatalog

                catalog = RucioCatalog(simulator.data_manager, seed=data.seed)
                catalog.place_datasets(
                    catalog_sizes, site_names, replication_factor=data.replication_factor
                )
                return
            # Cache-aware runs: the configured replication strategy places
            # the pinned replicas of record, then an optional prewarm fills
            # each site's cache with the datasets its jobs will read.
            from repro.data.replication import PlacementContext

            demand: Dict[str, Dict[str, int]] = {}
            for job in jobs:
                dataset = job.attributes.get("dataset")
                if dataset is None or not job.target_site:
                    continue
                per_site = demand.setdefault(str(dataset), {})
                per_site[job.target_site] = per_site.get(job.target_site, 0) + 1
            strategy = data_cache.build_strategy(default_copies=data.replication_factor)
            context = PlacementContext(
                sites=site_names,
                platform=simulator.platform,
                demand=demand,
                seed=data.seed,
            )
            placement = strategy.place(catalog_sizes, context)
            for dataset in sorted(placement):
                for site in placement[dataset]:
                    simulator.data_manager.register_replica(
                        dataset, site, catalog_sizes[dataset]
                    )
            if data_cache.prewarm:
                simulator.data_manager.prewarm(_prewarm_pairs(jobs, site_names))

    simulator = Simulator(
        infrastructure,
        topology,
        pack.execution,
        failure_model=failure_model,
        outages=outages,
        enable_data_transfers=enable_data_transfers,
        data_cache=data_cache,
    )
    if build_hook is not None:
        simulator.on_build(build_hook)
    return simulator, jobs


def _prewarm_pairs(jobs: List, site_names: List[str]) -> List[Tuple[str, str]]:
    """Deterministic (dataset, site) prewarm pairs derived from the workload.

    Each job's dataset is warmed at the site the job targets; jobs without a
    recorded target round-robin over the grid so prewarming still covers
    synthetic workloads.  Duplicates are dropped preserving first-seen order.
    """
    pairs: List[Tuple[str, str]] = []
    seen = set()
    for index, job in enumerate(jobs):
        dataset = job.attributes.get("dataset")
        if dataset is None:
            continue
        site = job.target_site or site_names[index % len(site_names)]
        pair = (str(dataset), site)
        if pair not in seen:
            seen.add(pair)
            pairs.append(pair)
    return pairs


def _reliability_extras(original_jobs: List, result: SimulationResult) -> Dict[str, float]:
    """Attempt/loss bookkeeping for fault studies (matches the paper's framing)."""
    succeeded_originals = {
        int(job.attributes.get("retry_of", job.job_id))
        for job in result.jobs
        if job.state is JobState.FINISHED
    }
    original_ids = {int(job.job_id) for job in original_jobs}
    wasted_core_hours = (
        sum(
            (job.walltime or 0.0) * job.cores
            for job in result.jobs
            if job.state is JobState.FAILED
        )
        / 3600.0
    )
    return {
        "attempts": float(len(result.jobs)),
        "lost_jobs": float(len(original_ids - succeeded_originals)),
        "wasted_core_hours": wasted_core_hours,
    }


def _data_extras(simulator: Simulator) -> Dict[str, float]:
    """WAN-traffic and cache bookkeeping for data-placement studies.

    Always reports the WAN transfer count/volume; cache-aware runs add the
    aggregate cache counters (``cache_hit_rate``, ``cache_evictions``, ...)
    plus flat per-site keys (``cache_hit_rate[SITE]``,
    ``cache_evictions[SITE]``) so sweep packs can select any of them as
    table metrics.
    """
    data_manager = simulator.data_manager
    transfers = data_manager.transfer_log
    summary = data_manager.cache_summary()
    wan_bytes = summary.get("bytes_wan") if summary else sum(
        t["size"] for t in transfers if t["source"] != t["destination"]
    )
    extras = {
        "wan_transfers": float(len(transfers)),
        "wan_terabytes": wan_bytes / 1e12,
    }
    extras.update(summary)
    for site, stats in sorted(data_manager.cache_stats().items()):
        extras[f"cache_hit_rate[{site}]"] = stats.hit_rate
        extras[f"cache_evictions[{site}]"] = float(stats.evictions)
    return extras


def _resume_pack_session(
    pack: ScenarioPack, pack_dict: Dict[str, Any], checkpoint_dir: Path
) -> Optional[SimulationSession]:
    """Restore the pack's session from ``checkpoint_dir/latest.ckpt`` if it matches.

    The blob's embedded pack dict must equal this run's (overrides included)
    -- a blob from a different pack or configuration is ignored and the study
    starts cold rather than silently resuming the wrong run.  Rebuilding the
    simulator through :func:`_build_simulator` re-registers the pack's build
    hooks (replica placement), which the checkpoint itself cannot carry.
    """
    from repro.state import decode_checkpoint

    latest = checkpoint_dir / "latest.ckpt"
    if not latest.exists():
        return None
    payload = decode_checkpoint(latest.read_bytes())
    extra = payload.get("extra") or {}
    if extra.get("scenario_pack") != pack_dict:
        return None
    simulator, _ = _build_simulator(pack)
    return SimulationSession.restore(simulator, latest.read_bytes())


def _run_single(
    pack: ScenarioPack,
    progress: Optional[Callable[[SimulationSession], None]] = None,
    progress_interval: float = 60.0,
    checkpoint_dir: Optional[Path] = None,
    checkpoint_every: Optional[float] = None,
) -> Tuple[SimulationMetrics, Dict[str, float], SimulationResult]:
    """One simulation run of a (sweep-free) pack, executed through a session.

    The session lifecycle is what gives packs their ``execution.stop``
    semantics (early termination on simulated-time budgets, job counts or
    metric predicates -- the ``stopped_reason`` lands in the outcome) and,
    when ``progress`` is given, live observation: the callback receives the
    running session every ``progress_interval`` simulated seconds.

    ``checkpoint_dir`` makes the study crash-resumable: checkpoint blobs
    (stamped with the pack's canonical dict) are written there every
    ``checkpoint_every`` simulated seconds, and an existing matching
    ``latest.ckpt`` is restored instead of starting cold.
    """
    session: Optional[SimulationSession] = None
    pack_dict = pack.to_dict()
    if checkpoint_dir is not None:
        checkpoint_dir = Path(checkpoint_dir)
        session = _resume_pack_session(pack, pack_dict, checkpoint_dir)
    if session is None:
        simulator, jobs = _build_simulator(pack)
        session = simulator.session(jobs)
    else:
        simulator = session.simulator
    # The first wave (the session replays it on restore) is the original
    # workload the reliability extras compare terminal attempts against.
    original_jobs = session.jobs
    if progress is not None:
        session.on_progress(progress_interval, lambda _snapshot: progress(session))
    try:
        if checkpoint_dir is not None:
            from repro.state import drive_with_checkpoints

            drive_with_checkpoints(
                session,
                checkpoint_dir,
                every=checkpoint_every,
                extra={
                    "scenario_pack": pack_dict,
                    "scenario_source": (
                        str(pack.source_path) if pack.source_path else None
                    ),
                },
            )
            result = session.finalize()
        else:
            result = session.advance_to_completion().finalize()
    except BaseException:
        # Nobody resumes this session in-process: keep run()'s historical
        # contract of not leaking open streaming-sink handles out of a
        # crashed run (sweep workers record the error and keep executing
        # trials).  With a checkpoint directory the run is still resumable
        # from its last written blob.
        simulator._close_live_sinks()
        raise
    extras: Dict[str, float] = {}
    if pack.faults is not None or pack.execution.max_retries:
        extras.update(_reliability_extras(original_jobs, result))
    if pack.data is not None:
        extras.update(_data_extras(simulator))
    return result.metrics, extras, result


def _replicate_seed_overrides(pack: ScenarioPack, spec: RunSpec) -> Dict[str, Any]:
    """Derived-seed overrides for replicate > 0 (replicate 0 keeps base seeds).

    The grid and data-placement seeds stay fixed across replicates -- as in
    :func:`repro.experiments.runner.execute_run`, replication measures
    workload/fault variance on a fixed infrastructure.
    """
    overrides: Dict[str, Any] = {
        "workload.seed": derive_seed(
            pack.workload.seed, spec.scenario, spec.replicate, "workload"
        ),
        "execution.seed": derive_seed(
            pack.execution.seed, spec.scenario, spec.replicate, "execution"
        ),
    }
    if pack.faults is not None and pack.faults.job_failures is not None:
        base = int(pack.faults.job_failures.get("seed", 0))
        overrides["faults.job_failures.seed"] = derive_seed(
            base, spec.scenario, spec.replicate, "faults"
        )
    if pack.faults is not None and pack.faults.outage_model is not None:
        base = int(pack.faults.outage_model.get("seed", 0))
        overrides["faults.outage_model.seed"] = derive_seed(
            base, spec.scenario, spec.replicate, "outages"
        )
    return overrides


def execute_scenario_spec(spec: RunSpec) -> RunResult:
    """Picklable sweep entry point: one axis-combination x replicate run.

    ``spec.params`` carries the sweep-free pack mapping, the axis overrides
    and the pack's source path; the worker revalidates and rebuilds
    everything from that data, so a run's outcome depends only on its spec
    (the determinism contract of :mod:`repro.experiments`).
    """
    started = time.perf_counter()
    try:
        source = Path(spec.params["source"]) if spec.params.get("source") else None
        data = apply_overrides(spec.params["pack"], spec.params.get("overrides", {}))
        pack = ScenarioPack.from_dict(data, source=source)
        if spec.replicate:
            pack = pack.with_overrides(_replicate_seed_overrides(pack, spec))
        checkpoint_dir = spec.params.get("checkpoint_dir")
        metrics, extras, result = _run_single(
            pack,
            checkpoint_dir=Path(checkpoint_dir) if checkpoint_dir else None,
            checkpoint_every=spec.params.get("checkpoint_every"),
        )
        merged = metrics.to_dict()
        merged.update(extras)
        return RunResult(
            spec=spec,
            metrics=merged,
            simulated_time=result.simulated_time,
            wallclock_seconds=time.perf_counter() - started,
            stopped_reason=result.stopped_reason,
        )
    except Exception as exc:  # noqa: BLE001 - a sweep must record, not crash
        return RunResult(
            spec=spec,
            error=f"{type(exc).__name__}: {exc}",
            error_traceback=traceback.format_exc(),
            wallclock_seconds=time.perf_counter() - started,
        )


def _axis_labels(axes: List[str]) -> Dict[str, str]:
    """Short display name per axis: the path's leaf, unless leaves collide."""
    leaves = [path.split(".")[-1] for path in axes]
    return {
        path: leaf if leaves.count(leaf) == 1 else path
        for path, leaf in zip(axes, leaves)
    }


def _spec_checkpoint_dir(base: Path, scenario: str, replicate: int) -> str:
    """Per-spec checkpoint subdirectory: ``<base>/<sanitized scenario>/r<n>``.

    Each axis combination x replicate gets its own directory so its
    ``latest.ckpt`` can only ever be matched -- and resumed -- by the same
    combination: the provenance guard in :func:`_resume_pack_session`
    compares the blob's embedded pack dict against the *overridden* per-spec
    pack, so even a blob planted in the wrong subdirectory starts the run
    cold instead of replaying a different combination.
    """
    safe = "".join(c if c.isalnum() or c in "=.-" else "_" for c in scenario)
    return str(Path(base) / (safe or "scenario") / f"r{replicate}")


def sweep_specs(
    pack: ScenarioPack,
    checkpoint_dir: Optional[Path] = None,
    checkpoint_every: Optional[float] = None,
) -> List[RunSpec]:
    """Expand a sweep pack into the concrete :class:`RunSpec` list it runs.

    Scenario names join ``axis=value`` pairs (axis leaf names when
    unambiguous), and every scenario is replicated ``sweep.replications``
    times -- exactly the :func:`repro.experiments.scenario_grid` convention,
    applied to pack paths instead of :class:`RunSpec` fields.  With
    ``checkpoint_dir`` every spec checkpoints into -- and resumes from --
    its own :func:`_spec_checkpoint_dir` subdirectory, making interrupted
    sweeps crash-resumable run by run.
    """
    if pack.sweep is None:
        raise CGSimError(f"scenario pack {pack.name!r} declares no sweep section")
    pack_dict = pack.to_dict()
    pack_dict.pop("sweep", None)
    source = str(pack.source_path) if pack.source_path is not None else None
    labels = _axis_labels(list(pack.sweep.axes))
    specs: List[RunSpec] = []
    for combo in pack.sweep.combinations():
        scenario = ",".join(f"{labels[path]}={value}" for path, value in combo.items())
        for replicate in range(pack.sweep.replications):
            params = {"pack": pack_dict, "overrides": dict(combo), "source": source}
            if checkpoint_dir is not None:
                params["checkpoint_dir"] = _spec_checkpoint_dir(
                    checkpoint_dir, scenario, replicate
                )
                params["checkpoint_every"] = checkpoint_every
            specs.append(
                RunSpec(
                    scenario=scenario,
                    replicate=replicate,
                    seed=pack.workload.seed,
                    params=params,
                )
            )
    return specs


@dataclass
class ScenarioOutcome:
    """What running a scenario pack produced, in whichever mode it declared.

    ``mode`` is ``"single"`` (``metrics``/``extras`` hold the run),
    ``"sweep"`` (``sweep`` holds the per-run results and aggregates) or
    ``"calibration"`` (``calibration`` holds the per-site report).
    ``stopped_reason`` is set when a single-mode run ended early through a
    pack ``execution.stop`` condition (sweep runs carry theirs on each
    :class:`~repro.experiments.spec.RunResult`).
    :meth:`render` returns the text view ``repro scenario run`` prints, and
    :meth:`to_dict` the JSON written by ``--output``.
    """

    pack: ScenarioPack
    mode: str
    metrics: Optional[SimulationMetrics] = None
    extras: Dict[str, float] = field(default_factory=dict)
    simulated_time: float = 0.0
    sweep: Optional[SweepResult] = None
    calibration: Optional[object] = None  # CalibrationReport (import kept lazy)
    wallclock_seconds: float = 0.0
    stopped_reason: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether every run of the scenario completed successfully."""
        if self.mode == "sweep":
            assert self.sweep is not None
            return not self.sweep.failed
        return True

    def scenario_metrics(self, scenario: Optional[str] = None) -> Dict[str, float]:
        """Flat metrics mapping (grid metrics + extras) of a single-run pack,
        or of one named sweep scenario's first replicate."""
        if self.mode == "single":
            assert self.metrics is not None
            merged = dict(self.metrics.to_dict())
            merged.update(self.extras)
            return merged
        if self.mode == "sweep":
            assert self.sweep is not None
            for result in self.sweep.ok:
                if scenario is None or result.spec.scenario == scenario:
                    assert result.metrics is not None
                    return dict(result.metrics)
            raise CGSimError(f"no successful run for scenario {scenario!r}")
        raise CGSimError("calibration outcomes have no simulation metrics")

    def _sweep_cache_rows(self) -> List[Dict[str, Any]]:
        """Per-site cache rows of each sweep scenario's first replicate.

        Built from the flat ``cache_hit_rate[SITE]`` / ``cache_evictions[SITE]``
        keys :func:`_data_extras` records; empty for cache-less sweeps.
        """
        assert self.sweep is not None
        rows: List[Dict[str, Any]] = []
        for result in self.sweep.ok:
            if result.spec.replicate or result.metrics is None:
                continue
            for key in result.metrics:
                if not (key.startswith("cache_hit_rate[") and key.endswith("]")):
                    continue
                site = key[len("cache_hit_rate["):-1]
                rows.append(
                    {
                        "scenario": result.spec.scenario,
                        "site": site,
                        "cache_hit_rate": result.metrics[key],
                        "cache_evictions": result.metrics.get(
                            f"cache_evictions[{site}]", 0.0
                        ),
                    }
                )
        return rows

    def render(self) -> str:
        """Human-readable report (the ``repro scenario run`` output)."""
        from repro.analysis.reporting import format_table, metrics_table

        lines: List[str] = []
        if self.mode == "single":
            assert self.metrics is not None
            if self.stopped_reason is not None:
                lines.append(f"stopped early: {self.stopped_reason}")
                lines.append("")
            lines.append(metrics_table(self.metrics))
            if self.metrics.cache_per_site:
                from repro.analysis.reporting import cache_table

                lines.append("")
                lines.append("per-site cache (hit rate, evictions, bytes by tier):")
                lines.append(cache_table(self.metrics))
            if self.extras:
                lines.append("")
                lines.append(
                    format_table(
                        [{"extra": key, "value": value} for key, value in self.extras.items()]
                    )
                )
        elif self.mode == "sweep":
            assert self.sweep is not None and self.pack.sweep is not None
            lines.append(self.sweep.table(self.pack.sweep.metrics))
            cache_rows = self._sweep_cache_rows()
            if cache_rows:
                lines.append("")
                lines.append("per-site cache hit rate / evictions (replicate 0):")
                lines.append(format_table(cache_rows))
            lines.append(
                f"\n{len(self.sweep.ok)}/{len(self.sweep)} runs succeeded on "
                f"{self.sweep.n_workers} worker(s) "
                f"in {self.sweep.wallclock_seconds:.2f} s wall-clock"
            )
        else:
            assert self.calibration is not None
            import json as _json

            lines.append(format_table([r.to_row() for r in self.calibration.sites]))
            lines.append("")
            lines.append(_json.dumps(self.calibration.summary(), indent=2))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-friendly representation of the whole outcome."""
        data: Dict[str, Any] = {
            "pack": self.pack.name,
            "mode": self.mode,
            "wallclock_seconds": self.wallclock_seconds,
        }
        if self.mode == "single":
            assert self.metrics is not None
            data["metrics"] = self.metrics.to_dict()
            data["extras"] = dict(self.extras)
            data["simulated_time"] = self.simulated_time
            if self.stopped_reason is not None:
                data["stopped_reason"] = self.stopped_reason
        elif self.mode == "sweep":
            assert self.sweep is not None
            data["sweep"] = self.sweep.to_dict()
        else:
            assert self.calibration is not None
            data["calibration"] = {
                "sites": [r.to_row() for r in self.calibration.sites],
                "summary": self.calibration.summary(),
            }
        return data


def run_scenario_pack(
    pack: Union[ScenarioPack, str],
    workers: Optional[int] = None,
    overrides: Optional[Dict[str, Any]] = None,
    progress: Optional[Callable[[SimulationSession], None]] = None,
    progress_interval: float = 60.0,
    checkpoint_dir: Optional[Path] = None,
    checkpoint_every: Optional[float] = None,
) -> ScenarioOutcome:
    """Run a scenario pack (by object or registry name) end-to-end.

    ``workers`` overrides the pack's worker count for sweep/calibration
    parallelism (``0`` means one per CPU); ``overrides`` are dotted-path
    pack overrides applied -- and revalidated -- before anything runs.
    ``progress`` (single-run packs only) is called with the live
    :class:`~repro.core.session.SimulationSession` every
    ``progress_interval`` simulated seconds -- the hook behind
    ``repro scenario run --progress``.  ``checkpoint_dir`` (single-run packs
    only) makes the study crash-resumable: blobs land there every
    ``checkpoint_every`` simulated seconds and a matching ``latest.ckpt``
    is resumed instead of starting cold -- the hook behind
    ``repro scenario run --checkpoint-dir``.

    >>> from repro.scenarios import run_scenario_pack
    >>> outcome = run_scenario_pack(
    ...     "wlcg-baseline",
    ...     overrides={"grid.sites": 4, "workload.jobs": 40,
    ...                "sweep.axes": {"execution.plugin": ["round_robin"]}},
    ... )
    >>> outcome.mode
    'sweep'
    """
    if isinstance(pack, str):
        from repro.scenarios.registry import get_scenario_pack

        pack = get_scenario_pack(pack)
    if overrides:
        pack = pack.with_overrides(overrides)

    started = time.perf_counter()
    if pack.calibration is not None:
        from repro.calibration import GridCalibrator

        base_dir = pack.base_dir()
        infrastructure, _ = pack.grid.build(base_dir)
        jobs = pack.workload.build(infrastructure, base_dir)
        calibrator = GridCalibrator(
            infrastructure,
            jobs,
            optimizer=pack.calibration.optimizer,
            budget=pack.calibration.budget,
            mode=pack.calibration.mode,
            seed=pack.calibration.seed,
            min_jobs_per_site=pack.calibration.min_jobs_per_site,
        )
        from repro.experiments.runner import default_workers

        n_workers = pack.calibration.workers if workers is None else workers
        report = calibrator.calibrate(n_workers=n_workers or default_workers())
        return ScenarioOutcome(
            pack=pack,
            mode="calibration",
            calibration=report,
            wallclock_seconds=time.perf_counter() - started,
        )

    if pack.sweep is not None:
        n_workers = pack.sweep.workers if workers is None else workers
        runner = SweepRunner(run_fn=execute_scenario_spec, n_workers=n_workers or None)
        sweep = runner.run(
            sweep_specs(
                pack, checkpoint_dir=checkpoint_dir, checkpoint_every=checkpoint_every
            )
        )
        return ScenarioOutcome(
            pack=pack,
            mode="sweep",
            sweep=sweep,
            wallclock_seconds=time.perf_counter() - started,
        )

    metrics, extras, result = _run_single(
        pack,
        progress=progress,
        progress_interval=progress_interval,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
    )
    return ScenarioOutcome(
        pack=pack,
        mode="single",
        metrics=metrics,
        extras=extras,
        simulated_time=result.simulated_time,
        wallclock_seconds=time.perf_counter() - started,
        stopped_reason=result.stopped_reason,
    )
