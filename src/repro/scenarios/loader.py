"""Read scenario packs from disk (YAML or JSON) and write them back.

One pack is one file.  ``.json`` files parse with the standard library;
``.yaml``/``.yml`` files parse with the optional PyYAML dependency through
the same front-end the three classic config files use
(:func:`repro.config.loaders.read_structured_file`), so the error messages
-- missing file, parse error, non-mapping document -- are uniform across
every input the simulator reads.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.config.loaders import read_structured_file
from repro.scenarios.schema import ScenarioPack

__all__ = ["load_scenario_pack", "save_scenario_pack", "PACK_SUFFIXES"]

PathLike = Union[str, Path]

#: File suffixes recognised as scenario packs by directory discovery.
PACK_SUFFIXES = (".json", ".yaml", ".yml")


def load_scenario_pack(path: PathLike) -> ScenarioPack:
    """Load and validate one scenario-pack file.

    The returned pack remembers its ``source_path`` so that relative file
    references inside it (``grid.kind: files``, ``workload.trace``, an
    ``execution`` path) resolve against the pack's own directory, wherever
    the process happens to run from.

    >>> from repro.scenarios import available_scenario_packs
    >>> "wlcg-baseline" in available_scenario_packs()
    True
    """
    path = Path(path)
    data = read_structured_file(path, "scenario pack")
    return ScenarioPack.from_dict(data, source=path)


def save_scenario_pack(pack: ScenarioPack, path: PathLike) -> Path:
    """Write ``pack`` to ``path`` as canonical JSON (the interchange format)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(pack.to_dict(), indent=2) + "\n", encoding="utf-8")
    return path
