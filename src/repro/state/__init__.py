"""Snapshottable simulation state: checkpoint, restore and fork.

This package is the state layer of the reproduction: it defines the
:class:`Snapshottable` protocol every stateful component implements
(kernel clock, core actors, data subsystem, monitoring counters, RNG tree,
policies), the versioned compressed blob format session checkpoints are
stored in, and the canonicalization/diff helpers replay verification is
built on.

The design is *deterministic replay*, not frame serialisation: a DES run's
live state sits in Python generator frames and calendar buckets that cannot
be pickled meaningfully, so a checkpoint instead records the run's
**inputs** (pristine job waves, the lifecycle op log, RNG bit-generator
states, the simulator configuration) plus per-component verification
snapshots.  ``SimulationSession.restore`` rebuilds the simulator, re-executes
the op log with monitoring sinks detached, and verifies the resulting state
bit-identical against the snapshots -- divergence raises
:class:`~repro.utils.errors.CheckpointError` instead of silently resuming a
different run.  ``session.fork(n)`` layers branching what-if exploration on
top: n restores of one blob, each with per-branch RNG streams derived from
the blob's content fingerprint.

See ``docs/checkpoints.md`` for the user-facing walkthrough.
"""

from repro.state.checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    checkpoint_fingerprint,
    decode_checkpoint,
    encode_checkpoint,
    fingerprint_result,
)
from repro.state.driver import (
    drive_with_checkpoints,
    restore_session_from_blob,
    session_factory_for_payload,
)
from repro.state.protocol import Snapshottable, canonical_state, diff_states
from repro.utils.errors import CheckpointError, SessionError

__all__ = [
    "Snapshottable",
    "canonical_state",
    "diff_states",
    "encode_checkpoint",
    "decode_checkpoint",
    "checkpoint_fingerprint",
    "fingerprint_result",
    "drive_with_checkpoints",
    "session_factory_for_payload",
    "restore_session_from_blob",
    "CheckpointError",
    "SessionError",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
]
