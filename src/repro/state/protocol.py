"""The :class:`Snapshottable` protocol and state canonicalization helpers.

Every stateful layer of the simulator (DES kernel, core actors, data
subsystem, monitoring, RNG tree, policies) exposes the same two methods:
``snapshot()`` returns a plain-data description of the component's semantic
state, and ``restore(state)`` re-seats the component onto (or verifies it
against) such a description.  Checkpoints are built from these snapshots;
replay verification compares them.

Two kinds of component implement ``restore`` differently, by design:

* *directly restorable* state (RNG bit-generator positions, monitoring
  counters, policy cursors) is stamped onto the live object;
* *replay-derived* state (the server's pending list, site counters, the
  replica catalogue) is **verified**: the component was rebuilt by
  re-executing the event stream, so ``restore`` checks the live state
  matches the snapshot and raises
  :class:`~repro.utils.errors.CheckpointError` on divergence.

:func:`canonical_state` normalises snapshots into plain Python data
(numpy scalars to ints/floats, tuples to lists) so they pickle compactly,
compare structurally, and never depend on hash randomization;
:func:`diff_states` produces the human-readable path-level differences the
verification errors report.
"""

from __future__ import annotations

from typing import Iterable, List, Protocol, runtime_checkable

__all__ = ["Snapshottable", "canonical_state", "diff_states"]


@runtime_checkable
class Snapshottable(Protocol):
    """Structural protocol for components whose state can be captured/re-seated.

    A component is snapshottable when it offers ``snapshot() -> dict``
    (plain-data description of its semantic state) and ``restore(state)``
    (stamp the state back, or verify the live state matches it -- see the
    module docstring for which components do which).  The protocol is
    ``runtime_checkable`` so tests can assert coverage with
    ``isinstance(component, Snapshottable)``.
    """

    def snapshot(self) -> dict:
        """Return a plain-data (picklable, comparable) view of the state."""
        ...  # pragma: no cover - protocol definition

    def restore(self, state: dict) -> None:
        """Re-seat the component onto ``state`` or verify it already matches."""
        ...  # pragma: no cover - protocol definition


def canonical_state(value):
    """Recursively normalise a snapshot payload into plain Python data.

    Numpy scalars become ``int``/``float``, tuples and sets become (sorted,
    for sets) lists, and dict values are canonicalised in place -- so two
    snapshots of identical semantic state compare equal with ``==``
    regardless of which numeric types or container flavours produced them,
    and the result pickles without importing numpy on the reading side.
    """
    import numpy as np

    if isinstance(value, dict):
        return {key: canonical_state(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_state(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(canonical_state(item) for item in value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [canonical_state(item) for item in value.tolist()]
    return value


def _diff(path: str, expected, actual, out: List[str], ignore) -> None:
    if any(path == prefix or path.startswith(prefix + ".") for prefix in ignore):
        return
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual), key=str):
            child = f"{path}.{key}" if path else str(key)
            if key not in expected:
                _diff(child, "<absent>", actual[key], out, ignore)
            elif key not in actual:
                _diff(child, expected[key], "<absent>", out, ignore)
            else:
                _diff(child, expected[key], actual[key], out, ignore)
        return
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            out.append(f"{path}: expected {len(expected)} items, got {len(actual)}")
            return
        for index, (e_item, a_item) in enumerate(zip(expected, actual)):
            _diff(f"{path}[{index}]", e_item, a_item, out, ignore)
        return
    if expected != actual:
        out.append(f"{path}: expected {expected!r}, got {actual!r}")


def diff_states(expected, actual, ignore: Iterable[str] = ()) -> List[str]:
    """Structural differences between two canonical snapshots, as path strings.

    Walks both payloads in parallel and returns one ``"path: expected X,
    got Y"`` line per divergent leaf (an empty list means the snapshots
    match).  ``ignore`` names dotted path prefixes to skip -- restore uses
    it for state that is legitimately replay-variant, e.g. monitoring row
    counts when the original streamed rows to sinks the replay detached.
    """
    out: List[str] = []
    _diff("", canonical_state(expected), canonical_state(actual), out, tuple(ignore))
    return out
