"""Checkpoint blob encoding: versioned, compressed session state.

A checkpoint is a self-contained byte string: a magic/version header
followed by a zlib-compressed pickle of the session payload (inputs, job
waves, the lifecycle op log, RNG states, component verification snapshots
and -- when picklable -- the simulator configuration itself, so ``repro
resume`` can rebuild the run without any factory).  The format is
deliberately replay-based: generator frames and calendar buckets are never
serialised; a restore re-executes the recorded ops and verifies the result
bit-identical against the embedded snapshots.

Format (version 1)::

    bytes 0..3   magic  b"RPCK"
    byte  4      format version (currently 1)
    bytes 5..    zlib-compressed pickle (protocol 4) of the payload dict

Version bumps are append-only: a reader refuses blobs with an unknown
version instead of guessing, and :func:`checkpoint_fingerprint` gives every
blob a stable content address (used to derive fork-branch RNG seeds).
"""

from __future__ import annotations

import hashlib
import pickle
import zlib

from repro.utils.errors import CheckpointError

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "encode_checkpoint",
    "decode_checkpoint",
    "checkpoint_fingerprint",
    "fingerprint_result",
]

#: First four bytes of every checkpoint blob ("RePro ChecKpoint").
CHECKPOINT_MAGIC = b"RPCK"

#: Current blob format version (byte 5 of the header).
CHECKPOINT_VERSION = 1


def encode_checkpoint(payload: dict) -> bytes:
    """Serialise a checkpoint payload dict into a versioned, compressed blob.

    The payload is pickled (protocol 4) and zlib-compressed behind the
    ``RPCK`` magic/version header.  Raises
    :class:`~repro.utils.errors.CheckpointError` when the payload contains
    something unpicklable (e.g. a live generator or an open file handle
    smuggled into ``extra``), naming the offending exception.
    """
    try:
        body = pickle.dumps(payload, protocol=4)
    except Exception as exc:
        raise CheckpointError(f"checkpoint payload is not picklable: {exc}") from exc
    return CHECKPOINT_MAGIC + bytes([CHECKPOINT_VERSION]) + zlib.compress(body, 6)


def decode_checkpoint(blob: bytes) -> dict:
    """Decode a blob produced by :func:`encode_checkpoint` back into its payload.

    Validates the magic, the version byte and the compressed body before
    unpickling; any mismatch (truncation, corruption, a future format
    version, a non-checkpoint file) raises
    :class:`~repro.utils.errors.CheckpointError` with a reason instead of a
    bare pickle/zlib traceback.
    """
    if not isinstance(blob, (bytes, bytearray)):
        raise CheckpointError(
            f"checkpoint blob must be bytes, got {type(blob).__name__}"
        )
    blob = bytes(blob)
    if len(blob) < 6 or blob[:4] != CHECKPOINT_MAGIC:
        raise CheckpointError("not a checkpoint blob (bad magic header)")
    version = blob[4]
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format version {version} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    try:
        body = zlib.decompress(blob[5:])
    except zlib.error as exc:
        raise CheckpointError(f"corrupt checkpoint blob: {exc}") from exc
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise CheckpointError(f"corrupt checkpoint payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise CheckpointError("corrupt checkpoint payload: not a mapping")
    return payload


def checkpoint_fingerprint(blob: bytes) -> str:
    """Stable sha256 hex digest of a checkpoint's simulation state.

    Hashes a canonical JSON document of the payload's replay-relevant
    fields (simulated time, job-id counter base, op log, component
    snapshots, site names) rather than the raw pickle bytes: pickle output
    depends on string-interning/memoization accidents, so two checkpoints
    of the *same simulation state* -- e.g. one taken before a restore and
    one taken after the replayed session caught up -- hash identically here
    even when their blobs differ byte-for-byte.  Fork uses this digest as
    the root material for deriving per-branch RNG seeds: every fork of the
    same state explores the same branch futures, which is what makes
    branches replicable.
    """
    import json

    payload = decode_checkpoint(blob)
    document = {
        "time": payload.get("time"),
        "job_counter": payload.get("job_counter"),
        "ops": payload.get("ops"),
        "components": payload.get("components"),
        "site_names": payload.get("site_names"),
    }
    encoded = json.dumps(document, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def fingerprint_result(result) -> str:
    """Sha256 hex digest of a :class:`~repro.core.SimulationResult`'s outputs.

    Canonicalises the headline metrics, the dispatch decisions and every
    job's terminal record (id, state, end time, assigned site) into a stable
    JSON document and hashes it.  Two runs with this fingerprint equal are
    bit-identical at the level users observe; the checkpoint test-suite and
    ``repro resume`` both report it.
    """
    import json

    from repro.state.protocol import canonical_state

    document = {
        "metrics": canonical_state(result.metrics.to_dict()),
        "assignments": sorted(
            (int(job_id), site) for job_id, site in result.assignments.items()
        ),
        "jobs": sorted(
            (
                int(job.job_id),
                job.state.value,
                job.end_time,
                job.assigned_site,
                job.start_time,
            )
            for job in result.jobs
        ),
        "simulated_time": result.simulated_time,
        "stopped_reason": result.stopped_reason,
    }
    encoded = json.dumps(document, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()
