"""Drive a session to completion while writing periodic checkpoints.

:func:`drive_with_checkpoints` is the loop shared by ``repro run
--checkpoint-every``, ``repro resume`` and ``repro scenario run
--checkpoint-dir``: advance the session in bounded chunks, freeze a blob
after every chunk, and leave ``latest.ckpt`` pointing at the newest state so
a crashed (or killed) study resumes from its last boundary instead of cold.

The chunking changes *where the clock pauses*, never what happens: stop
conditions, simulated-time budgets and the legacy
``execution.max_simulation_time`` contract all fire exactly as they do under
one uninterrupted :meth:`~repro.core.session.SimulationSession
.advance_to_completion` -- the same guarantee the session's own chunked
lifecycle gives.  A run driven by this helper can therefore be resumed from
any of its blobs and still land on the same final state.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

from repro.utils.errors import CheckpointError

__all__ = ["drive_with_checkpoints"]


def drive_with_checkpoints(
    session,
    directory,
    every: Optional[float] = None,
    until: Optional[float] = None,
    extra: Optional[dict] = None,
) -> List[Path]:
    """Advance ``session``, checkpointing into ``directory``; return blob paths.

    ``every`` is the chunk length in simulated seconds: the session advances
    in chunks of that size and a blob (``checkpoint_t<time>.ckpt`` plus an
    always-current ``latest.ckpt``) is written at each pause.  With ``every``
    omitted, the run advances in one go and a single blob freezes the final
    state.  ``until`` bounds the advance at an absolute simulated time (the
    CLI's ``--until``); otherwise the session runs to workload completion,
    honoring stop conditions and the legacy ``max_simulation_time`` deadline.
    ``extra`` is stored verbatim in every blob (scenario-pack provenance).
    """
    if every is not None and every <= 0:
        raise CheckpointError(f"checkpoint interval must be positive, got {every}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    last_time = [None]

    def write() -> None:
        if last_time[0] == session.now:
            return
        blob = session.checkpoint(extra=extra)
        path = directory / f"checkpoint_t{int(session.now):012d}.ckpt"
        path.write_bytes(blob)
        (directory / "latest.ckpt").write_bytes(blob)
        written.append(path)
        last_time[0] = session.now

    if until is not None:
        target = float(until)
        if every is None:
            session.advance_until(target)
        else:
            while session.stopped_reason is None and session.now < target:
                session.advance_until(min(session.now + every, target))
                write()
        write()
        return written

    legacy_deadline = session.simulator.execution.max_simulation_time
    if every is not None:
        while session.stopped_reason is None:
            if legacy_deadline is not None:
                next_pause = min(session.now + every, legacy_deadline)
                if next_pause <= session.now:
                    break
                session.advance_until(next_pause)
                write()
            else:
                if session.done:
                    break
                session.advance_for(every)
                write()
    session.advance_to_completion()
    write()
    return written
