"""Drive a session to completion while writing periodic checkpoints.

:func:`drive_with_checkpoints` is the loop shared by ``repro run
--checkpoint-every``, ``repro resume`` and ``repro scenario run
--checkpoint-dir``: advance the session in bounded chunks, freeze a blob
after every chunk, and leave ``latest.ckpt`` pointing at the newest state so
a crashed (or killed) study resumes from its last boundary instead of cold.

The chunking changes *where the clock pauses*, never what happens: stop
conditions, simulated-time budgets and the legacy
``execution.max_simulation_time`` contract all fire exactly as they do under
one uninterrupted :meth:`~repro.core.session.SimulationSession
.advance_to_completion` -- the same guarantee the session's own chunked
lifecycle gives.  A run driven by this helper can therefore be resumed from
any of its blobs and still land on the same final state.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple

from repro.utils.errors import CheckpointError

__all__ = [
    "drive_with_checkpoints",
    "session_factory_for_payload",
    "restore_session_from_blob",
]


def session_factory_for_payload(payload: dict):
    """Simulator factory rebuilt from a blob's embedded scenario provenance.

    Checkpoints written by scenario runs stamp the pack's canonical dict
    (and source path) into the blob's ``extra``; this helper turns that
    provenance back into a zero-argument factory that rebuilds the
    simulator through the scenario runner -- re-registering the pack's
    build hooks (replica placement), which the embedded-config restore
    path cannot reconstruct.  Returns ``None`` for blobs without scenario
    provenance (``SimulationSession.restore`` then uses the embedded
    simulator configuration).
    """
    extra = payload.get("extra") or {}
    if not (isinstance(extra, dict) and extra.get("scenario_pack")):
        return None
    from repro.scenarios.runner import _build_simulator
    from repro.scenarios.schema import ScenarioPack

    source = extra.get("scenario_source")
    pack = ScenarioPack.from_dict(
        extra["scenario_pack"], source=Path(source) if source else None
    )

    def factory():
        return _build_simulator(pack)[0]

    return factory


def restore_session_from_blob(
    blob: bytes,
    *,
    monitoring: str = "replay",
    expected_pack: Optional[dict] = None,
) -> Tuple[object, dict]:
    """Resume a checkpoint blob in *this* process, wherever it was written.

    The cross-process/cross-host resume front door shared by ``cgsim
    resume`` and the service workers: decode the blob, rebuild a simulator
    factory from its embedded scenario-pack provenance when present
    (:func:`session_factory_for_payload`), and hand both to
    :meth:`~repro.core.session.SimulationSession.restore`, which replays
    and bit-verifies the state.  Returns ``(session, payload)`` -- the
    payload gives callers access to ``extra`` provenance without decoding
    twice.

    ``expected_pack`` guards against resuming the wrong study: when given,
    the blob's embedded pack dict must equal it exactly (overrides
    included) or :class:`~repro.utils.errors.CheckpointError` is raised
    instead of silently replaying a different run.
    """
    from repro.core.session import SimulationSession
    from repro.state.checkpoint import decode_checkpoint

    payload = decode_checkpoint(blob)
    if expected_pack is not None:
        extra = payload.get("extra") or {}
        if extra.get("scenario_pack") != expected_pack:
            raise CheckpointError(
                "checkpoint provenance mismatch: the blob was written by a "
                "different scenario pack (or different overrides) than the "
                "one being resumed; refusing to replay it"
            )
    factory = session_factory_for_payload(payload)
    session = SimulationSession.restore(factory, blob, monitoring=monitoring)
    return session, payload


def drive_with_checkpoints(
    session,
    directory,
    every: Optional[float] = None,
    until: Optional[float] = None,
    extra: Optional[dict] = None,
) -> List[Path]:
    """Advance ``session``, checkpointing into ``directory``; return blob paths.

    ``every`` is the chunk length in simulated seconds: the session advances
    in chunks of that size and a blob (``checkpoint_t<time>.ckpt`` plus an
    always-current ``latest.ckpt``) is written at each pause.  With ``every``
    omitted, the run advances in one go and a single blob freezes the final
    state.  ``until`` bounds the advance at an absolute simulated time (the
    CLI's ``--until``); otherwise the session runs to workload completion,
    honoring stop conditions and the legacy ``max_simulation_time`` deadline.
    ``extra`` is stored verbatim in every blob (scenario-pack provenance).
    """
    if every is not None and every <= 0:
        raise CheckpointError(f"checkpoint interval must be positive, got {every}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    last_time = [None]

    def write() -> None:
        if last_time[0] == session.now:
            return
        blob = session.checkpoint(extra=extra)
        path = directory / f"checkpoint_t{int(session.now):012d}.ckpt"
        path.write_bytes(blob)
        (directory / "latest.ckpt").write_bytes(blob)
        written.append(path)
        last_time[0] = session.now

    if until is not None:
        target = float(until)
        if every is None:
            session.advance_until(target)
        else:
            while session.stopped_reason is None and session.now < target:
                session.advance_until(min(session.now + every, target))
                write()
        write()
        return written

    legacy_deadline = session.simulator.execution.max_simulation_time
    if every is not None:
        while session.stopped_reason is None:
            if legacy_deadline is not None:
                next_pause = min(session.now + every, legacy_deadline)
                if next_pause <= session.now:
                    break
                session.advance_until(next_pause)
                write()
            else:
                if session.done:
                    break
                session.advance_for(every)
                write()
    session.advance_to_completion()
    write()
    return written
