"""Statistical helpers shared by the evaluation harness."""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, Tuple

import numpy as np

from repro.calibration.objective import geometric_mean, relative_mae  # re-exported
from repro.utils.errors import CGSimError
from repro.utils.rng import spawn_rng

__all__ = ["geometric_mean", "relative_mae", "bootstrap_ci", "speedup"]


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 1000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """Bootstrap confidence interval of ``statistic`` over ``values``.

    Returns ``(point_estimate, low, high)``.  Used by the benchmark harness
    to attach uncertainty to the calibration-error aggregates ("multiple runs
    per configuration to ensure statistical correctness").
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise CGSimError("bootstrap over an empty sample")
    if not 0 < confidence < 1:
        raise CGSimError("confidence must lie in (0, 1)")
    rng = spawn_rng(seed, "analysis-bootstrap")
    point = float(statistic(array))
    resampled = np.empty(n_resamples)
    for i in range(n_resamples):
        sample = array[rng.integers(0, array.size, size=array.size)]
        resampled[i] = statistic(sample)
    alpha = (1 - confidence) / 2
    low, high = np.quantile(resampled, [alpha, 1 - alpha])
    return point, float(low), float(high)


def speedup(baseline: float, improved: float) -> float:
    """Speed-up factor ``baseline / improved`` (e.g. the 6x distributed-vs-single claim)."""
    if improved <= 0:
        raise CGSimError("improved duration must be positive")
    if baseline < 0:
        raise CGSimError("baseline duration must be >= 0")
    return baseline / improved
