"""Scaling-law fits for the scalability experiments.

The paper characterises CGSim's runtime scaling qualitatively: job scaling is
*sub-quadratic* and multi-site scaling is *near-linear*.  These helpers turn
measured ``(size, runtime)`` series into a fitted power law
``runtime ≈ a * size^b`` so the benchmark harness can assert those shapes
(``b < 2`` and ``b ≈ 1`` respectively) rather than absolute numbers that
depend on the machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.utils.errors import CGSimError

__all__ = ["ScalingFit", "fit_power_law", "linearity_score"]


@dataclass
class ScalingFit:
    """Result of fitting ``runtime = a * size**b``."""

    prefactor: float
    exponent: float
    r_squared: float

    def predict(self, size: float) -> float:
        """Predicted runtime at ``size``."""
        return self.prefactor * size**self.exponent

    @property
    def is_subquadratic(self) -> bool:
        """True when the fitted exponent is below 2 (the Figure 4a claim)."""
        return self.exponent < 2.0

    @property
    def is_near_linear(self) -> bool:
        """True when the fitted exponent lies in [0.5, 1.5] (the Figure 4b claim)."""
        return 0.5 <= self.exponent <= 1.5


def fit_power_law(sizes: Sequence[float], runtimes: Sequence[float]) -> ScalingFit:
    """Least-squares power-law fit in log-log space."""
    sizes = np.asarray(list(sizes), dtype=float)
    runtimes = np.asarray(list(runtimes), dtype=float)
    if sizes.shape != runtimes.shape or sizes.size < 2:
        raise CGSimError("need at least two (size, runtime) pairs of equal length")
    if np.any(sizes <= 0) or np.any(runtimes <= 0):
        raise CGSimError("sizes and runtimes must be positive for a log-log fit")
    log_x = np.log(sizes)
    log_y = np.log(runtimes)
    design = np.column_stack([np.ones_like(log_x), log_x])
    coefficients, *_ = np.linalg.lstsq(design, log_y, rcond=None)
    predictions = design @ coefficients
    residual = float(np.sum((log_y - predictions) ** 2))
    total = float(np.sum((log_y - log_y.mean()) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return ScalingFit(
        prefactor=float(np.exp(coefficients[0])),
        exponent=float(coefficients[1]),
        r_squared=r_squared,
    )


def linearity_score(sizes: Sequence[float], runtimes: Sequence[float]) -> float:
    """R^2 of a direct linear (through-origin allowed) fit ``runtime ~ size``.

    A value close to 1 indicates near-linear scaling.
    """
    sizes = np.asarray(list(sizes), dtype=float)
    runtimes = np.asarray(list(runtimes), dtype=float)
    if sizes.shape != runtimes.shape or sizes.size < 2:
        raise CGSimError("need at least two (size, runtime) pairs of equal length")
    design = np.column_stack([np.ones_like(sizes), sizes])
    coefficients, *_ = np.linalg.lstsq(design, runtimes, rcond=None)
    predictions = design @ coefficients
    residual = float(np.sum((runtimes - predictions) ** 2))
    total = float(np.sum((runtimes - runtimes.mean()) ** 2))
    return 1.0 - residual / total if total > 0 else 1.0
