"""Plain-text report tables.

The benchmark harness prints the rows/series of every reproduced table and
figure; these helpers format them consistently (fixed-width columns, numeric
rounding) so EXPERIMENTS.md and the bench output stay readable without any
plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.metrics import SimulationMetrics

__all__ = [
    "format_table",
    "cache_table",
    "metrics_table",
    "site_table",
    "sweep_table",
    "transition_table",
]


def _format_value(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[dict], columns: Optional[List[str]] = None) -> str:
    """Format a list of dict rows as a fixed-width text table."""
    rows = list(rows)
    if not rows:
        return "(empty table)"
    columns = columns or list(rows[0].keys())
    rendered = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in rendered
    ]
    return "\n".join([header, separator, *body])


def metrics_table(metrics: SimulationMetrics) -> str:
    """One-row table with the grid-level metrics of a run."""
    row = {
        "jobs": metrics.total_jobs,
        "finished": metrics.finished_jobs,
        "failed": metrics.failed_jobs,
        "makespan_s": metrics.makespan,
        "mean_walltime_s": metrics.mean_walltime,
        "mean_queue_s": metrics.mean_queue_time,
        "throughput_jobs_per_s": metrics.throughput,
        "failure_rate": metrics.failure_rate,
    }
    return format_table([row])


def site_table(metrics: SimulationMetrics) -> str:
    """Per-site breakdown table of a run."""
    rows = [m.to_row() for m in metrics.per_site.values()]
    return format_table(rows) if rows else "(no per-site data)"


def cache_table(metrics: SimulationMetrics) -> str:
    """Per-site cache breakdown (hit rate, evictions, bytes by tier).

    Populated when the run's data manager had site caches attached (a
    ``data.cache`` section in the scenario pack, or a
    :class:`~repro.data.DataCacheSpec` passed to the simulator); one row per
    site from :meth:`repro.data.CacheStats.to_row`.
    """
    rows = list(metrics.cache_per_site.values())
    return format_table(rows) if rows else "(no cache data)"


def transition_table(metrics: SimulationMetrics) -> str:
    """Monitoring-trace transition counts per job state.

    Populated when the run's metrics were computed with the collector (the
    counts come from one pass over the columnar trace buffer).
    """
    rows = [
        {"state": state, "transitions": count}
        for state, count in sorted(metrics.transitions.items())
    ]
    return format_table(rows) if rows else "(no transition data)"


def sweep_table(rows: Sequence[dict]) -> str:
    """Per-scenario summary table of an experiment sweep.

    ``rows`` is the output of
    :func:`repro.experiments.aggregate.aggregate_results`: one dict per
    scenario with ``scenario``/``runs``/``errors`` plus per-metric mean and
    confidence-interval columns.
    """
    rows = list(rows)
    if not rows:
        return "(empty sweep)"
    columns = ["scenario", "runs", "errors"] + [
        col for col in rows[0] if col not in ("scenario", "runs", "errors")
    ]
    return format_table(rows, columns=columns)
