"""Analysis helpers: statistics, scaling-law fits and report tables.

These are the post-processing pieces the evaluation section needs: geometric
means and bootstrap confidence intervals for the calibration figures,
power-law fits for the scalability study (sub-quadratic job scaling,
near-linear site scaling) and plain-text report tables for the benchmark
harness output.
"""

from repro.analysis.reporting import (
    format_table,
    metrics_table,
    site_table,
    sweep_table,
    transition_table,
)
from repro.analysis.scaling import ScalingFit, fit_power_law, linearity_score
from repro.analysis.stats import bootstrap_ci, geometric_mean, relative_mae, speedup

__all__ = [
    "geometric_mean",
    "relative_mae",
    "bootstrap_ci",
    "speedup",
    "fit_power_law",
    "linearity_score",
    "ScalingFit",
    "format_table",
    "metrics_table",
    "site_table",
    "sweep_table",
    "transition_table",
]
