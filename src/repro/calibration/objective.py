"""Calibration error metrics.

The calibration objective of the paper is to minimise
``delta_exe = Sim_exe_time - His_exe_time`` across all sites and job types,
quantified as the **relative mean absolute error** of job walltime; results
are aggregated over sites with the **geometric mean** (Figure 3).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.errors import CalibrationError
from repro.workload.job import Job, JobState

__all__ = [
    "relative_errors",
    "relative_mae",
    "walltime_error_by_category",
    "geometric_mean",
]


def relative_errors(simulated: Sequence[float], truth: Sequence[float]) -> np.ndarray:
    """Element-wise relative absolute errors ``|sim - true| / true``.

    Ground-truth entries that are zero or negative are skipped (a relative
    error is undefined there); an empty result raises
    :class:`CalibrationError` because the calibration objective would be
    meaningless.
    """
    simulated = np.asarray(list(simulated), dtype=float)
    truth = np.asarray(list(truth), dtype=float)
    if simulated.shape != truth.shape:
        raise CalibrationError(
            f"simulated and truth lengths differ: {simulated.shape} vs {truth.shape}"
        )
    mask = truth > 0
    if not np.any(mask):
        raise CalibrationError("no positive ground-truth values to compare against")
    return np.abs(simulated[mask] - truth[mask]) / truth[mask]


def relative_mae(simulated: Sequence[float], truth: Sequence[float]) -> float:
    """Relative mean absolute error (the paper's calibration objective)."""
    return float(np.mean(relative_errors(simulated, truth)))


def geometric_mean(values: Iterable[float], floor: float = 1e-12) -> float:
    """Geometric mean of non-negative values (zeros floored at ``floor``).

    The paper reports the geometric mean of per-site relative MAEs; the floor
    keeps a single perfectly-calibrated site from collapsing the aggregate to
    zero.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise CalibrationError("geometric mean of an empty collection")
    if np.any(array < 0):
        raise CalibrationError("geometric mean requires non-negative values")
    return float(np.exp(np.mean(np.log(np.maximum(array, floor)))))


def walltime_error_by_category(
    jobs: Iterable[Job],
    simulated_walltimes: Optional[Dict[int, float]] = None,
) -> Dict[str, float]:
    """Relative MAE of walltime split into single-core and multi-core jobs.

    Parameters
    ----------
    jobs:
        Jobs carrying ground truth (``true_walltime``).  When
        ``simulated_walltimes`` is omitted, each job's *simulated* walltime is
        taken from the job itself (i.e. the jobs come from a finished run).
    simulated_walltimes:
        Optional mapping of ``job_id`` to simulated walltime overriding the
        job's own value (used when evaluating analytic candidates without a
        full run).

    Returns
    -------
    dict
        ``{"single_core": ..., "multi_core": ..., "overall": ...}``; a
        category with no comparable jobs is reported as ``nan``.
    """
    singles_sim: List[float] = []
    singles_true: List[float] = []
    multi_sim: List[float] = []
    multi_true: List[float] = []
    for job in jobs:
        if job.true_walltime is None or job.true_walltime <= 0:
            continue
        if simulated_walltimes is not None:
            sim = simulated_walltimes.get(int(job.job_id))
        else:
            sim = job.walltime
        if sim is None:
            continue
        if job.is_multicore:
            multi_sim.append(sim)
            multi_true.append(job.true_walltime)
        else:
            singles_sim.append(sim)
            singles_true.append(job.true_walltime)

    def _maybe(sim: List[float], true: List[float]) -> float:
        if not sim:
            return float("nan")
        return relative_mae(sim, true)

    overall_sim = singles_sim + multi_sim
    overall_true = singles_true + multi_true
    return {
        "single_core": _maybe(singles_sim, singles_true),
        "multi_core": _maybe(multi_sim, multi_true),
        "overall": _maybe(overall_sim, overall_true),
    }
