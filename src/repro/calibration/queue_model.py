"""Queue-time modelling.

After calibrating walltimes, the paper extends the methodology to queue-time
modelling, "incorporating scheduling overhead and resource contention effects
to achieve comprehensive job lifecycle accuracy".  The model fitted here is
the simple two-parameter form that captures exactly those effects::

    queue_time ≈ alpha + beta * backlog_work / site_capacity

where ``backlog_work`` is the core-seconds of work submitted to the site but
not yet finished at the job's submission instant and ``site_capacity`` is the
site's total cores.  ``alpha`` is the fixed scheduling overhead, ``beta`` the
contention coefficient; both are obtained by least squares against the
ground-truth queue times of a historical trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.config.infrastructure import InfrastructureConfig
from repro.utils.errors import CalibrationError
from repro.workload.job import Job

__all__ = ["QueueTimeModel"]


@dataclass
class QueueTimeModel:
    """Per-site linear queue-time model ``alpha + beta * normalized_backlog``."""

    alpha: Dict[str, float]
    beta: Dict[str, float]

    # -- feature construction -------------------------------------------------------
    @staticmethod
    def backlog_features(jobs: Sequence[Job], site_cores: Dict[str, int]) -> Dict[int, float]:
        """Normalised backlog seen by every job at its submission time.

        The backlog of a job is the total outstanding core-seconds of the
        *earlier-submitted* jobs bound for the same site, divided by the
        site's core count -- i.e. the naive drain time of the queue ahead.
        """
        features: Dict[int, float] = {}
        by_site: Dict[str, List[Job]] = {}
        for job in jobs:
            site = job.target_site or job.assigned_site
            if site is None:
                continue
            by_site.setdefault(site, []).append(job)
        for site, site_jobs in by_site.items():
            cores = max(1, site_cores.get(site, 1))
            ordered = sorted(site_jobs, key=lambda j: j.submission_time)
            backlog = 0.0
            finished: List[Tuple[float, float]] = []  # (completion_estimate, core_seconds)
            for job in ordered:
                now = job.submission_time
                # Remove work that would have drained by now.
                finished = [(t, w) for (t, w) in finished if t > now]
                backlog = sum(w for (_t, w) in finished)
                features[int(job.job_id)] = backlog / cores
                walltime = job.true_walltime or 0.0
                finished.append((now + walltime, walltime * job.cores))
        return features

    # -- fitting ---------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        jobs: Iterable[Job],
        infrastructure: InfrastructureConfig,
        min_jobs_per_site: int = 5,
    ) -> "QueueTimeModel":
        """Least-squares fit of (alpha, beta) per site from ground-truth queue times."""
        jobs = [j for j in jobs if j.true_queue_time is not None and j.true_queue_time >= 0]
        if not jobs:
            raise CalibrationError("no jobs with ground-truth queue time")
        site_cores = {site.name: site.cores for site in infrastructure.sites}
        features = cls.backlog_features(jobs, site_cores)
        alpha: Dict[str, float] = {}
        beta: Dict[str, float] = {}
        by_site: Dict[str, List[Job]] = {}
        for job in jobs:
            site = job.target_site or job.assigned_site
            if site is not None and int(job.job_id) in features:
                by_site.setdefault(site, []).append(job)
        for site, site_jobs in by_site.items():
            if len(site_jobs) < min_jobs_per_site:
                continue
            x = np.array([features[int(j.job_id)] for j in site_jobs])
            y = np.array([j.true_queue_time for j in site_jobs])
            design = np.column_stack([np.ones_like(x), x])
            coefficients, *_ = np.linalg.lstsq(design, y, rcond=None)
            # Queue times cannot be negative: clamp the intercept at zero.
            alpha[site] = float(max(0.0, coefficients[0]))
            beta[site] = float(max(0.0, coefficients[1]))
        if not alpha:
            raise CalibrationError("no site had enough jobs to fit a queue-time model")
        return cls(alpha=alpha, beta=beta)

    # -- prediction -------------------------------------------------------------------
    def predict(self, site: str, normalized_backlog: float) -> float:
        """Predicted queue time for a job facing ``normalized_backlog`` at ``site``."""
        if site not in self.alpha:
            raise CalibrationError(f"queue-time model has no parameters for site {site!r}")
        return self.alpha[site] + self.beta[site] * max(0.0, normalized_backlog)

    def predict_jobs(
        self, jobs: Sequence[Job], infrastructure: InfrastructureConfig
    ) -> Dict[int, float]:
        """Predicted queue time for every job with a fitted site."""
        site_cores = {site.name: site.cores for site in infrastructure.sites}
        features = self.backlog_features(jobs, site_cores)
        predictions: Dict[int, float] = {}
        for job in jobs:
            site = job.target_site or job.assigned_site
            if site in self.alpha and int(job.job_id) in features:
                predictions[int(job.job_id)] = self.predict(site, features[int(job.job_id)])
        return predictions

    def mean_absolute_error(
        self, jobs: Sequence[Job], infrastructure: InfrastructureConfig
    ) -> float:
        """MAE of the model's predictions against ground-truth queue times."""
        predictions = self.predict_jobs(jobs, infrastructure)
        errors = [
            abs(predictions[int(j.job_id)] - j.true_queue_time)
            for j in jobs
            if int(j.job_id) in predictions and j.true_queue_time is not None
        ]
        if not errors:
            raise CalibrationError("no comparable jobs for queue-time evaluation")
        return float(np.mean(errors))
