"""Calibration framework: making simulated job times match ground truth.

The paper calibrates CGSim against historical PanDA job records: for every
site, the dominant parameter (per-core processing speed) is tuned so that the
simulated execution time matches the recorded one, with the relative mean
absolute error (MAE) of job walltime as the objective.  Four optimisation
methods are compared (brute force, random search, Bayesian optimisation and
CMA-ES), and the calibration improves the geometric-mean relative MAE across
50 sites from 76% to 17%.

This package reproduces that machinery:

* :mod:`~repro.calibration.objective` -- error metrics
  (:func:`relative_mae`, per-category walltime errors, geometric means).
* :mod:`~repro.calibration.search` -- the four optimizers, implemented from
  scratch on numpy/scipy.
* :class:`~repro.calibration.calibrator.SiteCalibrator` /
  :class:`~repro.calibration.calibrator.GridCalibrator` -- the site-specific
  calibration loops replaying historical jobs against candidate parameters.
* :mod:`~repro.calibration.sensitivity` -- one-at-a-time parameter
  sensitivity analysis (identifying core speed as the dominant parameter).
* :mod:`~repro.calibration.queue_model` -- the queue-time extension fitted
  after walltime calibration.
"""

from repro.calibration.calibrator import (
    CalibrationReport,
    GridCalibrator,
    SiteCalibrationResult,
    SiteCalibrator,
)
from repro.calibration.objective import (
    geometric_mean,
    relative_errors,
    relative_mae,
    walltime_error_by_category,
)
from repro.calibration.queue_model import QueueTimeModel
from repro.calibration.search import (
    BayesianOptimizer,
    BruteForceOptimizer,
    CMAESOptimizer,
    OptimizationResult,
    RandomSearchOptimizer,
    get_optimizer,
)
from repro.calibration.sensitivity import SensitivityAnalysis, SensitivityResult

__all__ = [
    "relative_mae",
    "relative_errors",
    "walltime_error_by_category",
    "geometric_mean",
    "SiteCalibrator",
    "GridCalibrator",
    "SiteCalibrationResult",
    "CalibrationReport",
    "BruteForceOptimizer",
    "RandomSearchOptimizer",
    "BayesianOptimizer",
    "CMAESOptimizer",
    "OptimizationResult",
    "get_optimizer",
    "SensitivityAnalysis",
    "SensitivityResult",
    "QueueTimeModel",
]
