"""Bayesian optimisation with a Gaussian-process surrogate.

A compact, dependency-free BO implementation: a Gaussian process with a
squared-exponential kernel models the objective over the (normalised) search
box, and the next evaluation point maximises the Expected Improvement
acquisition function over a random candidate set.  This is the textbook BO
recipe the paper refers to; it is implemented with numpy/scipy only.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.stats import norm

from repro.calibration.search.base import Optimizer, OptimizationResult, register_optimizer
from repro.utils.rng import spawn_rng

__all__ = ["BayesianOptimizer"]


def _sq_exp_kernel(a: np.ndarray, b: np.ndarray, length_scale: float, variance: float) -> np.ndarray:
    """Squared-exponential covariance between two point sets (normalised space)."""
    d2 = np.sum((a[:, None, :] - b[None, :, :]) ** 2, axis=-1)
    return variance * np.exp(-0.5 * d2 / length_scale**2)


@register_optimizer("bayesian")
class BayesianOptimizer(Optimizer):
    """Gaussian-process Bayesian optimisation with Expected Improvement.

    Parameters
    ----------
    seed:
        Randomness seed (initial design + candidate sets).
    initial_points:
        Number of uniform random evaluations before the GP loop starts.
    candidates:
        Number of random candidates scored by the acquisition per iteration.
    length_scale / variance / noise:
        GP hyper-parameters in the unit-box normalised space.
    """

    def __init__(
        self,
        seed: int = 0,
        initial_points: int = 5,
        candidates: int = 256,
        length_scale: float = 0.2,
        variance: float = 1.0,
        noise: float = 1e-6,
    ) -> None:
        super().__init__(seed=seed)
        self.initial_points = int(initial_points)
        self.candidates = int(candidates)
        self.length_scale = float(length_scale)
        self.variance = float(variance)
        self.noise = float(noise)

    # -- GP machinery -------------------------------------------------------------
    def _posterior(
        self, X: np.ndarray, y: np.ndarray, candidates: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """GP posterior mean and standard deviation at ``candidates``."""
        y_mean = float(np.mean(y))
        y_std = float(np.std(y)) or 1.0
        y_norm = (y - y_mean) / y_std
        K = _sq_exp_kernel(X, X, self.length_scale, self.variance)
        K[np.diag_indices_from(K)] += self.noise
        try:
            factor = cho_factor(K, lower=True)
        except np.linalg.LinAlgError:
            K[np.diag_indices_from(K)] += 1e-6
            factor = cho_factor(K, lower=True)
        k_star = _sq_exp_kernel(X, candidates, self.length_scale, self.variance)
        alpha = cho_solve(factor, y_norm)
        mean = k_star.T @ alpha
        v = cho_solve(factor, k_star)
        var = self.variance - np.sum(k_star * v, axis=0)
        var = np.maximum(var, 1e-12)
        return mean * y_std + y_mean, np.sqrt(var) * y_std

    @staticmethod
    def _expected_improvement(mean: np.ndarray, std: np.ndarray, best: float) -> np.ndarray:
        """EI for minimisation."""
        improvement = best - mean
        z = improvement / std
        return improvement * norm.cdf(z) + std * norm.pdf(z)

    # -- main loop ------------------------------------------------------------------
    def minimize(self, objective, bounds, budget: int) -> OptimizationResult:
        box = self._validate(bounds, budget)
        dims = box.shape[0]
        span = box[:, 1] - box[:, 0]
        rng = spawn_rng(self.seed, "calibration-bayesian")

        def denorm(u: np.ndarray) -> np.ndarray:
            return box[:, 0] + u * span

        history: List[Tuple[np.ndarray, float]] = []
        X_unit: List[np.ndarray] = []
        y: List[float] = []

        n_init = min(max(1, self.initial_points), budget)
        for _ in range(n_init):
            u = rng.uniform(size=dims)
            x = denorm(u)
            value = float(objective(x))
            X_unit.append(u)
            y.append(value)
            history.append((x, value))

        while len(history) < budget:
            X = np.vstack(X_unit)
            y_arr = np.asarray(y)
            candidates = rng.uniform(size=(self.candidates, dims))
            mean, std = self._posterior(X, y_arr, candidates)
            ei = self._expected_improvement(mean, std, float(np.min(y_arr)))
            u = candidates[int(np.argmax(ei))]
            x = denorm(u)
            value = float(objective(x))
            X_unit.append(u)
            y.append(value)
            history.append((x, value))

        return self._finalize(history)
