"""Covariance Matrix Adaptation Evolution Strategy (CMA-ES).

A from-scratch implementation of the (mu/mu_w, lambda)-CMA-ES following
Hansen's tutorial (the reference the paper cites), with box-constraint
handling by resampling/clipping.  It is intentionally compact: the
calibration problems it is used for are low-dimensional (typically one
parameter per site), so the full restart machinery of production CMA-ES
libraries is unnecessary.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.calibration.search.base import Optimizer, OptimizationResult, register_optimizer
from repro.utils.rng import spawn_rng

__all__ = ["CMAESOptimizer"]


@register_optimizer("cmaes")
class CMAESOptimizer(Optimizer):
    """(mu/mu_w, lambda)-CMA-ES with box constraints.

    Parameters
    ----------
    seed:
        Randomness seed.
    population:
        Population size lambda; defaults to ``4 + floor(3 ln n)`` as in the
        tutorial.
    initial_sigma:
        Initial step size as a fraction of the search-box span.
    """

    def __init__(self, seed: int = 0, population: int = 0, initial_sigma: float = 0.3) -> None:
        super().__init__(seed=seed)
        self.population = int(population)
        self.initial_sigma = float(initial_sigma)

    def minimize(self, objective, bounds, budget: int) -> OptimizationResult:
        box = self._validate(bounds, budget)
        n = box.shape[0]
        span = box[:, 1] - box[:, 0]
        rng = spawn_rng(self.seed, "calibration-cmaes")

        lam = self.population or (4 + int(3 * np.log(n)))
        lam = max(2, min(lam, budget))
        mu = lam // 2
        weights = np.log(mu + 0.5) - np.log(np.arange(1, mu + 1))
        weights /= weights.sum()
        mu_eff = 1.0 / np.sum(weights**2)

        # Strategy parameters (Hansen's defaults).
        cc = (4 + mu_eff / n) / (n + 4 + 2 * mu_eff / n)
        cs = (mu_eff + 2) / (n + mu_eff + 5)
        c1 = 2 / ((n + 1.3) ** 2 + mu_eff)
        cmu = min(1 - c1, 2 * (mu_eff - 2 + 1 / mu_eff) / ((n + 2) ** 2 + mu_eff))
        damps = 1 + 2 * max(0.0, np.sqrt((mu_eff - 1) / (n + 1)) - 1) + cs
        chi_n = np.sqrt(n) * (1 - 1 / (4 * n) + 1 / (21 * n**2))

        # State, in normalised [0, 1]^n coordinates.
        mean = rng.uniform(0.25, 0.75, size=n)
        sigma = self.initial_sigma
        C = np.eye(n)
        p_sigma = np.zeros(n)
        p_c = np.zeros(n)

        def denorm(u: np.ndarray) -> np.ndarray:
            return box[:, 0] + np.clip(u, 0.0, 1.0) * span

        history: List[Tuple[np.ndarray, float]] = []
        evaluations = 0
        while evaluations < budget:
            # Sample the population (eigen-decomposition of C each generation
            # is fine at these dimensionalities).
            eigenvalues, eigenvectors = np.linalg.eigh(C)
            eigenvalues = np.maximum(eigenvalues, 1e-20)
            sqrt_C = eigenvectors @ np.diag(np.sqrt(eigenvalues)) @ eigenvectors.T
            inv_sqrt_C = eigenvectors @ np.diag(1.0 / np.sqrt(eigenvalues)) @ eigenvectors.T

            this_lam = min(lam, budget - evaluations)
            # The population of one generation is independent: draw it all
            # (RNG order identical to the sequential loop), then evaluate as
            # one batch (parallel when a batch_map is installed).
            us = []
            for _ in range(this_lam):
                z = rng.standard_normal(n)
                us.append(np.clip(mean + sigma * (sqrt_C @ z), 0.0, 1.0))
            xs = [denorm(u) for u in us]
            values = self.evaluate_batch(objective, xs)
            samples = list(zip(us, values))
            history.extend(zip(xs, values))
            evaluations += this_lam
            if evaluations >= budget and this_lam < mu:
                break  # not enough samples to update; best-so-far is returned

            samples.sort(key=lambda pair: pair[1])
            top = samples[: min(mu, len(samples))]
            top_w = weights[: len(top)] / weights[: len(top)].sum()
            new_mean = np.sum([w * u for w, (u, _v) in zip(top_w, top)], axis=0)

            # Step-size and covariance adaptation.
            mean_shift = (new_mean - mean) / max(sigma, 1e-12)
            p_sigma = (1 - cs) * p_sigma + np.sqrt(cs * (2 - cs) * mu_eff) * (
                inv_sqrt_C @ mean_shift
            )
            h_sigma = float(
                np.linalg.norm(p_sigma)
                / np.sqrt(1 - (1 - cs) ** (2 * (evaluations / lam + 1)))
                < (1.4 + 2 / (n + 1)) * chi_n
            )
            p_c = (1 - cc) * p_c + h_sigma * np.sqrt(cc * (2 - cc) * mu_eff) * mean_shift
            rank_mu = np.zeros((n, n))
            for w, (u, _v) in zip(top_w, top):
                d = (u - mean) / max(sigma, 1e-12)
                rank_mu += w * np.outer(d, d)
            C = (
                (1 - c1 - cmu) * C
                + c1 * (np.outer(p_c, p_c) + (1 - h_sigma) * cc * (2 - cc) * C)
                + cmu * rank_mu
            )
            sigma *= float(np.exp((cs / damps) * (np.linalg.norm(p_sigma) / chi_n - 1)))
            sigma = float(np.clip(sigma, 1e-8, 1.0))
            mean = new_mean

        return self._finalize(history)
