"""Black-box optimizers used by the calibration framework.

The paper evaluates four calibration approaches -- brute-force search, random
sampling, Bayesian optimisation and CMA-ES -- and finds that, within the
evaluation budget they allow per site, random search achieves the lowest
average error.  All four are implemented here from scratch (numpy/scipy only)
behind one interface: ``optimizer.minimize(objective, bounds, budget)``.
"""

from repro.calibration.search.base import OptimizationResult, Optimizer, get_optimizer
from repro.calibration.search.bayesian import BayesianOptimizer
from repro.calibration.search.brute_force import BruteForceOptimizer
from repro.calibration.search.cmaes import CMAESOptimizer
from repro.calibration.search.random_search import RandomSearchOptimizer

__all__ = [
    "Optimizer",
    "OptimizationResult",
    "get_optimizer",
    "BruteForceOptimizer",
    "RandomSearchOptimizer",
    "BayesianOptimizer",
    "CMAESOptimizer",
]
