"""Common optimizer interface and result container."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.utils.errors import CalibrationError

__all__ = ["OptimizationResult", "Optimizer", "register_optimizer", "get_optimizer"]

Objective = Callable[[np.ndarray], float]
Bounds = Sequence[Tuple[float, float]]


@dataclass
class OptimizationResult:
    """Outcome of one optimisation run."""

    best_x: np.ndarray
    best_value: float
    evaluations: int
    #: Every evaluated (x, value) pair, in evaluation order.
    history: List[Tuple[np.ndarray, float]] = field(default_factory=list)
    optimizer: str = ""

    @property
    def trajectory(self) -> List[float]:
        """Best-so-far objective value after each evaluation."""
        best = float("inf")
        values = []
        for _x, value in self.history:
            best = min(best, value)
            values.append(best)
        return values


class Optimizer(abc.ABC):
    """Base class of the calibration optimizers.

    Parameters
    ----------
    seed:
        Seed of the optimizer's internal randomness (ignored by the
        deterministic brute-force search).
    """

    name = "base"

    #: Optional order-preserving map used to evaluate independent candidate
    #: batches (e.g. :func:`repro.experiments.parallel_map` bound to a worker
    #: pool).  ``None`` evaluates sequentially.  Results are consumed in
    #: candidate order either way, so swapping the mapper never changes the
    #: optimisation trajectory -- only the wall-clock time.
    batch_map: Optional[Callable[[Objective, List[np.ndarray]], Iterable[float]]] = None

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def evaluate_batch(self, objective: Objective, candidates: Sequence[np.ndarray]) -> List[float]:
        """Evaluate independent candidates, in order, through :attr:`batch_map`.

        Random/brute-force search evaluate their whole budget through one
        call; CMA-ES evaluates one population per generation.  The Bayesian
        optimizer is inherently sequential (each point conditions the next
        posterior) and does not use this hook.
        """
        candidates = list(candidates)
        mapper = self.batch_map if self.batch_map is not None else map
        return [float(value) for value in mapper(objective, candidates)]

    @staticmethod
    def _validate(bounds: Bounds, budget: int) -> np.ndarray:
        if budget < 1:
            raise CalibrationError("optimisation budget must be >= 1")
        array = np.asarray(bounds, dtype=float)
        if array.ndim != 2 or array.shape[1] != 2:
            raise CalibrationError("bounds must be a sequence of (low, high) pairs")
        if np.any(array[:, 0] >= array[:, 1]):
            raise CalibrationError("each bound must satisfy low < high")
        return array

    @abc.abstractmethod
    def minimize(self, objective: Objective, bounds: Bounds, budget: int) -> OptimizationResult:
        """Minimise ``objective`` over ``bounds`` using at most ``budget`` evaluations."""

    def _finalize(
        self, history: List[Tuple[np.ndarray, float]]
    ) -> OptimizationResult:
        if not history:
            raise CalibrationError("optimizer made no evaluations")
        best_x, best_value = min(history, key=lambda pair: pair[1])
        return OptimizationResult(
            best_x=np.asarray(best_x, dtype=float),
            best_value=float(best_value),
            evaluations=len(history),
            history=history,
            optimizer=self.name,
        )


_OPTIMIZERS: Dict[str, Type[Optimizer]] = {}


def register_optimizer(name: str):
    """Class decorator registering an optimizer under ``name``."""

    def decorator(cls: Type[Optimizer]) -> Type[Optimizer]:
        cls.name = name
        _OPTIMIZERS[name] = cls
        return cls

    return decorator


def get_optimizer(name: str, seed: int = 0, batch_map=None, **kwargs) -> Optimizer:
    """Instantiate a registered optimizer by name.

    Known names: ``"brute_force"``, ``"random"``, ``"bayesian"``, ``"cmaes"``.
    ``batch_map`` installs a parallel candidate evaluator (see
    :attr:`Optimizer.batch_map`) without every optimizer having to thread it
    through its constructor.
    """
    try:
        cls = _OPTIMIZERS[name]
    except KeyError:
        raise CalibrationError(
            f"unknown optimizer {name!r}; available: {sorted(_OPTIMIZERS)}"
        ) from None
    optimizer = cls(seed=seed, **kwargs)
    if batch_map is not None:
        optimizer.batch_map = batch_map
    return optimizer
