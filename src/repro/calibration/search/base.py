"""Common optimizer interface and result container."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple, Type

import numpy as np

from repro.utils.errors import CalibrationError

__all__ = ["OptimizationResult", "Optimizer", "register_optimizer", "get_optimizer"]

Objective = Callable[[np.ndarray], float]
Bounds = Sequence[Tuple[float, float]]


@dataclass
class OptimizationResult:
    """Outcome of one optimisation run."""

    best_x: np.ndarray
    best_value: float
    evaluations: int
    #: Every evaluated (x, value) pair, in evaluation order.
    history: List[Tuple[np.ndarray, float]] = field(default_factory=list)
    optimizer: str = ""

    @property
    def trajectory(self) -> List[float]:
        """Best-so-far objective value after each evaluation."""
        best = float("inf")
        values = []
        for _x, value in self.history:
            best = min(best, value)
            values.append(best)
        return values


class Optimizer(abc.ABC):
    """Base class of the calibration optimizers.

    Parameters
    ----------
    seed:
        Seed of the optimizer's internal randomness (ignored by the
        deterministic brute-force search).
    """

    name = "base"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    @staticmethod
    def _validate(bounds: Bounds, budget: int) -> np.ndarray:
        if budget < 1:
            raise CalibrationError("optimisation budget must be >= 1")
        array = np.asarray(bounds, dtype=float)
        if array.ndim != 2 or array.shape[1] != 2:
            raise CalibrationError("bounds must be a sequence of (low, high) pairs")
        if np.any(array[:, 0] >= array[:, 1]):
            raise CalibrationError("each bound must satisfy low < high")
        return array

    @abc.abstractmethod
    def minimize(self, objective: Objective, bounds: Bounds, budget: int) -> OptimizationResult:
        """Minimise ``objective`` over ``bounds`` using at most ``budget`` evaluations."""

    def _finalize(
        self, history: List[Tuple[np.ndarray, float]]
    ) -> OptimizationResult:
        if not history:
            raise CalibrationError("optimizer made no evaluations")
        best_x, best_value = min(history, key=lambda pair: pair[1])
        return OptimizationResult(
            best_x=np.asarray(best_x, dtype=float),
            best_value=float(best_value),
            evaluations=len(history),
            history=history,
            optimizer=self.name,
        )


_OPTIMIZERS: Dict[str, Type[Optimizer]] = {}


def register_optimizer(name: str):
    """Class decorator registering an optimizer under ``name``."""

    def decorator(cls: Type[Optimizer]) -> Type[Optimizer]:
        cls.name = name
        _OPTIMIZERS[name] = cls
        return cls

    return decorator


def get_optimizer(name: str, seed: int = 0, **kwargs) -> Optimizer:
    """Instantiate a registered optimizer by name.

    Known names: ``"brute_force"``, ``"random"``, ``"bayesian"``, ``"cmaes"``.
    """
    try:
        cls = _OPTIMIZERS[name]
    except KeyError:
        raise CalibrationError(
            f"unknown optimizer {name!r}; available: {sorted(_OPTIMIZERS)}"
        ) from None
    return cls(seed=seed, **kwargs)
