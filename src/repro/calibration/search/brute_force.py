"""Brute-force (grid) search.

Theoretically optimal given an infinite budget but computationally infeasible
across 150 sites, as the paper notes; included both as the exhaustive
baseline of the optimizer-comparison experiment and for low-dimensional
sanity checks in the tests.
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

import numpy as np

from repro.calibration.search.base import Optimizer, OptimizationResult, register_optimizer

__all__ = ["BruteForceOptimizer"]


@register_optimizer("brute_force")
class BruteForceOptimizer(Optimizer):
    """Evaluate a regular grid over the search box.

    The grid resolution per dimension is chosen as the largest ``n`` with
    ``n ** dims <= budget``, so the optimizer always respects the evaluation
    budget (with at least two points per dimension).
    """

    def minimize(self, objective, bounds, budget: int) -> OptimizationResult:
        box = self._validate(bounds, budget)
        dims = box.shape[0]
        points_per_dim = max(2, int(np.floor(budget ** (1.0 / dims))))
        # Shrink until the grid fits the budget (can only trigger for dims > 1).
        while points_per_dim > 2 and points_per_dim**dims > budget:
            points_per_dim -= 1
        axes = [np.linspace(low, high, points_per_dim) for low, high in box]
        # Grid points are independent; evaluate them as one (parallelisable)
        # batch, truncated to the budget.
        candidates: List[np.ndarray] = [
            np.asarray(values, dtype=float)
            for values in itertools.islice(itertools.product(*axes), budget)
        ]
        evaluated = self.evaluate_batch(objective, candidates)
        history: List[Tuple[np.ndarray, float]] = list(zip(candidates, evaluated))
        return self._finalize(history)
