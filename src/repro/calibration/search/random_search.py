"""Random (uniform) search.

The surprisingly strong baseline: within the per-site evaluation budget the
paper allows, random search achieved the lowest average calibration error
across the 50 studied sites, which the authors attribute to the shape of the
parameter optimisation landscape.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.calibration.search.base import Optimizer, OptimizationResult, register_optimizer

__all__ = ["RandomSearchOptimizer"]


@register_optimizer("random")
class RandomSearchOptimizer(Optimizer):
    """Uniform sampling of the search box."""

    def minimize(self, objective, bounds, budget: int) -> OptimizationResult:
        box = self._validate(bounds, budget)
        rng = np.random.default_rng(self.seed)
        history: List[Tuple[np.ndarray, float]] = []
        for _ in range(budget):
            x = rng.uniform(box[:, 0], box[:, 1])
            history.append((x, float(objective(x))))
        return self._finalize(history)
