"""Random (uniform) search.

The surprisingly strong baseline: within the per-site evaluation budget the
paper allows, random search achieved the lowest average calibration error
across the 50 studied sites, which the authors attribute to the shape of the
parameter optimisation landscape.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.calibration.search.base import Optimizer, OptimizationResult, register_optimizer
from repro.utils.rng import spawn_rng

__all__ = ["RandomSearchOptimizer"]


@register_optimizer("random")
class RandomSearchOptimizer(Optimizer):
    """Uniform sampling of the search box."""

    def minimize(self, objective, bounds, budget: int) -> OptimizationResult:
        box = self._validate(bounds, budget)
        rng = spawn_rng(self.seed, "calibration-random-search")
        # Every trial is independent, so the whole budget is drawn up front
        # and evaluated as one batch (parallel when a batch_map is installed).
        candidates = [rng.uniform(box[:, 0], box[:, 1]) for _ in range(budget)]
        values = self.evaluate_batch(objective, candidates)
        history: List[Tuple[np.ndarray, float]] = list(zip(candidates, values))
        return self._finalize(history)
