"""Site-specific calibration of the simulator against historical job records.

The calibration methodology (paper Figure 1c, Section 4.2):

1. historical jobs (with ground-truth walltime and production site) are fed
   into the simulator, replaying the production assignment;
2. the discrepancy between simulated and recorded execution times is
   measured as a relative MAE, separately for single-core and multi-core
   jobs;
3. the dominant configuration parameter -- each site's per-core processing
   speed -- is tuned by a black-box optimizer to minimise that error;
4. results are aggregated across sites with a geometric mean.

:class:`SiteCalibrator` does steps 1-3 for one site;
:class:`GridCalibrator` runs it over every site and produces the
:class:`CalibrationReport` behind the Figure 3 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.calibration.objective import (
    geometric_mean,
    relative_mae,
    walltime_error_by_category,
)
from repro.calibration.search import Optimizer, get_optimizer
from repro.config.execution import ExecutionConfig, MonitoringConfig
from repro.config.infrastructure import InfrastructureConfig, SiteConfig
from repro.config.topology import TopologyConfig
from repro.core.simulator import Simulator
from repro.plugins.bundled import FollowTracePolicy
from repro.utils.errors import CalibrationError
from repro.workload.job import Job, JobState

__all__ = [
    "SiteCalibrationResult",
    "CalibrationReport",
    "SiteCalibrator",
    "GridCalibrator",
]


@dataclass
class SiteCalibrationResult:
    """Outcome of calibrating one site."""

    site: str
    nominal_speed: float
    calibrated_speed: float
    error_before: Dict[str, float]
    error_after: Dict[str, float]
    evaluations: int
    optimizer: str

    @property
    def improvement(self) -> float:
        """Absolute reduction of the overall relative MAE."""
        return self.error_before["overall"] - self.error_after["overall"]

    def to_row(self) -> dict:
        """Flatten for reporting/CSV."""
        return {
            "site": self.site,
            "nominal_speed": self.nominal_speed,
            "calibrated_speed": self.calibrated_speed,
            "error_before_overall": self.error_before["overall"],
            "error_after_overall": self.error_after["overall"],
            "error_before_single": self.error_before["single_core"],
            "error_after_single": self.error_after["single_core"],
            "error_before_multi": self.error_before["multi_core"],
            "error_after_multi": self.error_after["multi_core"],
            "evaluations": self.evaluations,
            "optimizer": self.optimizer,
        }


@dataclass
class CalibrationReport:
    """Aggregate of per-site calibration results (the Figure 3 content)."""

    sites: List[SiteCalibrationResult] = field(default_factory=list)

    def calibrated_speeds(self) -> Dict[str, float]:
        """Mapping site name -> calibrated per-core speed."""
        return {result.site: result.calibrated_speed for result in self.sites}

    def _collect(self, which: str, category: str) -> List[float]:
        values = []
        for result in self.sites:
            errors = result.error_before if which == "before" else result.error_after
            value = errors[category]
            if np.isfinite(value):
                values.append(value)
        return values

    def geometric_mean_error(self, which: str = "after", category: str = "overall") -> float:
        """Geometric-mean relative MAE across sites (``which`` in before/after)."""
        values = self._collect(which, category)
        if not values:
            return float("nan")
        return geometric_mean(values)

    def summary(self) -> dict:
        """Headline numbers: geometric-mean error before/after, per category."""
        return {
            "sites": len(self.sites),
            "geomean_before_overall": self.geometric_mean_error("before", "overall"),
            "geomean_after_overall": self.geometric_mean_error("after", "overall"),
            "geomean_before_single": self.geometric_mean_error("before", "single_core"),
            "geomean_after_single": self.geometric_mean_error("after", "single_core"),
            "geomean_before_multi": self.geometric_mean_error("before", "multi_core"),
            "geomean_after_multi": self.geometric_mean_error("after", "multi_core"),
        }


class SiteCalibrator:
    """Calibrate one site's per-core speed against its historical jobs.

    Parameters
    ----------
    site:
        The site's (nominal) configuration.
    jobs:
        Historical jobs of this site; each must carry ``true_walltime``.
    optimizer:
        An :class:`Optimizer` instance or the name of one
        (``"random"``, ``"bayesian"``, ``"cmaes"``, ``"brute_force"``).
    budget:
        Number of candidate evaluations allowed.
    speed_bounds:
        Multiplicative search range around the nominal speed, e.g. the
        default ``(0.2, 3.0)`` searches 0.2x..3x nominal.
    mode:
        ``"simulate"`` replays the jobs through the full simulator for every
        candidate (slow, faithful); ``"analytic"`` evaluates the closed-form
        walltime ``work / (speed * cores) + overhead`` (fast, exact for
        uncontended sites).  Both are exposed because the paper's
        methodology is the full replay while large sweeps benefit from the
        analytic shortcut.
    seed:
        Seed forwarded to stochastic optimizers.
    """

    def __init__(
        self,
        site: SiteConfig,
        jobs: Sequence[Job],
        optimizer: "Optimizer | str" = "random",
        budget: int = 30,
        speed_bounds: Tuple[float, float] = (0.2, 3.0),
        mode: str = "analytic",
        seed: int = 0,
    ) -> None:
        jobs = [job for job in jobs if job.true_walltime and job.true_walltime > 0]
        if not jobs:
            raise CalibrationError(f"site {site.name!r}: no jobs with ground-truth walltime")
        if mode not in ("analytic", "simulate"):
            raise CalibrationError(f"unknown calibration mode {mode!r}")
        if speed_bounds[0] <= 0 or speed_bounds[0] >= speed_bounds[1]:
            raise CalibrationError("speed_bounds must satisfy 0 < low < high")
        self.site = site
        self.jobs = list(jobs)
        self.budget = int(budget)
        self.mode = mode
        self.seed = seed
        self.speed_bounds = speed_bounds
        if isinstance(optimizer, str):
            self.optimizer = get_optimizer(optimizer, seed=seed)
        else:
            self.optimizer = optimizer

    # -- candidate evaluation -------------------------------------------------------
    def simulated_walltimes(self, core_speed: float) -> Dict[int, float]:
        """Simulated walltime of every job under a candidate per-core speed."""
        if core_speed <= 0:
            raise CalibrationError("core_speed must be positive")
        if self.mode == "analytic":
            return {
                int(job.job_id): job.work / (core_speed * job.cores)
                + self.site.walltime_overhead
                for job in self.jobs
            }
        return self._simulate(core_speed)

    def _simulate(self, core_speed: float) -> Dict[int, float]:
        site = self.site.with_core_speed(core_speed)
        infrastructure = InfrastructureConfig(sites=[site])
        execution = ExecutionConfig(
            plugin="follow_trace",
            monitoring=MonitoringConfig(enable_events=False, snapshot_interval=0.0),
        )
        simulator = Simulator(
            infrastructure,
            TopologyConfig(),
            execution,
            policy=FollowTracePolicy(),
        )
        result = simulator.run([job.copy_for_replay() for job in self.jobs])
        walltimes: Dict[int, float] = {}
        for job in result.jobs:
            if job.state is JobState.FINISHED and job.walltime is not None:
                walltimes[int(job.job_id)] = job.walltime
        return walltimes

    def error_for_speed(self, core_speed: float) -> Dict[str, float]:
        """Per-category relative MAE for one candidate speed."""
        walltimes = self.simulated_walltimes(core_speed)
        return walltime_error_by_category(self.jobs, walltimes)

    def _objective(self, x: np.ndarray) -> float:
        errors = self.error_for_speed(float(x[0]))
        value = errors["overall"]
        return float(value) if np.isfinite(value) else 1e6

    # -- calibration -----------------------------------------------------------------
    def calibrate(self) -> SiteCalibrationResult:
        """Run the optimizer and return the calibration outcome for this site."""
        nominal = self.site.core_speed
        bounds = [(nominal * self.speed_bounds[0], nominal * self.speed_bounds[1])]
        before = self.error_for_speed(nominal)
        result = self.optimizer.minimize(self._objective, bounds, self.budget)
        calibrated_speed = float(result.best_x[0])
        after = self.error_for_speed(calibrated_speed)
        # Never return a calibration worse than the nominal configuration.
        if after["overall"] > before["overall"]:
            calibrated_speed = nominal
            after = before
        return SiteCalibrationResult(
            site=self.site.name,
            nominal_speed=nominal,
            calibrated_speed=calibrated_speed,
            error_before=before,
            error_after=after,
            evaluations=result.evaluations,
            optimizer=self.optimizer.name,
        )


class GridCalibrator:
    """Calibrate every site of an infrastructure independently.

    Parameters
    ----------
    infrastructure:
        The nominal site configurations.
    jobs:
        Historical jobs of the whole grid; each job's ``target_site``
        attributes it to the site it ran at in production.
    optimizer:
        Optimizer name applied per site.
    budget:
        Evaluation budget per site.
    mode / speed_bounds / seed:
        Forwarded to every :class:`SiteCalibrator`.
    min_jobs_per_site:
        Sites with fewer ground-truth jobs than this are skipped (they keep
        their nominal speed), mirroring how sparsely-covered sites cannot be
        calibrated reliably.
    n_workers:
        Process count for per-site calibration.  Sites are independent
        optimisation problems, so they fan out over a process pool; ``1``
        (the default) keeps the sequential path.  Each site's result is
        deterministic given its seed, so every worker count returns the
        identical report.
    """

    def __init__(
        self,
        infrastructure: InfrastructureConfig,
        jobs: Iterable[Job],
        optimizer: str = "random",
        budget: int = 30,
        mode: str = "analytic",
        speed_bounds: Tuple[float, float] = (0.2, 3.0),
        seed: int = 0,
        min_jobs_per_site: int = 5,
        n_workers: int = 1,
    ) -> None:
        self.infrastructure = infrastructure
        self.jobs_by_site: Dict[str, List[Job]] = {}
        for job in jobs:
            if job.target_site is not None:
                self.jobs_by_site.setdefault(job.target_site, []).append(job)
        self.optimizer = optimizer
        self.budget = budget
        self.mode = mode
        self.speed_bounds = speed_bounds
        self.seed = seed
        self.min_jobs_per_site = min_jobs_per_site
        self.n_workers = int(n_workers)

    def calibrate(self, n_workers: Optional[int] = None) -> CalibrationReport:
        """Calibrate every sufficiently-covered site and return the report.

        ``n_workers`` overrides the constructor's setting for this call;
        anything above 1 fans the independent per-site optimisations across
        a process pool while preserving site order and per-site seeds, so
        the report is identical to the sequential one.
        """
        n_workers = self.n_workers if n_workers is None else int(n_workers)
        tasks = []
        for index, site in enumerate(self.infrastructure.sites):
            site_jobs = [
                j
                for j in self.jobs_by_site.get(site.name, [])
                if j.true_walltime and j.true_walltime > 0
            ]
            if len(site_jobs) < self.min_jobs_per_site:
                continue
            tasks.append(
                (
                    site,
                    site_jobs,
                    self.optimizer,
                    self.budget,
                    self.speed_bounds,
                    self.mode,
                    self.seed + index,
                )
            )
        if not tasks:
            raise CalibrationError("no site had enough ground-truth jobs to calibrate")
        # Imported lazily: repro.experiments pulls in the analysis layer,
        # which imports this package's objective module.
        from repro.experiments.runner import parallel_map

        results = parallel_map(_calibrate_site_task, tasks, n_workers=n_workers)
        return CalibrationReport(sites=results)

    def calibrated_infrastructure(self, report: CalibrationReport) -> InfrastructureConfig:
        """Return a copy of the infrastructure with calibrated speeds applied."""
        return self.infrastructure.with_core_speeds(report.calibrated_speeds())


def _calibrate_site_task(task) -> SiteCalibrationResult:
    """Picklable per-site calibration job dispatched by :meth:`GridCalibrator.calibrate`."""
    site, site_jobs, optimizer, budget, speed_bounds, mode, seed = task
    calibrator = SiteCalibrator(
        site,
        site_jobs,
        optimizer=optimizer,
        budget=budget,
        speed_bounds=speed_bounds,
        mode=mode,
        seed=seed,
    )
    return calibrator.calibrate()
