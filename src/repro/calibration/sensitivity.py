"""Parameter sensitivity analysis.

The paper performs a comprehensive sensitivity analysis over grid
configuration parameters -- CPU core counts, processing speeds, memory
capacities and intra-site network bandwidths -- and finds that per-core
processing speed dominates job-walltime accuracy, which is why it becomes the
primary calibration parameter.

:class:`SensitivityAnalysis` reproduces that study with a one-at-a-time
design: each parameter is perturbed by a set of multiplicative factors around
its nominal value while the others stay fixed, the walltime error against the
ground-truth trace is re-evaluated, and the *sensitivity index* of a
parameter is the spread (max - min) of the error across its perturbations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.calibration.objective import walltime_error_by_category
from repro.config.execution import ExecutionConfig, MonitoringConfig
from repro.config.infrastructure import InfrastructureConfig, SiteConfig
from repro.config.topology import TopologyConfig
from repro.core.simulator import Simulator
from repro.plugins.bundled import FollowTracePolicy
from repro.utils.errors import CalibrationError
from repro.workload.job import Job, JobState

__all__ = ["SensitivityResult", "SensitivityAnalysis"]

#: Parameters the analysis can perturb, and how they map onto SiteConfig.
_PARAMETERS = ("core_speed", "cores", "ram_per_host", "local_bandwidth")


@dataclass
class SensitivityResult:
    """Outcome of the sensitivity study for one parameter."""

    parameter: str
    factors: List[float]
    errors: List[float]

    @property
    def sensitivity_index(self) -> float:
        """Spread of the walltime error across the perturbations."""
        finite = [e for e in self.errors if np.isfinite(e)]
        if not finite:
            return 0.0
        return float(max(finite) - min(finite))

    def to_row(self) -> dict:
        """Flatten for reporting."""
        return {
            "parameter": self.parameter,
            "sensitivity_index": self.sensitivity_index,
            "min_error": float(np.nanmin(self.errors)) if self.errors else float("nan"),
            "max_error": float(np.nanmax(self.errors)) if self.errors else float("nan"),
        }


class SensitivityAnalysis:
    """One-at-a-time sensitivity of walltime accuracy to site parameters.

    Parameters
    ----------
    site:
        Nominal configuration of the site under study.
    jobs:
        Ground-truth jobs of that site.
    factors:
        Multiplicative perturbations applied to each parameter.
    mode:
        ``"simulate"`` replays jobs through the full simulator for every
        perturbation; ``"analytic"`` uses the closed-form walltime (only the
        parameters that enter it -- speed and cores via contention -- then
        show any effect, which is itself an informative result).
    """

    def __init__(
        self,
        site: SiteConfig,
        jobs: Sequence[Job],
        factors: Sequence[float] = (0.5, 0.75, 1.0, 1.5, 2.0),
        mode: str = "simulate",
    ) -> None:
        jobs = [j for j in jobs if j.true_walltime and j.true_walltime > 0]
        if not jobs:
            raise CalibrationError("sensitivity analysis needs jobs with ground truth")
        if mode not in ("simulate", "analytic"):
            raise CalibrationError(f"unknown sensitivity mode {mode!r}")
        if any(f <= 0 for f in factors):
            raise CalibrationError("perturbation factors must be positive")
        self.site = site
        self.jobs = list(jobs)
        self.factors = list(factors)
        self.mode = mode

    # -- evaluation ------------------------------------------------------------
    def _perturbed_site(self, parameter: str, factor: float) -> SiteConfig:
        if parameter == "core_speed":
            return self.site.with_core_speed(self.site.core_speed * factor)
        if parameter == "cores":
            cores = max(1, int(round(self.site.cores * factor)))
            hosts = min(self.site.hosts, cores)
            return SiteConfig(
                name=self.site.name,
                cores=cores,
                core_speed=self.site.core_speed,
                hosts=hosts,
                ram_per_host=self.site.ram_per_host,
                local_bandwidth=self.site.local_bandwidth,
                local_latency=self.site.local_latency,
                walltime_overhead=self.site.walltime_overhead,
                properties=dict(self.site.properties),
            )
        if parameter == "ram_per_host":
            return SiteConfig(
                name=self.site.name,
                cores=self.site.cores,
                core_speed=self.site.core_speed,
                hosts=self.site.hosts,
                ram_per_host=self.site.ram_per_host * factor,
                local_bandwidth=self.site.local_bandwidth,
                local_latency=self.site.local_latency,
                walltime_overhead=self.site.walltime_overhead,
                properties=dict(self.site.properties),
            )
        if parameter == "local_bandwidth":
            return SiteConfig(
                name=self.site.name,
                cores=self.site.cores,
                core_speed=self.site.core_speed,
                hosts=self.site.hosts,
                ram_per_host=self.site.ram_per_host,
                local_bandwidth=self.site.local_bandwidth * factor,
                local_latency=self.site.local_latency,
                walltime_overhead=self.site.walltime_overhead,
                properties=dict(self.site.properties),
            )
        raise CalibrationError(f"unknown parameter {parameter!r}")

    def _error_for_site(self, site: SiteConfig) -> float:
        if self.mode == "analytic":
            walltimes = {
                int(j.job_id): j.work / (site.core_speed * j.cores) + site.walltime_overhead
                for j in self.jobs
            }
            return walltime_error_by_category(self.jobs, walltimes)["overall"]
        infrastructure = InfrastructureConfig(sites=[site])
        execution = ExecutionConfig(
            plugin="follow_trace",
            monitoring=MonitoringConfig(enable_events=False, snapshot_interval=0.0),
        )
        simulator = Simulator(
            infrastructure, TopologyConfig(), execution, policy=FollowTracePolicy()
        )
        result = simulator.run([j.copy_for_replay() for j in self.jobs])
        walltimes = {
            int(j.job_id): j.walltime
            for j in result.jobs
            if j.state is JobState.FINISHED and j.walltime is not None
        }
        return walltime_error_by_category(self.jobs, walltimes)["overall"]

    # -- public API ----------------------------------------------------------------
    def analyze(self, parameters: Optional[Iterable[str]] = None) -> List[SensitivityResult]:
        """Run the study and return one :class:`SensitivityResult` per parameter."""
        parameters = list(parameters or _PARAMETERS)
        unknown = set(parameters) - set(_PARAMETERS)
        if unknown:
            raise CalibrationError(f"unknown parameters {sorted(unknown)}")
        results = []
        for parameter in parameters:
            errors = [
                self._error_for_site(self._perturbed_site(parameter, factor))
                for factor in self.factors
            ]
            results.append(
                SensitivityResult(parameter=parameter, factors=list(self.factors), errors=errors)
            )
        return results

    @staticmethod
    def dominant_parameter(results: Sequence[SensitivityResult]) -> str:
        """Name of the parameter with the largest sensitivity index."""
        if not results:
            raise CalibrationError("no sensitivity results")
        return max(results, key=lambda r: r.sensitivity_index).parameter
