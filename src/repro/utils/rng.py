"""Seeded random-number management.

Reproducibility is a core requirement of the calibration and scaling
experiments: two runs of the simulator with identical configuration and seed
must produce bit-identical event streams.  Every stochastic component in the
library therefore draws from a :class:`RandomSource` that is explicitly
seeded, and derives child generators for independent subsystems (workload
generation, scheduling tie-breaks, calibration search) through stable,
name-keyed spawning.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Optional, Sequence

import numpy as np

__all__ = [
    "RandomSource",
    "RngTree",
    "spawn_rng",
    "derive_seed",
    "generator_state",
    "restore_generator_state",
]


def _hash_name(name: str) -> int:
    """Derive a stable 63-bit integer from a string label."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


def derive_seed(seed: int, *parts) -> int:
    """Derive a stable 63-bit child seed from ``seed`` and a path of labels.

    The experiment runner hands every simulation run its own seed derived
    from the sweep's root seed plus the run's identity (scenario name,
    replicate index, subsystem label).  Hashing the whole path keeps the
    derivation order-free across processes: the same ``(seed, *parts)``
    always yields the same child seed, no matter which worker computes it
    or in which order the runs are dispatched.
    """
    label = "\x1f".join(str(part) for part in parts)
    return (int(seed) * 1_000_003 + _hash_name(label)) % (2**63 - 1)


def generator_state(generator: np.random.Generator) -> dict:
    """Capture a :class:`numpy.random.Generator`'s bit-generator state as a dict.

    The returned mapping is plain Python data (picklable, JSON-friendly for
    PCG64) and can be handed back to :func:`restore_generator_state` to
    resume the stream exactly where it was -- the building block checkpoints
    use to freeze every live random stream.
    """
    return dict(generator.bit_generator.state)


def restore_generator_state(generator: np.random.Generator, state: dict) -> None:
    """Re-seat a :class:`numpy.random.Generator` onto a captured state dict.

    The state must come from :func:`generator_state` (or numpy's own
    ``bit_generator.state``) for the same bit-generator type; numpy validates
    the payload and raises on a mismatch.
    """
    generator.bit_generator.state = dict(state)


def spawn_rng(seed: Optional[int], name: str) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` derived from ``seed`` and ``name``.

    The same ``(seed, name)`` pair always yields the same generator, and two
    different names yield statistically independent streams.  ``seed=None``
    produces a non-deterministic generator (fresh OS entropy), which is only
    appropriate for exploratory use.
    """
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(np.random.SeedSequence([int(seed), _hash_name(name)]))


class RandomSource:
    """A named tree of reproducible random generators.

    A :class:`RandomSource` wraps one root seed and hands out independent
    child generators keyed by a label.  Asking twice for the same label
    returns the *same* generator object, so all consumers of e.g. the
    ``"workload"`` stream share one sequence, exactly as a single-seeded
    simulator would.

    Parameters
    ----------
    seed:
        Root seed.  ``None`` draws fresh entropy (non-reproducible).

    Examples
    --------
    >>> src = RandomSource(42)
    >>> a = src.generator("workload")
    >>> b = src.generator("workload")
    >>> a is b
    True
    """

    def __init__(self, seed: Optional[int] = 0) -> None:
        self.seed = seed
        self._children: dict[str, np.random.Generator] = {}

    def generator(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the child generator for ``name``."""
        if name not in self._children:
            self._children[name] = spawn_rng(self.seed, name)
        return self._children[name]

    def child(self, name: str) -> "RandomSource":
        """Return a new :class:`RandomSource` whose root is derived from ``name``.

        Useful to hand a whole subsystem its own namespace of streams without
        risking label collisions with other subsystems.
        """
        if self.seed is None:
            return RandomSource(None)
        return RandomSource((int(self.seed) * 1_000_003 + _hash_name(name)) % (2**63 - 1))

    # -- convenience draws -------------------------------------------------
    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """Draw one uniform sample from the stream ``name``."""
        return float(self.generator(name).uniform(low, high))

    def integers(self, name: str, low: int, high: int) -> int:
        """Draw one integer in ``[low, high)`` from the stream ``name``."""
        return int(self.generator(name).integers(low, high))

    def choice(self, name: str, options: Sequence, p: Optional[Sequence[float]] = None):
        """Choose one element of ``options`` from the stream ``name``."""
        idx = self.generator(name).choice(len(options), p=p)
        return options[int(idx)]

    def shuffled(self, name: str, items: Sequence) -> list:
        """Return a shuffled copy of ``items`` using the stream ``name``."""
        items = list(items)
        self.generator(name).shuffle(items)
        return items

    def exponential(self, name: str, mean: float) -> float:
        """Draw one exponential sample with the given mean."""
        return float(self.generator(name).exponential(mean))

    def lognormal(self, name: str, mean: float, sigma: float) -> float:
        """Draw one lognormal sample (parameters of the underlying normal)."""
        return float(self.generator(name).lognormal(mean, sigma))

    def stream(self, name: str, n: int) -> Iterator[float]:
        """Yield ``n`` uniform samples from the stream ``name``."""
        gen = self.generator(name)
        for _ in range(n):
            yield float(gen.uniform())

    # -- checkpoint support -------------------------------------------------
    def snapshot(self) -> dict:
        """Capture the root seed and every child generator's bit-generator state.

        Part of the :class:`repro.state.Snapshottable` protocol: the
        returned dict freezes the whole tree -- which streams exist and
        exactly where each one stands -- so a checkpoint can resume every
        consumer mid-sequence instead of restarting the streams from their
        seeds.
        """
        return {
            "seed": self.seed,
            "children": {
                name: generator_state(gen) for name, gen in sorted(self._children.items())
            },
        }

    def restore(self, state: dict) -> None:
        """Re-seat the tree onto a :meth:`snapshot` payload.

        Child generators named in the payload are (re)created through the
        normal seed-derivation path and then fast-forwarded to the captured
        bit-generator state; children the payload does not name are left
        untouched (they were spawned after the snapshot was taken).
        """
        self.seed = state.get("seed", self.seed)
        for name, child_state in state.get("children", {}).items():
            restore_generator_state(self.generator(name), child_state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(seed={self.seed}, streams={sorted(self._children)})"


#: Checkpoint-era name for the named tree of reproducible generators: the
#: ``repro.state`` layer and its docs call the capture/restore unit the "RNG
#: tree".  Same class, two names -- existing ``RandomSource`` callers and new
#: ``RngTree`` callers share one implementation.
RngTree = RandomSource
