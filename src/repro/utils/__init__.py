"""Shared utilities for the CGSim reproduction.

This package contains small, dependency-free helpers used across the whole
code base:

* :mod:`repro.utils.units` -- parsing and formatting of physical quantities
  (bandwidth, data sizes, CPU speeds, durations) as they appear in the JSON
  configuration files.
* :mod:`repro.utils.rng` -- seeded random-number-generator management so every
  simulation run is exactly reproducible.
* :mod:`repro.utils.logging` -- a tiny structured logger used by the
  simulation core and the monitoring layer.
* :mod:`repro.utils.errors` -- the exception hierarchy shared by all
  subpackages.
"""

from repro.utils.errors import (
    CGSimError,
    ConfigurationError,
    PlatformError,
    SchedulingError,
    SimulationError,
    WorkloadError,
)
from repro.utils.rng import RandomSource, derive_seed, spawn_rng
from repro.utils.units import (
    format_bytes,
    format_duration,
    parse_bandwidth,
    parse_bytes,
    parse_duration,
    parse_frequency,
)

__all__ = [
    "CGSimError",
    "ConfigurationError",
    "PlatformError",
    "SchedulingError",
    "SimulationError",
    "WorkloadError",
    "RandomSource",
    "spawn_rng",
    "derive_seed",
    "format_bytes",
    "format_duration",
    "parse_bandwidth",
    "parse_bytes",
    "parse_duration",
    "parse_frequency",
]
