"""RFC 6901 JSON-pointer helpers shared by validation and schema tooling.

Scenario-pack validation (:mod:`repro.scenarios.schema`), the generated
JSON Schema validator (:mod:`repro.schema`) and the CLI all address fields
inside a pack document with the same syntax -- a JSON pointer such as
``/workload/spec/multicore_fraction`` -- so an error reported by any one of
them can be matched verbatim against the others (and consumed by editors or
CI annotations).  This module is the single implementation of the escaping
and joining rules; it deliberately has no imports from either consumer to
keep the dependency graph acyclic.
"""

from __future__ import annotations

from typing import Iterable, List, Union

__all__ = ["escape_token", "unescape_token", "join_pointer", "split_pointer"]


def escape_token(token: Union[str, int]) -> str:
    """Escape one reference token per RFC 6901 (``~`` -> ``~0``, ``/`` -> ``~1``).

    Integer tokens (array indices) pass through as their decimal form.
    """
    if isinstance(token, int):
        return str(token)
    return token.replace("~", "~0").replace("/", "~1")


def unescape_token(token: str) -> str:
    """Invert :func:`escape_token` (``~1`` -> ``/`` then ``~0`` -> ``~``).

    The replacement order matters: ``~01`` must decode to ``~1`` (a literal
    tilde followed by ``1``), not to ``/``.
    """
    return token.replace("~1", "/").replace("~0", "~")


def join_pointer(parts: Iterable[Union[str, int]]) -> str:
    """Build a JSON pointer from unescaped reference tokens.

    An empty iterable yields ``""`` -- the pointer addressing the whole
    document, per the RFC.  Each part is escaped individually, so tokens
    containing ``/`` or ``~`` round-trip through :func:`split_pointer`.
    """
    return "".join("/" + escape_token(part) for part in parts)


def split_pointer(pointer: str) -> List[str]:
    """Split a JSON pointer into its unescaped reference tokens.

    The empty pointer maps to ``[]``; any other pointer must start with
    ``/``.  Raises :class:`ValueError` for syntactically invalid pointers
    rather than guessing, since pointers here come from our own tooling.
    """
    if pointer == "":
        return []
    if not pointer.startswith("/"):
        raise ValueError(f"invalid JSON pointer (must start with '/'): {pointer!r}")
    return [unescape_token(token) for token in pointer.split("/")[1:]]
