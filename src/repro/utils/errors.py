"""Exception hierarchy for the CGSim reproduction.

Every error raised intentionally by this library derives from
:class:`CGSimError` so callers can catch the whole family with a single
``except`` clause while still being able to discriminate between
configuration, platform, workload, scheduling and runtime simulation
problems.
"""

from __future__ import annotations


class CGSimError(Exception):
    """Base class for every error raised by the CGSim reproduction."""


class ConfigurationError(CGSimError):
    """Raised when one of the three JSON configuration inputs is invalid.

    The input layer (infrastructure, network topology, execution parameters)
    validates eagerly at load time so that simulations never start from a
    half-broken description of the platform.
    """


class PlatformError(CGSimError):
    """Raised for inconsistent platform definitions or illegal platform use.

    Examples: referencing a host that does not exist, asking for a route
    between two zones that are not connected, registering two hosts with the
    same name inside one zone.
    """


class WorkloadError(CGSimError):
    """Raised when a job record or a workload trace is malformed."""


class SchedulingError(CGSimError):
    """Raised by the scheduling layer and by allocation-policy plugins.

    A plugin returning a site that does not exist, or assigning a job that
    requires more cores than any site owns, surfaces as a
    :class:`SchedulingError` rather than silently dropping the job.
    """


class SimulationError(CGSimError):
    """Raised for violations of the discrete-event simulation contract.

    Examples: scheduling an event in the past, running a simulation whose
    environment already finished, or re-triggering an event that was already
    processed.
    """


class SessionError(SimulationError):
    """Raised for invalid use of the stepped session lifecycle.

    Examples: advancing or finalizing a session that was detached by its
    simulator, finalizing twice, or touching a session whose restore from a
    checkpoint blob did not complete.  Subclasses
    :class:`SimulationError` so existing ``except SimulationError`` callers
    keep working.
    """


class CheckpointError(SimulationError):
    """Raised when a checkpoint blob cannot be produced, decoded or replayed.

    Covers malformed/truncated blobs, version mismatches, restoring against
    an incompatible simulator configuration, and replay divergence -- the
    restored run failing the bit-identity verification against the component
    snapshots recorded in the blob.
    """


class MonitoringError(CGSimError):
    """Raised for invalid use of the monitoring/output layer.

    The most common case: asking a :class:`MonitoringCollector` created with
    ``keep_in_memory=False`` for its retained events or snapshots.  Before
    this error existed such readers silently saw empty datasets.
    """


class CalibrationError(CGSimError):
    """Raised when a calibration run cannot be carried out.

    Examples: an empty ground-truth trace, a search space with inverted
    bounds, or an optimizer asked for zero evaluations.
    """
