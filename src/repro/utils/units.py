"""Parsing and formatting of physical quantities used in configuration files.

The CGSim input layer describes platforms with human-friendly strings such as
``"10Gbps"``, ``"2.5GHz"``, ``"64GiB"`` or ``"15min"``.  This module converts
those strings to canonical SI floats (bytes, bytes/second, operations/second,
seconds) and back again for reporting.

All parsers accept either a plain number (already in canonical units) or a
string with an optional unit suffix.  Parsing is case-insensitive for the SI
prefix but distinguishes bits (``b``) from bytes (``B``) in bandwidth and size
strings, matching the convention used by SimGrid platform files.
"""

from __future__ import annotations

import re
from typing import Union

from repro.utils.errors import ConfigurationError

Number = Union[int, float]

#: Decimal SI prefixes (used for bandwidth, frequency and decimal sizes).
_SI_PREFIXES = {
    "": 1.0,
    "k": 1e3,
    "m": 1e6,
    "g": 1e9,
    "t": 1e12,
    "p": 1e15,
}

#: Binary prefixes (used for memory / storage sizes such as ``GiB``).
_BINARY_PREFIXES = {
    "ki": 2**10,
    "mi": 2**20,
    "gi": 2**30,
    "ti": 2**40,
    "pi": 2**50,
}

_DURATION_SUFFIXES = {
    "ns": 1e-9,
    "us": 1e-6,
    "ms": 1e-3,
    "s": 1.0,
    "sec": 1.0,
    "secs": 1.0,
    "second": 1.0,
    "seconds": 1.0,
    "m": 60.0,
    "min": 60.0,
    "mins": 60.0,
    "minute": 60.0,
    "minutes": 60.0,
    "h": 3600.0,
    "hr": 3600.0,
    "hour": 3600.0,
    "hours": 3600.0,
    "d": 86400.0,
    "day": 86400.0,
    "days": 86400.0,
    "w": 604800.0,
    "week": 604800.0,
    "weeks": 604800.0,
}

_NUMBER_RE = re.compile(r"^\s*([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*([a-zA-Z/]*)\s*$")


def _split(value: Union[str, Number], what: str) -> tuple[float, str]:
    """Split ``value`` into a numeric magnitude and a (possibly empty) unit."""
    if isinstance(value, (int, float)):
        return float(value), ""
    match = _NUMBER_RE.match(str(value))
    if not match:
        raise ConfigurationError(f"cannot parse {what} value {value!r}")
    return float(match.group(1)), match.group(2)


def parse_bytes(value: Union[str, Number]) -> float:
    """Parse a data size into bytes.

    Accepts plain numbers (bytes), decimal suffixes (``kB``, ``MB``, ``GB``,
    ``TB``, ``PB``), binary suffixes (``KiB`` .. ``PiB``) and bit suffixes
    (``kb``/``Mb``/... interpreted as bits, divided by 8).

    >>> parse_bytes("1kB")
    1000.0
    >>> parse_bytes("1KiB")
    1024.0
    """
    magnitude, unit = _split(value, "size")
    if not unit:
        return magnitude
    unit_l = unit.lower()
    # A bare "B" is bytes, a bare "b" is bits (the usual networking convention).
    if unit == "B" or unit_l in ("byte", "bytes"):
        return magnitude
    if unit == "b" or unit_l in ("bit", "bits"):
        return magnitude / 8.0
    # Binary prefixes: KiB, MiB ...
    if unit_l.endswith("ib") and unit_l[:-1] in _BINARY_PREFIXES:
        return magnitude * _BINARY_PREFIXES[unit_l[:-1]]
    # Decimal prefixes: the final letter decides bit vs byte.
    prefix, last = unit_l[:-1], unit[-1]
    if prefix in _SI_PREFIXES:
        scale = _SI_PREFIXES[prefix]
        if last == "B":
            return magnitude * scale
        if last == "b":
            return magnitude * scale / 8.0
    raise ConfigurationError(f"unknown size unit {unit!r} in {value!r}")


def parse_bandwidth(value: Union[str, Number]) -> float:
    """Parse a bandwidth into bytes per second.

    Accepts ``bps``/``Bps`` style strings: ``"10Gbps"`` (bits/s) or
    ``"1.25GBps"`` (bytes/s).  A trailing ``/s`` is also accepted
    (``"10GB/s"``).  Plain numbers are already bytes/second.

    >>> parse_bandwidth("8bps")
    1.0
    >>> parse_bandwidth("10Gbps")
    1250000000.0
    """
    magnitude, unit = _split(value, "bandwidth")
    if not unit:
        return magnitude
    unit = unit.replace("/s", "ps") if unit.endswith("/s") else unit
    if not unit.lower().endswith("ps"):
        raise ConfigurationError(f"bandwidth {value!r} must end in 'ps' or '/s'")
    return parse_bytes(f"{magnitude}{unit[:-2]}")


def parse_frequency(value: Union[str, Number]) -> float:
    """Parse a compute speed into operations (flop) per second.

    Accepts ``Hz`` (``"2.5GHz"``), ``flops``/``f`` (``"10Gf"``, ``"1Tflops"``)
    or plain numbers already in operations/second.

    >>> parse_frequency("2.5GHz")
    2500000000.0
    """
    magnitude, unit = _split(value, "frequency")
    if not unit:
        return magnitude
    unit_l = unit.lower()
    for suffix in ("flops", "flop", "hz", "f"):
        if unit_l.endswith(suffix):
            prefix = unit_l[: -len(suffix)]
            if prefix in _SI_PREFIXES:
                return magnitude * _SI_PREFIXES[prefix]
    raise ConfigurationError(f"unknown speed unit {unit!r} in {value!r}")


def parse_duration(value: Union[str, Number]) -> float:
    """Parse a duration into seconds.

    Accepts suffixes from nanoseconds to weeks, e.g. ``"15min"``, ``"2h"``,
    ``"300"`` (seconds), ``"500ms"``.

    >>> parse_duration("2h")
    7200.0
    """
    magnitude, unit = _split(value, "duration")
    if not unit:
        return magnitude
    unit_l = unit.lower()
    if unit_l in _DURATION_SUFFIXES:
        return magnitude * _DURATION_SUFFIXES[unit_l]
    raise ConfigurationError(f"unknown duration unit {unit!r} in {value!r}")


def format_bytes(num_bytes: float) -> str:
    """Format a byte count using decimal SI units, e.g. ``format_bytes(2e9) == '2.00 GB'``."""
    magnitude = float(num_bytes)
    for suffix, scale in (("PB", 1e15), ("TB", 1e12), ("GB", 1e9), ("MB", 1e6), ("kB", 1e3)):
        if abs(magnitude) >= scale:
            return f"{magnitude / scale:.2f} {suffix}"
    return f"{magnitude:.0f} B"


def format_duration(seconds: float) -> str:
    """Format a duration as ``DDd HH:MM:SS`` (days omitted when zero)."""
    seconds = float(seconds)
    sign = "-" if seconds < 0 else ""
    seconds = abs(seconds)
    days, rem = divmod(seconds, 86400)
    hours, rem = divmod(rem, 3600)
    minutes, secs = divmod(rem, 60)
    if days >= 1:
        return f"{sign}{int(days)}d {int(hours):02d}:{int(minutes):02d}:{secs:05.2f}"
    return f"{sign}{int(hours):02d}:{int(minutes):02d}:{secs:05.2f}"
