"""Lightweight structured logging for simulation components.

The simulator emits a *lot* of events; Python's stdlib logging is flexible but
relatively slow when every call formats a message.  :class:`SimLogger` defers
formatting until a record is actually emitted, tags every record with the
current simulation time, and can be silenced wholesale (the default for
benchmark runs, where logging overhead would distort the scaling figures).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, TextIO

__all__ = ["LogRecord", "SimLogger", "NullLogger", "get_logger"]

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


@dataclass
class LogRecord:
    """One structured log record emitted by a simulation component."""

    sim_time: float
    level: str
    component: str
    message: str
    fields: dict = field(default_factory=dict)

    def render(self) -> str:
        """Render the record as a single human-readable line."""
        extra = " ".join(f"{k}={v}" for k, v in self.fields.items())
        prefix = f"[{self.sim_time:14.3f}] {self.level.upper():7s} {self.component}: {self.message}"
        return f"{prefix} {extra}".rstrip()


class SimLogger:
    """Structured logger bound to a simulation clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulation time.  The
        DES environment's ``now`` property is the usual clock.
    level:
        Minimum level emitted (``"debug"``, ``"info"``, ``"warning"``,
        ``"error"``).
    stream:
        Where rendered lines go; ``None`` keeps records in memory only.
    keep_records:
        When true (default) emitted records are retained in :attr:`records`
        so tests and the dashboard can inspect them.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        level: str = "warning",
        stream: Optional[TextIO] = None,
        keep_records: bool = True,
    ) -> None:
        if level not in _LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        self._clock = clock or (lambda: 0.0)
        self.level = level
        self.stream = stream
        self.keep_records = keep_records
        self.records: List[LogRecord] = []

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach (or replace) the simulation clock callable."""
        self._clock = clock

    def _log(self, level: str, component: str, message: str, **fields: Any) -> None:
        if _LEVELS[level] < _LEVELS[self.level]:
            return
        record = LogRecord(self._clock(), level, component, message, fields)
        if self.keep_records:
            self.records.append(record)
        if self.stream is not None:
            print(record.render(), file=self.stream)

    def debug(self, component: str, message: str, **fields: Any) -> None:
        """Emit a debug-level record."""
        self._log("debug", component, message, **fields)

    def info(self, component: str, message: str, **fields: Any) -> None:
        """Emit an info-level record."""
        self._log("info", component, message, **fields)

    def warning(self, component: str, message: str, **fields: Any) -> None:
        """Emit a warning-level record."""
        self._log("warning", component, message, **fields)

    def error(self, component: str, message: str, **fields: Any) -> None:
        """Emit an error-level record."""
        self._log("error", component, message, **fields)

    def clear(self) -> None:
        """Drop all retained records."""
        self.records.clear()


class NullLogger(SimLogger):
    """A logger that drops everything; used by the benchmark harness."""

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0.0, level="error", stream=None, keep_records=False)

    def _log(self, level: str, component: str, message: str, **fields: Any) -> None:  # noqa: D102
        return


def get_logger(verbose: bool = False, stream: Optional[TextIO] = None) -> SimLogger:
    """Create a logger suitable for CLI/example use.

    ``verbose=True`` lowers the threshold to ``info`` and defaults the output
    stream to ``sys.stderr``.
    """
    if verbose:
        return SimLogger(level="info", stream=stream or sys.stderr)
    return SimLogger(level="warning", stream=stream)
