"""ML-ready dataset generation and a surrogate-model baseline.

CGSim "automatically generates an event-level statistics dataset from each
run that can be directly used to train machine learning models" -- the
motivation being ML-assisted simulation, where a trained model acts as a fast
surrogate for performance prediction.

* :mod:`~repro.mldata.dataset` assembles numeric feature matrices from a
  finished simulation (per-event and per-job views) and writes them to CSV.
* :mod:`~repro.mldata.features` defines the feature extraction shared by both
  views.
* :mod:`~repro.mldata.surrogate` provides a ridge-regression surrogate that
  learns job walltime (or queue time) from the per-job features, closing the
  loop the paper motivates.
* :mod:`~repro.mldata.knn` provides a k-nearest-neighbour surrogate as a
  second, non-parametric baseline.
"""

from repro.mldata.dataset import EventDataset, JobDataset, build_event_dataset, build_job_dataset
from repro.mldata.features import event_feature_names, job_feature_names
from repro.mldata.knn import KNNSurrogate
from repro.mldata.surrogate import RidgeSurrogate, SurrogateEvaluation

__all__ = [
    "EventDataset",
    "JobDataset",
    "build_event_dataset",
    "build_job_dataset",
    "event_feature_names",
    "job_feature_names",
    "RidgeSurrogate",
    "KNNSurrogate",
    "SurrogateEvaluation",
]
