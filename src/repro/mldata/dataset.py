"""Assembly of ML-ready datasets from simulation output.

Two views are produced:

* the **event dataset**: one row per monitoring event (Table 1 rows turned
  into a numeric matrix), suitable for sequence models of system dynamics;
* the **job dataset**: one row per finished job, with static job features,
  site context and the simulated walltime / queue time as targets, suitable
  for the surrogate-model use case.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.config.infrastructure import InfrastructureConfig
from repro.core.simulator import SimulationResult
from repro.mldata.features import (
    event_feature_names,
    event_matrix,
    job_feature_names,
    job_features,
)
from repro.utils.errors import CGSimError
from repro.utils.rng import spawn_rng
from repro.workload.job import JobState

__all__ = ["EventDataset", "JobDataset", "build_event_dataset", "build_job_dataset"]

PathLike = Union[str, Path]


@dataclass
class EventDataset:
    """Numeric event-level dataset: features plus the site label per row."""

    features: np.ndarray
    sites: List[str]
    feature_names: List[str]

    def __len__(self) -> int:
        return self.features.shape[0]

    def to_csv(self, path: PathLike) -> Path:
        """Write the dataset (site label + features) to CSV."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["site", *self.feature_names])
            for site, row in zip(self.sites, self.features):
                writer.writerow([site, *row.tolist()])
        return path


@dataclass
class JobDataset:
    """Per-job learning dataset: features ``X`` and targets (walltime, queue time)."""

    X: np.ndarray
    walltime: np.ndarray
    queue_time: np.ndarray
    job_ids: List[int]
    feature_names: List[str]

    def __len__(self) -> int:
        return self.X.shape[0]

    def train_test_split(self, test_fraction: float = 0.25, seed: int = 0):
        """Deterministic random split into (train, test) :class:`JobDataset` pairs."""
        if not 0 < test_fraction < 1:
            raise CGSimError("test_fraction must lie in (0, 1)")
        rng = spawn_rng(seed, "mldata-train-test-split")
        n = len(self)
        order = rng.permutation(n)
        n_test = max(1, int(round(n * test_fraction)))
        test_idx, train_idx = order[:n_test], order[n_test:]

        def subset(indices) -> "JobDataset":
            return JobDataset(
                X=self.X[indices],
                walltime=self.walltime[indices],
                queue_time=self.queue_time[indices],
                job_ids=[self.job_ids[i] for i in indices],
                feature_names=list(self.feature_names),
            )

        return subset(train_idx), subset(test_idx)

    def to_csv(self, path: PathLike) -> Path:
        """Write features + targets to CSV."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["job_id", *self.feature_names, "walltime", "queue_time"])
            for i in range(len(self)):
                writer.writerow(
                    [
                        self.job_ids[i],
                        *self.X[i].tolist(),
                        float(self.walltime[i]),
                        float(self.queue_time[i]),
                    ]
                )
        return path


def build_event_dataset(result: SimulationResult) -> EventDataset:
    """Turn a run's monitoring events into a numeric event-level dataset.

    Reads the collector's columnar buffer directly: one array conversion per
    column instead of a Python feature vector per event.
    """
    buffer = result.collector.events
    if not len(buffer):
        raise CGSimError("the simulation recorded no events (monitoring disabled?)")
    features = event_matrix(buffer)
    sites = list(buffer.sites)
    return EventDataset(features=features, sites=sites, feature_names=event_feature_names())


def build_job_dataset(
    result: SimulationResult,
    infrastructure: Optional[InfrastructureConfig] = None,
) -> JobDataset:
    """Turn a run's finished jobs into a supervised-learning dataset."""
    site_speed: Dict[str, float] = {}
    site_cores: Dict[str, float] = {}
    if infrastructure is not None:
        for site in infrastructure.sites:
            site_speed[site.name] = site.core_speed
            site_cores[site.name] = float(site.cores)
    rows: List[List[float]] = []
    walltimes: List[float] = []
    queue_times: List[float] = []
    job_ids: List[int] = []
    for job in result.jobs:
        if job.state is not JobState.FINISHED or job.walltime is None:
            continue
        site = job.assigned_site or ""
        rows.append(
            job_features(job, site_speed.get(site, 0.0), site_cores.get(site, 0.0))
        )
        walltimes.append(job.walltime)
        queue_times.append(job.queue_time or 0.0)
        job_ids.append(int(job.job_id))
    if not rows:
        raise CGSimError("no finished jobs to build a job dataset from")
    return JobDataset(
        X=np.array(rows, dtype=float),
        walltime=np.array(walltimes, dtype=float),
        queue_time=np.array(queue_times, dtype=float),
        job_ids=job_ids,
        feature_names=job_feature_names(),
    )
