"""Feature definitions shared by the ML dataset builders."""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List

import numpy as np

from repro.monitoring.events import EventRecord
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.monitoring.trace_buffer import TraceBuffer

__all__ = [
    "event_feature_names",
    "job_feature_names",
    "event_features",
    "event_matrix",
    "job_features",
]

_STATE_CODES = {
    "created": 0.0,
    "pending": 1.0,
    "assigned": 2.0,
    "transferring": 3.0,
    "running": 4.0,
    "finished": 5.0,
    "failed": 6.0,
}


def event_feature_names() -> List[str]:
    """Column names of the event-level feature matrix."""
    return [
        "time",
        "job_id",
        "state_code",
        "available_cores",
        "pending_jobs",
        "assigned_jobs",
        "finished_jobs",
        "cores",
    ]


def event_features(event: EventRecord) -> List[float]:
    """Numeric feature vector of one event record."""
    return [
        float(event.time),
        float(event.job_id),
        _STATE_CODES.get(event.state, -1.0),
        float(event.available_cores),
        float(event.pending_jobs),
        float(event.assigned_jobs),
        float(event.finished_jobs),
        float(event.extra.get("cores", 1.0)),
    ]


def event_matrix(buffer: "TraceBuffer") -> np.ndarray:
    """Feature matrix of a whole columnar trace buffer.

    Column-wise construction: each column converts through one C-level
    ``np.asarray`` instead of a Python-level feature list per row, which is
    what makes ML dataset assembly scale with the event count.
    """
    state_codes = _STATE_CODES
    columns = [
        np.asarray(buffer.times, dtype=float),
        np.asarray(buffer.job_ids, dtype=float),
        np.fromiter(
            (state_codes.get(state, -1.0) for state in buffer.states),
            dtype=float,
            count=len(buffer.states),
        ),
        np.asarray(buffer.available_cores, dtype=float),
        np.asarray(buffer.pending_jobs, dtype=float),
        np.asarray(buffer.assigned_jobs, dtype=float),
        np.asarray(buffer.finished_jobs, dtype=float),
        np.asarray(buffer.cores, dtype=float),
    ]
    return np.column_stack(columns)


def job_feature_names() -> List[str]:
    """Column names of the per-job feature matrix (inputs to the surrogate)."""
    return [
        "work",
        "cores",
        "memory",
        "input_files",
        "output_files",
        "input_size",
        "output_size",
        "submission_time",
        "site_core_speed",
        "site_total_cores",
        "log_work",
        "log_input_size",
        "log_output_size",
        "expected_compute_seconds",
    ]


def job_features(job: Job, site_speed: float = 0.0, site_cores: float = 0.0) -> List[float]:
    """Numeric feature vector of one job (static fields + site context).

    Besides the raw PanDA-record fields, the vector carries log-transformed
    sizes (walltimes and file sizes are heavy-tailed, so linear models need
    the log scale) and the physics-informed ``expected_compute_seconds`` =
    ``work / (site_speed * cores)`` -- the uncontended walltime the platform
    model would predict, which is the single most informative input a fast
    surrogate can start from.
    """
    expected_compute = 0.0
    if site_speed > 0 and job.cores > 0:
        expected_compute = job.work / (site_speed * job.cores)
    return [
        float(job.work),
        float(job.cores),
        float(job.memory),
        float(job.input_files),
        float(job.output_files),
        float(job.input_size),
        float(job.output_size),
        float(job.submission_time),
        float(site_speed),
        float(site_cores),
        math.log1p(max(0.0, float(job.work))),
        math.log1p(max(0.0, float(job.input_size))),
        math.log1p(max(0.0, float(job.output_size))),
        float(expected_compute),
    ]
