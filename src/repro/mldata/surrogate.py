"""Ridge-regression surrogate model.

The paper motivates CGSim's dataset generation with ML-assisted simulation:
training fast surrogates for performance prediction.  This module provides a
small but complete baseline -- standardised ridge regression solved in closed
form with numpy -- that learns job walltime (or queue time) from the job
dataset produced by :func:`repro.mldata.dataset.build_job_dataset`, plus the
evaluation metrics needed to judge it (MAE, RMSE, R^2, relative MAE).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.mldata.dataset import JobDataset
from repro.utils.errors import CGSimError

__all__ = ["RidgeSurrogate", "SurrogateEvaluation"]


@dataclass
class SurrogateEvaluation:
    """Prediction-quality metrics of a surrogate on a held-out set."""

    mae: float
    rmse: float
    r2: float
    relative_mae: float
    n_samples: int

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "mae": self.mae,
            "rmse": self.rmse,
            "r2": self.r2,
            "relative_mae": self.relative_mae,
            "n_samples": self.n_samples,
        }


class RidgeSurrogate:
    """Standardised ridge regression (closed form) for job-time prediction.

    Parameters
    ----------
    alpha:
        L2 regularisation strength.
    target:
        ``"walltime"`` (default) or ``"queue_time"``.
    log_target:
        Learn ``log1p(target)`` instead of the raw value -- usually better
        for heavy-tailed walltimes.
    """

    def __init__(self, alpha: float = 1.0, target: str = "walltime", log_target: bool = True) -> None:
        if alpha < 0:
            raise CGSimError("alpha must be >= 0")
        if target not in ("walltime", "queue_time"):
            raise CGSimError(f"unknown target {target!r}")
        self.alpha = float(alpha)
        self.target = target
        self.log_target = log_target
        self._weights: Optional[np.ndarray] = None
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None
        self._y_mean: float = 0.0

    # -- fitting ---------------------------------------------------------------
    def _targets(self, dataset: JobDataset) -> np.ndarray:
        y = dataset.walltime if self.target == "walltime" else dataset.queue_time
        return np.log1p(y) if self.log_target else np.asarray(y, dtype=float)

    def fit(self, dataset: JobDataset) -> "RidgeSurrogate":
        """Fit the ridge weights on ``dataset``; returns ``self``."""
        if len(dataset) < 2:
            raise CGSimError("need at least two samples to fit the surrogate")
        X = np.asarray(dataset.X, dtype=float)
        y = self._targets(dataset)
        self._x_mean = X.mean(axis=0)
        self._x_std = X.std(axis=0)
        self._x_std[self._x_std == 0] = 1.0
        Xs = (X - self._x_mean) / self._x_std
        self._y_mean = float(y.mean())
        yc = y - self._y_mean
        gram = Xs.T @ Xs + self.alpha * np.eye(Xs.shape[1])
        self._weights = np.linalg.solve(gram, Xs.T @ yc)
        return self

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._weights is not None

    # -- prediction -----------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict target values for a feature matrix."""
        if not self.is_fitted:
            raise CGSimError("surrogate is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Xs = (X - self._x_mean) / self._x_std
        y = Xs @ self._weights + self._y_mean
        if self.log_target:
            return np.expm1(np.maximum(y, 0.0))
        return y

    def predict_dataset(self, dataset: JobDataset) -> np.ndarray:
        """Predict for every row of a :class:`JobDataset`."""
        return self.predict(dataset.X)

    # -- evaluation ------------------------------------------------------------------
    def evaluate(self, dataset: JobDataset) -> SurrogateEvaluation:
        """Compute MAE / RMSE / R^2 / relative MAE on a (held-out) dataset."""
        truth = dataset.walltime if self.target == "walltime" else dataset.queue_time
        truth = np.asarray(truth, dtype=float)
        predictions = self.predict_dataset(dataset)
        errors = predictions - truth
        mae = float(np.mean(np.abs(errors)))
        rmse = float(np.sqrt(np.mean(errors**2)))
        variance = float(np.var(truth))
        r2 = 1.0 - float(np.mean(errors**2)) / variance if variance > 0 else 0.0
        positive = truth > 0
        relative = (
            float(np.mean(np.abs(errors[positive]) / truth[positive]))
            if np.any(positive)
            else float("nan")
        )
        return SurrogateEvaluation(
            mae=mae, rmse=rmse, r2=r2, relative_mae=relative, n_samples=len(dataset)
        )
