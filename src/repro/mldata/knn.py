"""k-nearest-neighbour surrogate model.

A second, non-parametric baseline for the ML-assisted-simulation use case the
paper motivates: where the ridge surrogate assumes a (log-)linear relation
between job features and walltime, the kNN surrogate simply answers "how long
did the most similar jobs take?", which is closer to how operators reason
about historical workloads and is often a stronger baseline on heterogeneous
grids.  Implemented with numpy only (standardised features, brute-force
distances, inverse-distance weighting).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mldata.dataset import JobDataset
from repro.mldata.surrogate import SurrogateEvaluation
from repro.utils.errors import CGSimError

__all__ = ["KNNSurrogate"]


class KNNSurrogate:
    """Inverse-distance-weighted k-nearest-neighbour regression.

    Parameters
    ----------
    k:
        Number of neighbours consulted per prediction.
    target:
        ``"walltime"`` (default) or ``"queue_time"``.
    weighted:
        Weight neighbours by inverse distance (True) or average them equally.
    """

    def __init__(self, k: int = 5, target: str = "walltime", weighted: bool = True) -> None:
        if k < 1:
            raise CGSimError("k must be >= 1")
        if target not in ("walltime", "queue_time"):
            raise CGSimError(f"unknown target {target!r}")
        self.k = int(k)
        self.target = target
        self.weighted = bool(weighted)
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    # -- fitting -------------------------------------------------------------
    def fit(self, dataset: JobDataset) -> "KNNSurrogate":
        """Memorise the (standardised) training set; returns ``self``."""
        if len(dataset) < 1:
            raise CGSimError("need at least one sample to fit the kNN surrogate")
        X = np.asarray(dataset.X, dtype=float)
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std == 0] = 1.0
        self._X = (X - self._mean) / self._std
        self._y = np.asarray(
            dataset.walltime if self.target == "walltime" else dataset.queue_time, dtype=float
        )
        return self

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._X is not None

    # -- prediction -----------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict the target for a feature matrix (one row per job)."""
        if not self.is_fitted:
            raise CGSimError("surrogate is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Xs = (X - self._mean) / self._std
        k = min(self.k, self._X.shape[0])
        predictions = np.empty(Xs.shape[0])
        for row_index, row in enumerate(Xs):
            distances = np.sqrt(((self._X - row) ** 2).sum(axis=1))
            neighbour_idx = np.argpartition(distances, k - 1)[:k]
            neighbour_distances = distances[neighbour_idx]
            neighbour_targets = self._y[neighbour_idx]
            if not self.weighted:
                predictions[row_index] = float(neighbour_targets.mean())
                continue
            # Inverse-distance weights; an exact match dominates completely.
            if np.any(neighbour_distances < 1e-12):
                exact = neighbour_targets[neighbour_distances < 1e-12]
                predictions[row_index] = float(exact.mean())
            else:
                weights = 1.0 / neighbour_distances
                predictions[row_index] = float(
                    (weights * neighbour_targets).sum() / weights.sum()
                )
        return predictions

    def predict_dataset(self, dataset: JobDataset) -> np.ndarray:
        """Predict for every row of a :class:`JobDataset`."""
        return self.predict(dataset.X)

    # -- evaluation ------------------------------------------------------------
    def evaluate(self, dataset: JobDataset) -> SurrogateEvaluation:
        """MAE / RMSE / R^2 / relative MAE on a (held-out) dataset."""
        truth = np.asarray(
            dataset.walltime if self.target == "walltime" else dataset.queue_time, dtype=float
        )
        predictions = self.predict_dataset(dataset)
        errors = predictions - truth
        mae = float(np.mean(np.abs(errors)))
        rmse = float(np.sqrt(np.mean(errors**2)))
        variance = float(np.var(truth))
        r2 = 1.0 - float(np.mean(errors**2)) / variance if variance > 0 else 0.0
        positive = truth > 0
        relative = (
            float(np.mean(np.abs(errors[positive]) / truth[positive]))
            if np.any(positive)
            else float("nan")
        )
        return SurrogateEvaluation(
            mae=mae, rmse=rmse, r2=r2, relative_mae=relative, n_samples=len(dataset)
        )
