"""Command-line interface.

``cgsim`` (or ``python -m repro``) exposes the most common workflows without
writing any Python:

* ``cgsim generate-config`` -- write the three JSON input files for a
  synthetic or WLCG-like grid of a given size;
* ``cgsim generate-trace`` -- write a synthetic PanDA-like trace for an
  infrastructure file;
* ``cgsim run`` -- run a simulation from the three config files and a trace,
  print the metrics, and optionally write SQLite/CSV outputs;
* ``cgsim calibrate`` -- run the per-site walltime calibration over a trace
  and print the before/after error table;
* ``cgsim sensitivity`` -- run the one-at-a-time parameter sensitivity study
  for one site against a trace (which parameter dominates walltime accuracy);
* ``cgsim compare-policies`` -- replay one trace under several allocation
  policies and print the operational metrics side by side;
* ``cgsim policies`` -- list the registered allocation policies;
* ``cgsim sweep`` -- fan a grid of independent scenario runs (sites x
  policies x failure rates, with seed replications) across worker processes
  and print the per-scenario aggregate table;
* ``cgsim bench`` -- measure the DES kernel's event throughput on the three
  standard workloads, optionally dumping a cProfile summary (``--profile``);
* ``cgsim scenario {list,show,validate,run}`` -- the declarative front door:
  discover, inspect, validate and execute scenario packs (single YAML/JSON
  files describing whole studies, run in parallel when they sweep);
* ``cgsim lint`` -- run the static determinism & correctness analyzer
  (:mod:`repro.lint`) over source trees and print its findings.

Every subcommand's help string names the artifacts it prints or writes, so
``cgsim <command> --help`` is an accurate contract of what comes out.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro import __version__
from repro.analysis.reporting import format_table, metrics_table, site_table, transition_table
from repro.atlas.wlcg import wlcg_grid
from repro.calibration import GridCalibrator
from repro.calibration.sensitivity import SensitivityAnalysis
from repro.config import (
    ExecutionConfig,
    load_execution,
    load_infrastructure,
    load_topology,
    save_execution,
    save_infrastructure,
    save_topology,
)
from repro.config.generators import generate_grid
from repro.core.simulator import Simulator
from repro.monitoring.dashboard import Dashboard
from repro.plugins import available_policies
from repro.utils.errors import CGSimError
from repro.workload.generator import SyntheticWorkloadGenerator
from repro.workload.trace import load_trace, save_trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``cgsim`` command."""
    parser = argparse.ArgumentParser(
        prog="cgsim",
        description="CGSim reproduction: simulate large-scale distributed computing grids.",
    )
    parser.add_argument("--version", action="version", version=f"cgsim-repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate-config",
        help="write infrastructure.json, topology.json and execution.json to --output-dir",
    )
    gen.add_argument("--sites", type=int, default=10, help="number of sites")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--kind", choices=["synthetic", "wlcg"], default="synthetic",
        help="synthetic heterogeneous grid or the built-in WLCG catalogue",
    )
    gen.add_argument("--topology", choices=["star", "tiered"], default="star")
    gen.add_argument("--output-dir", type=Path, default=Path("configs"))

    trace = sub.add_parser(
        "generate-trace", help="write a synthetic PanDA-like trace CSV to --output"
    )
    trace.add_argument("--infrastructure", type=Path, required=True)
    trace.add_argument("--jobs", type=int, default=1000)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--output", type=Path, default=Path("trace.csv"))

    run = sub.add_parser(
        "run",
        help="run a simulation and print the metrics table "
        "(--per-site/--dashboard print the breakdown and dashboard views; "
        "--progress prints live progress lines to stderr; --until pauses "
        "the clock at a simulated time and reports the partial run)",
    )
    run.add_argument("--infrastructure", type=Path, required=True)
    run.add_argument("--topology", type=Path, required=True)
    run.add_argument("--execution", type=Path, required=True)
    run.add_argument("--trace", type=Path, required=True)
    run.add_argument("--dashboard", action="store_true", help="print the final dashboard view")
    run.add_argument("--per-site", action="store_true", help="print the per-site breakdown")
    run.add_argument("--until", default=None, metavar="TIME",
                     help="advance the simulated clock only to TIME (seconds, "
                     "or a duration such as '12h') and report the partial run")
    run.add_argument("--progress", nargs="?", const=2.0, default=None, type=float,
                     metavar="SECONDS",
                     help="print a live progress line to stderr, throttled to "
                     "at most one every SECONDS of wall-clock time (default 2)")
    run.add_argument("--shards", type=int, default=None, metavar="N",
                     help="run the sharded-clock engine across N site regions "
                     "(overrides execution.shards; requires a shard-eligible "
                     "workload, see the architecture docs)")
    run.add_argument("--shards-verify", action="store_true",
                     help="with shards > 1, cross-check the merged metrics "
                     "bit-for-bit against a single-clock run of the same "
                     "workload")
    run.add_argument("--checkpoint-every", default=None, metavar="TIME",
                     help="write a checkpoint blob every TIME simulated seconds "
                     "(or a duration such as '6h'); requires --checkpoint-dir")
    run.add_argument("--checkpoint-dir", type=Path, default=None, metavar="DIR",
                     help="write checkpoint_t<time>.ckpt blobs plus latest.ckpt "
                     "to DIR (resume with `cgsim resume DIR/latest.ckpt`); "
                     "without --checkpoint-every a single blob freezes the "
                     "final pre-finalize state")

    res = sub.add_parser(
        "resume",
        help="restore a checkpoint blob written by `run`/`scenario run` "
        "--checkpoint-dir, advance it (to completion or --until) and print "
        "the metrics table; --checkpoint-dir keeps checkpointing the "
        "resumed run",
    )
    res.add_argument("checkpoint", type=Path,
                     help="checkpoint blob (.ckpt), e.g. DIR/latest.ckpt")
    res.add_argument("--until", default=None, metavar="TIME",
                     help="advance the simulated clock only to TIME (seconds, "
                     "or a duration such as '12h') and report the partial run")
    res.add_argument("--progress", nargs="?", const=2.0, default=None, type=float,
                     metavar="SECONDS",
                     help="print a live progress line to stderr, throttled to "
                     "at most one every SECONDS of wall-clock time (default 2)")
    res.add_argument("--per-site", action="store_true",
                     help="print the per-site breakdown")
    res.add_argument("--muted-replay", action="store_true",
                     help="skip monitoring recording during the restore "
                     "fast-forward (faster; counters are re-seated from the "
                     "blob, but replayed event rows are not retained)")
    res.add_argument("--checkpoint-every", default=None, metavar="TIME",
                     help="keep writing checkpoints every TIME simulated "
                     "seconds; requires --checkpoint-dir")
    res.add_argument("--checkpoint-dir", type=Path, default=None, metavar="DIR",
                     help="directory for further checkpoint blobs of the "
                     "resumed run")

    cal = sub.add_parser(
        "calibrate",
        help="calibrate per-site core speeds against a trace, print the "
        "before/after error table and optionally write the calibrated "
        "infrastructure JSON (--output)",
    )
    cal.add_argument("--infrastructure", type=Path, required=True)
    cal.add_argument("--trace", type=Path, required=True)
    cal.add_argument("--optimizer", default="random",
                     choices=["random", "bayesian", "cmaes", "brute_force"])
    cal.add_argument("--budget", type=int, default=30)
    cal.add_argument("--seed", type=int, default=0)
    cal.add_argument("--output", type=Path, default=None,
                     help="write the calibrated infrastructure JSON here")

    sens = sub.add_parser(
        "sensitivity",
        help="one-at-a-time parameter sensitivity study for one site; prints "
        "the per-parameter error table and the dominant parameter",
    )
    sens.add_argument("--infrastructure", type=Path, required=True)
    sens.add_argument("--trace", type=Path, required=True)
    sens.add_argument("--site", default=None,
                      help="site to study (default: the site with the most trace jobs)")
    sens.add_argument("--factors", default="0.5,0.75,1.0,1.5,2.0",
                      help="comma-separated multiplicative perturbations")
    sens.add_argument("--mode", choices=["simulate", "analytic"], default="simulate")

    cmp = sub.add_parser(
        "compare-policies",
        help="replay one trace under several allocation policies and print "
        "the side-by-side metrics table",
    )
    cmp.add_argument("--infrastructure", type=Path, required=True)
    cmp.add_argument("--topology", type=Path, required=True)
    cmp.add_argument("--trace", type=Path, required=True)
    cmp.add_argument(
        "--policies",
        default="round_robin,least_loaded,panda_dispatcher",
        help="comma-separated policy names (see `cgsim policies`)",
    )

    policies = sub.add_parser(
        "policies",
        help="print the registered plugin names of one family (default: "
        "allocation), one per line; --family all prints every family",
    )
    policies.add_argument(
        "--family", default="allocation",
        help="plugin family to list: allocation, eviction, replication, or 'all'",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run a parallel scenario sweep, print the per-scenario aggregate "
        "table and optionally write per-run results as JSON (--output)",
    )
    sweep.add_argument("--sites", default="4",
                       help="comma-separated site counts to sweep")
    sweep.add_argument("--jobs", type=int, default=200, help="jobs per run")
    sweep.add_argument("--policies", default="least_loaded",
                       help="comma-separated allocation-policy names")
    sweep.add_argument("--failure-rates", default="0.0",
                       help="comma-separated per-site job failure probabilities")
    sweep.add_argument("--grid", choices=["synthetic", "wlcg"], default="synthetic")
    sweep.add_argument("--replications", type=int, default=3,
                       help="independent seed replications per scenario")
    sweep.add_argument("--max-retries", type=int, default=0)
    sweep.add_argument("--seed", type=int, default=0, help="root seed of the sweep")
    sweep.add_argument("--workers", type=int, default=0,
                       help="worker processes (0 = one per available CPU)")
    sweep.add_argument("--metrics", default="makespan,mean_queue_time,throughput,failure_rate",
                       help="comma-separated grid-level metrics to aggregate")
    sweep.add_argument("--output", type=Path, default=None,
                       help="write the full per-run results as JSON here")

    bench = sub.add_parser(
        "bench",
        help="measure DES-kernel event throughput, print the events/s table "
        "and optionally write the rates as JSON (--output) or print a "
        "cProfile summary (--profile)",
    )
    bench.add_argument("--scale", type=float, default=1.0,
                       help="size multiplier for the three kernel workloads")
    bench.add_argument("--repeat", type=int, default=3,
                       help="runs per workload (best is reported)")
    bench.add_argument("--profile", action="store_true",
                       help="dump a cProfile summary (top 20 functions)")
    bench.add_argument("--sort", choices=["cumulative", "tottime"],
                       default="cumulative",
                       help="profile sort order (with --profile)")
    bench.add_argument("--json", action="store_true",
                       help="with --profile, print the flat profile as JSON "
                       "rows instead of the pstats text block")
    bench.add_argument("--output", type=Path, default=None,
                       help="write the measured rates as JSON here")

    scenario = sub.add_parser(
        "scenario",
        help="work with declarative scenario packs: print the pack catalogue, "
        "a pack's canonical JSON, validation verdicts, or run a pack and "
        "print its metric/sweep/calibration tables",
    )
    scen_sub = scenario.add_subparsers(dest="scenario_command", required=True)

    scen_list = scen_sub.add_parser(
        "list",
        help="print the table of discoverable packs (bundled, entry-point "
        "and CGSIM_SCENARIO_PATH sources)",
    )
    scen_list.add_argument("--tag", default=None, help="only packs carrying this tag")

    scen_show = scen_sub.add_parser(
        "show", help="print one pack's canonical JSON representation"
    )
    scen_show.add_argument("pack", help="pack name (see `scenario list`) or file path")

    scen_validate = scen_sub.add_parser(
        "validate",
        help="validate pack files/names and print one OK/error verdict per pack",
    )
    scen_validate.add_argument("packs", nargs="+",
                               help="pack names or YAML/JSON file paths")

    scen_run = scen_sub.add_parser(
        "run",
        help="run a pack end-to-end (parallel when it sweeps) and print its "
        "metric/sweep/calibration tables; --output writes the full outcome "
        "as JSON",
    )
    scen_run.add_argument("pack", help="pack name (see `scenario list`) or file path")
    scen_run.add_argument("--workers", type=int, default=None,
                          help="worker processes for sweeps/calibration "
                          "(0 = one per available CPU; default: the pack's choice)")
    scen_run.add_argument("--set", dest="overrides", action="append", default=[],
                          metavar="PATH=VALUE",
                          help="dotted-path pack override, e.g. "
                          "--set workload.jobs=500 (repeatable; values parse "
                          "as JSON, falling back to strings)")
    scen_run.add_argument("--output", type=Path, default=None,
                          help="write the full outcome (per-run metrics) as JSON here")
    scen_run.add_argument("--progress", nargs="?", const=2.0, default=None, type=float,
                          metavar="SECONDS",
                          help="single-run packs: print a live progress line to "
                          "stderr, throttled to at most one every SECONDS of "
                          "wall-clock time (default 2)")
    scen_run.add_argument("--checkpoint-every", default=None, metavar="TIME",
                          help="write a checkpoint blob every TIME simulated "
                          "seconds (or a duration such as '6h')")
    scen_run.add_argument("--checkpoint-dir", type=Path, default=None,
                          metavar="DIR",
                          help="write checkpoint blobs to DIR and resume "
                          "automatically from its latest.ckpt when the blob "
                          "matches this pack; sweep packs checkpoint each "
                          "combination into its own DIR subdirectory "
                          "(crash-resumable studies)")

    schema = sub.add_parser(
        "schema",
        help="work with the published scenario-pack JSON Schema: print the "
        "generated document, check the committed copy for drift, or "
        "validate pack files against it",
    )
    schema_sub = schema.add_subparsers(dest="schema_command", required=True)
    schema_emit = schema_sub.add_parser(
        "emit",
        help="print the generated schema JSON to stdout, or write it to "
        "--output / the committed docs/schema location with --update",
    )
    schema_emit.add_argument("--output", type=Path, default=None,
                             help="write the schema JSON to this file instead "
                             "of stdout")
    schema_emit.add_argument("--update", action="store_true",
                             help="write the schema to its committed location "
                             "(docs/schema/scenario-pack.schema.json)")
    schema_sub.add_parser(
        "check",
        help="regenerate the schema and print a drift verdict against the "
        "committed copy (non-zero exit when they differ; CI runs this)",
    )
    schema_validate = schema_sub.add_parser(
        "validate",
        help="validate pack files/names against the JSON Schema and print "
        "one verdict per pack, each error carrying its JSON-pointer path",
    )
    schema_validate.add_argument("packs", nargs="+",
                                 help="pack names or YAML/JSON file paths")

    conformance = sub.add_parser(
        "conformance",
        help="exercise registered plugins against the golden conformance "
        "invariants and print per-plugin pass/fail reports",
    )
    conf_sub = conformance.add_subparsers(dest="conformance_command", required=True)
    conf_run = conf_sub.add_parser(
        "run",
        help="run the conformance battery and print one report per plugin "
        "(non-zero exit when any plugin fails an invariant)",
    )
    conf_run.add_argument("--family", default="all",
                          choices=["all", "allocation", "policy", "eviction",
                                   "replication"],
                          help="plugin family to exercise ('policy' is an "
                          "alias for allocation; default: all)")
    conf_run.add_argument("--plugin", default=None,
                          help="single plugin: a registered name or a "
                          "'module.path:ClassName' spec")
    conf_run.add_argument("--json", action="store_true", dest="as_json",
                          help="print the reports as a JSON document instead "
                          "of text blocks")
    conf_run.add_argument("--no-subprocess", action="store_true",
                          help="skip the PYTHONHASHSEED subprocess sweep "
                          "(faster, but misses iteration-order bugs)")
    conf_run.add_argument("--lint", action="store_true", dest="static_lint",
                          help="also run the static determinism/pickle lint "
                          "over each plugin's source module (no baseline) "
                          "and include the findings in the printed reports")

    lint = sub.add_parser(
        "lint",
        help="run the static determinism & correctness analyzer over "
        "source trees and print one finding per line plus a summary "
        "(non-zero exit on findings or a stale baseline; CI runs this "
        "over src/repro)",
    )
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories to scan "
                      "(default: src/repro)")
    lint.add_argument("--rule", action="append", default=[], metavar="ID",
                      help="rule id or family name to run (repeatable; "
                      "default: every rule -- see docs/lint.md)")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="print the report as a JSON document instead of "
                      "text lines")
    lint.add_argument("--baseline", type=Path, default=None, metavar="FILE",
                      help="baseline file to apply (default: discover a "
                      "committed lint-baseline.json near the scanned paths)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="zero-tolerance mode: ignore any baseline file")
    lint.add_argument("--write-baseline", type=Path, default=None,
                      metavar="FILE", nargs="?", const=Path("lint-baseline.json"),
                      help="write the surviving findings as a new baseline "
                      "file (default path: lint-baseline.json) and exit 0")

    serve = sub.add_parser(
        "serve",
        help="run the simulation service: an HTTP + WebSocket session server "
        "that queues submitted scenario packs onto a pool of worker "
        "processes, writes periodic checkpoint blobs to its artifact store "
        "and prints the bound address on startup",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8641,
                       help="TCP port to bind; 0 picks an ephemeral port "
                       "(the bound port is printed on startup)")
    serve.add_argument("--workers", type=int, default=2,
                       help="size of the worker-process pool (default: 2)")
    serve.add_argument("--store-root", type=Path, default=None, metavar="DIR",
                       help="artifact-store directory for checkpoint blobs; "
                       "default is a fresh temporary directory (printed on "
                       "startup)")
    serve.add_argument("--checkpoint-every", default=None, metavar="TIME",
                       help="default checkpoint cadence in simulated seconds "
                       "(or a duration such as '1h') for sessions that do "
                       "not choose their own")
    serve.add_argument("--max-attempts", type=int, default=5,
                       help="per-session retry budget when workers die "
                       "(default: 5)")

    client = sub.add_parser(
        "client",
        help="talk to a running `cgsim serve` instance: submit scenario "
        "packs, print session status, watch live event streams, stop "
        "sessions",
    )
    client_sub = client.add_subparsers(dest="client_command", required=True)
    connection = argparse.ArgumentParser(add_help=False)
    connection.add_argument("--host", default="127.0.0.1",
                            help="service host (default: 127.0.0.1)")
    connection.add_argument("--port", type=int, default=8641,
                            help="service port (default: 8641)")
    cl_submit = client_sub.add_parser(
        "submit", parents=[connection],
        help="submit a scenario pack (file path or registry name) and print "
        "the assigned session id; --watch streams its events until the "
        "session ends",
    )
    cl_submit.add_argument("pack", help="pack file path or registry name")
    cl_submit.add_argument("--priority", type=int, default=0,
                           help="queue priority; higher runs first "
                           "(default: 0)")
    cl_submit.add_argument("--checkpoint-every", default=None, metavar="TIME",
                           help="checkpoint cadence for this session in "
                           "simulated seconds (or a duration such as '1h')")
    cl_submit.add_argument("--label", default=None,
                           help="free-form label echoed back in status output")
    cl_submit.add_argument("--watch", action="store_true",
                           help="after submitting, print the session's event "
                           "stream until it reaches a terminal state")
    cl_status = client_sub.add_parser(
        "status", parents=[connection],
        help="print one session's status document, or a one-line-per-session "
        "table of every session the server knows",
    )
    cl_status.add_argument("session", nargs="?", default=None,
                           help="session id; omit to list every session")
    cl_status.add_argument("--json", action="store_true", dest="as_json",
                           help="print the raw JSON document(s) instead of "
                           "the table")
    cl_watch = client_sub.add_parser(
        "watch", parents=[connection],
        help="subscribe to a session's WebSocket event stream and print one "
        "line per state change, progress report, checkpoint and result",
    )
    cl_watch.add_argument("session", help="session id to watch")
    cl_stop = client_sub.add_parser(
        "stop", parents=[connection],
        help="ask the service to stop a session (queued sessions stop "
        "immediately, running ones at the next chunk boundary) and print "
        "the resulting state",
    )
    cl_stop.add_argument("session", help="session id to stop")
    return parser


def _cmd_generate_config(args: argparse.Namespace) -> int:
    if args.kind == "wlcg":
        infrastructure, topology = wlcg_grid(site_count=args.sites)
    else:
        infrastructure, topology = generate_grid(
            args.sites, seed=args.seed, topology=args.topology
        )
    execution = ExecutionConfig()
    out = args.output_dir
    save_infrastructure(infrastructure, out / "infrastructure.json")
    save_topology(topology, out / "topology.json")
    save_execution(execution, out / "execution.json")
    print(f"wrote infrastructure.json, topology.json, execution.json to {out}")
    return 0


def _cmd_generate_trace(args: argparse.Namespace) -> int:
    infrastructure = load_infrastructure(args.infrastructure)
    generator = SyntheticWorkloadGenerator(infrastructure, seed=args.seed)
    jobs = generator.generate(args.jobs)
    save_trace(jobs, args.output)
    print(f"wrote {len(jobs)} jobs to {args.output}")
    return 0


def _throttled_progress_printer(min_interval: float):
    """Build a wall-clock-throttled progress-line printer for a session.

    The returned callable takes the live
    :class:`~repro.core.session.SimulationSession` and prints one progress
    line to stderr -- counters from :meth:`~SimulationSession.progress` plus
    headline numbers from :meth:`~SimulationSession.peek_metrics` -- at most
    once every ``min_interval`` seconds of wall-clock time (the metric
    computation only happens when a line is actually printed).
    """
    import time as _time

    last = [float("-inf")]

    def printer(session, force: bool = False) -> None:
        now = _time.monotonic()
        if not force and now - last[0] < min_interval:
            return
        last[0] = now
        progress = session.progress()
        metrics = session.peek_metrics()
        print(
            f"[progress] {progress.describe()} | "
            f"mean_queue={metrics.mean_queue_time:.0f}s "
            f"throughput={metrics.throughput * 3600.0:.1f} jobs/h",
            file=sys.stderr,
            flush=True,
        )

    return printer


def _drive_session(args: argparse.Namespace, session, extra=None) -> None:
    """Advance a CLI session per --until/--checkpoint-every/--checkpoint-dir."""
    from repro.utils.units import parse_duration

    every = (
        parse_duration(args.checkpoint_every)
        if args.checkpoint_every is not None
        else None
    )
    until = parse_duration(args.until) if args.until is not None else None
    if args.checkpoint_dir is None:
        if every is not None:
            raise CGSimError("--checkpoint-every requires --checkpoint-dir")
        if until is not None:
            session.advance_until(until)
        else:
            session.advance_to_completion()
        return
    from repro.state import drive_with_checkpoints

    written = drive_with_checkpoints(
        session, args.checkpoint_dir, every=every, until=until, extra=extra
    )
    print(
        f"wrote {len(written)} checkpoint(s) to {args.checkpoint_dir} "
        f"(resume with `cgsim resume {args.checkpoint_dir / 'latest.ckpt'}`)",
        file=sys.stderr,
    )


def _report_run(args: argparse.Namespace, session, result) -> None:
    """Print the standard post-run report (metrics, pause note, breakdowns)."""
    print(metrics_table(result.metrics))
    if args.until is not None and not session.done:
        print()
        print(
            f"paused at t={result.simulated_time:.0f}s (--until): "
            f"{result.metrics.finished_jobs}/{result.metrics.total_jobs} jobs "
            f"finished, {result.pending_jobs} pending"
        )
    if result.stopped_reason is not None:
        print()
        print(f"stopped early: {result.stopped_reason}")
    if args.per_site:
        print()
        print(site_table(result.metrics))
        print()
        print(transition_table(result.metrics))
    if getattr(args, "dashboard", False):
        print()
        print(Dashboard(result.collector).render(result.simulated_time))


def _cmd_run(args: argparse.Namespace) -> int:
    infrastructure = load_infrastructure(args.infrastructure)
    topology = load_topology(args.topology)
    execution = load_execution(args.execution)
    jobs = load_trace(args.trace)
    if args.shards is not None:
        from dataclasses import replace

        if args.shards < 1:
            raise CGSimError("--shards must be >= 1")
        execution = replace(execution, shards=args.shards)
    if execution.shards > 1:
        return _run_sharded_cli(args, infrastructure, topology, execution, jobs)
    if args.shards_verify:
        raise CGSimError("--shards-verify requires --shards > 1")
    simulator = Simulator(infrastructure, topology, execution)
    session = simulator.session(jobs)
    printer = None
    if args.progress is not None:
        printer = _throttled_progress_printer(args.progress)
        # The in-sim tick is deliberately fine-grained (60 simulated
        # seconds); the wall-clock throttle above decides what actually
        # prints.
        session.on_progress(60.0, lambda _snapshot: printer(session))
    _drive_session(args, session)
    if printer is not None:
        # Always end with one line, even for runs shorter than a tick.
        printer(session, force=True)
    result = session.finalize()
    _report_run(args, session, result)
    return 0


def _run_sharded_cli(args, infrastructure, topology, execution, jobs) -> int:
    """The ``run --shards N`` path: sharded-clock engine, no session controls."""
    from repro.des.sharded import run_sharded

    for value, flag in (
        (args.until, "--until"),
        (args.progress, "--progress"),
        (args.checkpoint_every, "--checkpoint-every"),
        (args.checkpoint_dir, "--checkpoint-dir"),
    ):
        if value is not None:
            raise CGSimError(f"{flag} drives a single-clock session; drop --shards")
    simulator = Simulator(infrastructure, topology, execution)
    result = run_sharded(simulator, list(jobs), verify=args.shards_verify)
    if args.shards_verify:
        print(
            f"[shards] {execution.shards} regions verified against the "
            "single-clock engine: metrics identical",
            file=sys.stderr,
        )
    _report_run(args, None, result)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.state import restore_session_from_blob

    if not args.checkpoint.exists():
        raise CGSimError(f"checkpoint blob not found: {args.checkpoint}")
    blob = args.checkpoint.read_bytes()
    session, payload = restore_session_from_blob(
        blob, monitoring="muted" if args.muted_replay else "replay"
    )
    extra = payload.get("extra") or {}
    print(
        f"restored from {args.checkpoint}: {session.progress().describe()}",
        file=sys.stderr,
    )
    printer = None
    if args.progress is not None:
        printer = _throttled_progress_printer(args.progress)
        session.on_progress(60.0, lambda _snapshot: printer(session))
    _drive_session(args, session, extra=extra if extra else None)
    if printer is not None:
        printer(session, force=True)
    result = session.finalize()
    _report_run(args, session, result)
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    infrastructure = load_infrastructure(args.infrastructure)
    jobs = load_trace(args.trace)
    calibrator = GridCalibrator(
        infrastructure,
        jobs,
        optimizer=args.optimizer,
        budget=args.budget,
        seed=args.seed,
    )
    report = calibrator.calibrate()
    print(format_table([r.to_row() for r in report.sites]))
    summary = report.summary()
    print()
    print(json.dumps(summary, indent=2))
    if args.output is not None:
        calibrated = calibrator.calibrated_infrastructure(report)
        save_infrastructure(calibrated, args.output)
        print(f"wrote calibrated infrastructure to {args.output}")
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    infrastructure = load_infrastructure(args.infrastructure)
    jobs = load_trace(args.trace)
    site_name = args.site
    if site_name is None:
        # Default to the site the trace covers best.
        counts: dict = {}
        for job in jobs:
            if job.target_site:
                counts[job.target_site] = counts.get(job.target_site, 0) + 1
        if not counts:
            raise CGSimError("the trace attributes no jobs to any site")
        site_name = max(counts, key=counts.get)
    site = infrastructure.site(site_name)
    site_jobs = [j for j in jobs if j.target_site == site_name]
    factors = [float(value) for value in args.factors.split(",") if value.strip()]
    analysis = SensitivityAnalysis(site, site_jobs, factors=factors, mode=args.mode)
    results = analysis.analyze()
    print(f"sensitivity study for {site_name} ({len(site_jobs)} jobs, factors {factors})")
    print(format_table([result.to_row() for result in results]))
    print()
    print(f"dominant parameter: {SensitivityAnalysis.dominant_parameter(results)}")
    return 0


def _cmd_compare_policies(args: argparse.Namespace) -> int:
    infrastructure = load_infrastructure(args.infrastructure)
    topology = load_topology(args.topology)
    jobs = load_trace(args.trace)
    policies = [name.strip() for name in args.policies.split(",") if name.strip()]
    unknown = [name for name in policies if name not in available_policies()]
    if unknown:
        raise CGSimError(f"unknown policies {unknown}; see `cgsim policies`")
    rows = []
    for policy in policies:
        execution = ExecutionConfig(plugin=policy)
        result = Simulator(infrastructure, topology, execution).run(
            [job.copy_for_replay() for job in jobs]
        )
        metrics = result.metrics
        rows.append(
            {
                "policy": policy,
                "finished": metrics.finished_jobs,
                "failed": metrics.failed_jobs,
                "makespan_h": metrics.makespan / 3600.0,
                "mean_queue_min": metrics.mean_queue_time / 60.0,
                "throughput_jobs_per_h": metrics.throughput * 3600.0,
            }
        )
    print(format_table(rows))
    best = min(rows, key=lambda row: row["makespan_h"])
    print()
    print(f"shortest makespan: {best['policy']} ({best['makespan_h']:.2f} h)")
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    from repro.plugins import available_plugins, plugin_families

    family = getattr(args, "family", "allocation")
    if family == "all":
        for family_name in plugin_families():
            for name in available_plugins(family_name):
                print(f"{family_name}:{name}")
        return 0
    for name in available_plugins(family):
        print(name)
    return 0


def _parse_csv(raw: str, cast, flag: str) -> list:
    """Parse a comma-separated CLI list, reporting bad items as a CGSimError."""
    values = []
    for item in raw.split(","):
        item = item.strip()
        if not item:
            continue
        try:
            values.append(cast(item))
        except ValueError:
            raise CGSimError(f"invalid value {item!r} for {flag}") from None
    if not values:
        raise CGSimError(f"{flag} must list at least one value")
    return values


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import RunSpec, SweepRunner, scenario_grid

    axes = {
        "sites": _parse_csv(args.sites, int, "--sites"),
        "policy": _parse_csv(args.policies, str, "--policies"),
        "failure_rate": _parse_csv(args.failure_rates, float, "--failure-rates"),
    }
    # Single-valued axes pin the base spec instead of widening scenario names.
    base = RunSpec(
        jobs=args.jobs,
        seed=args.seed,
        grid=args.grid,
        max_retries=args.max_retries,
    )
    for name in list(axes):
        if len(axes[name]) == 1:
            base = base.with_(**{name: axes.pop(name)[0]})
    specs = scenario_grid(base, replications=args.replications, **axes)

    runner = SweepRunner(n_workers=args.workers or None)
    print(
        f"Sweep: {len(specs)} runs "
        f"({len(specs) // max(1, args.replications)} scenarios x "
        f"{args.replications} replications) on {runner.n_workers} worker(s)"
    )
    sweep = runner.run(specs)
    metrics = [m.strip() for m in args.metrics.split(",") if m.strip()]
    print()
    print(sweep.table(metrics))
    print(
        f"\n{len(sweep.ok)}/{len(sweep)} runs succeeded "
        f"in {sweep.wallclock_seconds:.2f} s wall-clock"
    )
    for failed in sweep.failed:
        print(f"  failed: {failed.spec.label()}: {failed.error}", file=sys.stderr)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(
            json.dumps(sweep.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote per-run results to {args.output}")
    return 0 if not sweep.failed else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import (
        profile_callable,
        profile_flat,
        run_kernel_benchmarks,
    )

    if args.scale <= 0:
        raise CGSimError("--scale must be positive")
    if args.repeat < 1:
        raise CGSimError("--repeat must be >= 1")
    if args.json and not args.profile:
        raise CGSimError("--json formats the flat profile; it requires --profile")
    results = run_kernel_benchmarks(scale=args.scale, repeat=args.repeat)
    if not args.json:
        print(format_table([result.to_row() for result in results]))
    if args.profile:
        one_pass = lambda: run_kernel_benchmarks(scale=args.scale, repeat=1)
        if args.json:
            payload = {
                "scale": args.scale,
                "repeat": args.repeat,
                "results": [result.to_row() for result in results],
                "profile_sort": args.sort,
                "profile": profile_flat(one_pass, top=20, sort=args.sort),
            }
            print(json.dumps(payload, indent=2))
        else:
            print()
            print(
                "cProfile (one pass of every kernel workload, "
                f"top 20 by {args.sort} time):"
            )
            print(profile_callable(one_pass, top=20, sort=args.sort))
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "scale": args.scale,
            "repeat": args.repeat,
            "results": [result.to_row() for result in results],
        }
        args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"wrote rates to {args.output}")
    return 0


def _resolve_pack(reference: str):
    """Resolve a CLI pack reference: an existing file path, else a registry name."""
    from repro.scenarios import load_scenario_pack
    from repro.scenarios.loader import PACK_SUFFIXES

    path = Path(reference)
    if path.exists() or reference.endswith(PACK_SUFFIXES) or "/" in reference:
        return load_scenario_pack(path)
    from repro.scenarios import get_scenario_pack

    return get_scenario_pack(reference)


def _parse_overrides(pairs: List[str]) -> dict:
    """Parse repeated ``--set path=value`` flags (values are JSON when possible)."""
    overrides = {}
    for pair in pairs:
        path, separator, raw = pair.partition("=")
        if not separator or not path.strip():
            raise CGSimError(f"--set expects PATH=VALUE, got {pair!r}")
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        overrides[path.strip()] = value
    return overrides


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.scenarios import run_scenario_pack
    from repro.scenarios.registry import default_registry

    if args.scenario_command == "list":
        rows = []
        for pack in default_registry.packs():
            if args.tag is not None and args.tag not in pack.tags:
                continue
            rows.append(pack.summary_row())
        if rows:
            print(format_table(rows))
        else:
            print("no scenario packs found")
        for warning in default_registry.warnings:
            print(f"warning: {warning}", file=sys.stderr)
        return 0

    if args.scenario_command == "show":
        print(_resolve_pack(args.pack).to_json())
        return 0

    if args.scenario_command == "validate":
        failures = 0
        for reference in args.packs:
            try:
                pack = _resolve_pack(reference)
            except CGSimError as exc:
                failures += 1
                print(f"FAIL  {reference}: {exc}")
                continue
            runs = 1
            if pack.sweep is not None:
                runs = len(pack.sweep.combinations()) * pack.sweep.replications
            print(f"OK    {pack.name} ({pack.mode()}, {runs} run(s))")
        return 1 if failures else 0

    pack = _resolve_pack(args.pack)
    progress_fn = None
    if args.progress is not None:
        if pack.mode() == "single":
            progress_fn = _throttled_progress_printer(args.progress)
        else:
            print(
                f"note: --progress applies to single-run packs only "
                f"(this pack runs a {pack.mode()})",
                file=sys.stderr,
            )
    checkpoint_dir = args.checkpoint_dir
    checkpoint_every = None
    if checkpoint_dir is not None and pack.mode() == "calibration":
        print(
            "note: --checkpoint-dir applies to single-run and sweep packs "
            "only (this pack runs a calibration)",
            file=sys.stderr,
        )
        checkpoint_dir = None
    if args.checkpoint_every is not None and checkpoint_dir is not None:
        from repro.utils.units import parse_duration

        checkpoint_every = parse_duration(args.checkpoint_every)
    elif args.checkpoint_every is not None and args.checkpoint_dir is None:
        raise CGSimError("--checkpoint-every requires --checkpoint-dir")
    outcome = run_scenario_pack(
        pack,
        workers=args.workers,
        overrides=_parse_overrides(args.overrides),
        progress=progress_fn,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
    )
    header = outcome.pack.title or outcome.pack.name
    print(f"scenario {outcome.pack.name} [{outcome.mode}]: {header}")
    print()
    print(outcome.render())
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(
            json.dumps(outcome.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote outcome to {args.output}")
    if not outcome.ok:
        assert outcome.sweep is not None
        for failed in outcome.sweep.failed:
            print(f"  failed: {failed.spec.label()}: {failed.error}", file=sys.stderr)
        return 1
    return 0


def _cmd_schema(args: argparse.Namespace) -> int:
    from repro.schema import schema_json, schema_path, validate_pack_dict

    if args.schema_command == "emit":
        if args.update and args.output is not None:
            raise CGSimError("--update writes the committed path; drop --output")
        target = schema_path() if args.update else args.output
        if target is None:
            print(schema_json(), end="")
            return 0
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(schema_json(), encoding="utf-8")
        print(f"wrote schema to {target}")
        return 0

    if args.schema_command == "check":
        committed_path = schema_path()
        if not committed_path.exists():
            raise CGSimError(
                f"committed schema missing at {committed_path}; "
                "run `cgsim schema emit --update`")
        committed = committed_path.read_text(encoding="utf-8")
        if committed != schema_json():
            print(
                f"DRIFT  {committed_path} no longer matches the generated "
                "schema; run `cgsim schema emit --update` and commit the result",
                file=sys.stderr,
            )
            return 1
        print(f"OK     {committed_path} matches the generated schema")
        return 0

    from repro.config.loaders import read_structured_file

    failures = 0
    for reference in args.packs:
        path = Path(reference)
        try:
            if path.exists():
                data = read_structured_file(path, "scenario pack")
            else:
                from repro.scenarios import get_scenario_pack

                data = get_scenario_pack(reference).to_dict()
        except CGSimError as exc:
            failures += 1
            print(f"FAIL  {reference}: {exc}")
            continue
        errors = validate_pack_dict(data)
        if errors:
            failures += 1
            print(f"FAIL  {reference}: {len(errors)} schema violation(s)")
            for error in errors:
                print(f"        {error}")
        else:
            print(f"OK    {reference}")
    return 1 if failures else 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    from repro.conformance import render_reports, run_conformance

    reports = run_conformance(
        family=args.family,
        plugin=args.plugin,
        subprocess_checks=not args.no_subprocess,
        static_lint=args.static_lint,
    )
    if args.as_json:
        print(json.dumps([report.to_dict() for report in reports], indent=2))
    else:
        print(render_reports(reports))
    return 0 if all(report.ok for report in reports) else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run :mod:`repro.lint` per the CLI flags and print its report."""
    from repro.lint import run_lint
    from repro.lint.baseline import Baseline

    if args.no_baseline and args.baseline is not None:
        raise CGSimError("--no-baseline contradicts --baseline FILE")
    try:
        rules = list(args.rule)
        baseline = None if args.no_baseline else (args.baseline or "auto")
        if args.write_baseline is not None:
            baseline = None
        report = run_lint(args.paths, rules=rules, baseline=baseline)
    except (ValueError, FileNotFoundError) as exc:
        raise CGSimError(str(exc)) from exc
    if args.write_baseline is not None:
        target = args.write_baseline
        Baseline.from_findings(report.findings, root=target.parent).dump(target)
        print(
            f"wrote baseline with {len(report.findings)} finding(s) "
            f"to {target}"
        )
        return 0
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation service in the foreground until SIGINT/SIGTERM."""
    import asyncio
    import signal

    from repro.service import ServiceConfig, ServiceServer

    checkpoint_every = None
    if args.checkpoint_every is not None:
        from repro.utils.units import parse_duration

        checkpoint_every = parse_duration(args.checkpoint_every)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        store_root=str(args.store_root) if args.store_root is not None else None,
        checkpoint_every=checkpoint_every,
        max_attempts=args.max_attempts,
    )

    async def _serve() -> None:
        server = ServiceServer(config)
        await server.start()
        print(
            f"serving on http://{config.host}:{server.port} "
            f"(workers={config.workers}, store={server.store.root})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("shutting down: draining active sessions ...", flush=True)
        await server.shutdown(drain=True)

    asyncio.run(_serve())
    print("service stopped")
    return 0


def _service_client(args: argparse.Namespace):
    from repro.service import ServiceClient

    return ServiceClient(args.host, args.port)


def _watch_session(client, session_id: str) -> int:
    """Print a session's event stream line by line until a terminal message."""
    from repro.service.models import (
        CheckpointMessage,
        ErrorMessage,
        ProgressMessage,
        ResultMessage,
        StateMessage,
    )

    status = 0
    for message in client.watch(session_id):
        if isinstance(message, StateMessage):
            line = f"state={message.state} attempts={message.attempts}"
            if message.detail:
                line += f" ({message.detail})"
        elif isinstance(message, ProgressMessage):
            line = (
                f"progress t={message.time:.0f}s "
                f"{message.completed_jobs}/{message.total_jobs} jobs done"
            )
        elif isinstance(message, CheckpointMessage):
            line = f"checkpoint {message.digest[:12]} t={message.time:.0f}s"
        elif isinstance(message, ResultMessage):
            line = (
                f"result state={message.state} "
                f"fingerprint={message.fingerprint} "
                f"simulated_time={message.simulated_time}"
            )
        elif isinstance(message, ErrorMessage):
            line = f"error {message.error}"
            status = 1
        else:  # pragma: no cover - future message kinds print their type
            line = message.TYPE
        print(f"[{session_id}] {line}", flush=True)
    return status


def _cmd_client(args: argparse.Namespace) -> int:
    """Dispatch ``cgsim client submit/status/watch/stop`` against a server."""
    from repro.service import ServiceError

    client = _service_client(args)
    try:
        if args.client_command == "submit":
            pack = _resolve_pack(args.pack)
            view = client.submit(
                pack.to_dict(),
                priority=args.priority,
                checkpoint_every=args.checkpoint_every,
                label=args.label,
            )
            print(f"submitted {view['id']} state={view['state']}")
            if args.watch:
                return _watch_session(client, view["id"])
            return 0
        if args.client_command == "status":
            if args.session is not None:
                views = [client.status(args.session)]
            else:
                views = client.sessions()
            if args.as_json:
                print(json.dumps(views if args.session is None else views[0],
                                 indent=2))
                return 0
            if not views:
                print("no sessions")
                return 0
            for view in views:
                fingerprint = view.get("fingerprint") or ""
                print(
                    f"{view['id']}  state={view['state']:<8} "
                    f"attempts={view['attempts']} "
                    f"checkpoints={view['checkpoints']}"
                    + (f"  fingerprint={fingerprint}" if fingerprint else "")
                )
            return 0
        if args.client_command == "watch":
            return _watch_session(client, args.session)
        if args.client_command == "stop":
            view = client.stop(args.session)
            print(f"{view['id']} state={view['state']}")
            return 0
        raise CGSimError(f"unknown client command {args.client_command!r}")
    except ServiceError as exc:
        raise CGSimError(f"service request failed: {exc}") from exc
    except ConnectionError as exc:
        raise CGSimError(
            f"cannot reach service at {args.host}:{args.port}: {exc}"
        ) from exc


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``cgsim`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate-config": _cmd_generate_config,
        "generate-trace": _cmd_generate_trace,
        "run": _cmd_run,
        "resume": _cmd_resume,
        "calibrate": _cmd_calibrate,
        "sensitivity": _cmd_sensitivity,
        "compare-policies": _cmd_compare_policies,
        "policies": _cmd_policies,
        "sweep": _cmd_sweep,
        "bench": _cmd_bench,
        "scenario": _cmd_scenario,
        "schema": _cmd_schema,
        "conformance": _cmd_conformance,
        "lint": _cmd_lint,
        "serve": _cmd_serve,
        "client": _cmd_client,
    }
    try:
        return handlers[args.command](args)
    except CGSimError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
