"""Fault injection: job failures, site outages and retry behaviour.

Production grids lose jobs -- worker nodes die, storage hiccups, sites drain
for maintenance -- and *job failure rate* is one of the operational metrics
the paper lists as a primary output of the monitoring data (Section 1).  This
package provides the pieces needed to study those effects in simulation:

* :class:`~repro.faults.models.JobFailureModel` -- per-site probabilities
  that a job fails partway through execution (deterministic per seed/job);
* :class:`~repro.faults.models.SiteOutageModel` -- per-site outage schedules
  (mean time between failures / mean time to repair), realised as concrete
  downtime windows;
* :class:`~repro.faults.injector.FaultInjector` -- the runtime process that
  applies an outage schedule to the live site runtimes of a simulation.

Job-level failures are consulted by the site runtime during execution; the
main server optionally retries failed jobs (``ExecutionConfig.max_retries``),
mirroring PanDA's automatic resubmission behaviour.
"""

from repro.faults.injector import FaultInjector
from repro.faults.models import JobFailureModel, OutageWindow, SiteOutageModel

__all__ = [
    "JobFailureModel",
    "SiteOutageModel",
    "OutageWindow",
    "FaultInjector",
]
