"""Runtime application of outage schedules to live site runtimes.

The :class:`FaultInjector` turns a static list of
:class:`~repro.faults.models.OutageWindow` objects into simulation processes:
at each window's start the target site stops admitting new jobs, and at its
end admission resumes.  Jobs already running are allowed to finish (a
"drain"-style outage, matching scheduled maintenance); killing running work
can be modelled by combining an outage with a
:class:`~repro.faults.models.JobFailureModel` whose rate is raised for the
affected site.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List

from repro.des import Environment
from repro.faults.models import OutageWindow
from repro.utils.errors import CGSimError
from repro.utils.logging import NullLogger, SimLogger

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.site import SiteRuntime

__all__ = ["FaultInjector"]


class FaultInjector:
    """Apply an outage schedule to the site runtimes of a running simulation.

    Parameters
    ----------
    env:
        The simulation's discrete-event environment.
    sites:
        Site runtimes keyed by name (the same mapping the main server holds).
    windows:
        The outage windows to apply; windows naming unknown sites raise
        immediately so configuration errors surface before the run.
    logger:
        Optional structured logger.
    """

    def __init__(
        self,
        env: Environment,
        sites: Dict[str, "SiteRuntime"],
        windows: Iterable[OutageWindow],
        logger: SimLogger | None = None,
    ) -> None:
        self.env = env
        self.sites = dict(sites)
        self.windows: List[OutageWindow] = sorted(windows, key=lambda w: (w.start, w.site))
        self.logger = logger or NullLogger()
        #: Outages already applied (site, start, end), for reporting.
        self.applied: List[OutageWindow] = []
        unknown = {w.site for w in self.windows} - set(self.sites)
        if unknown:
            raise CGSimError(f"outage schedule names unknown sites: {sorted(unknown)}")
        for window in self.windows:
            env.process(self._outage(window))

    # -- processes ---------------------------------------------------------------
    def _outage(self, window: OutageWindow):
        """Take the site offline at ``window.start`` and back online at ``window.end``."""
        site = self.sites[window.site]
        delay = window.start - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        site.set_offline()
        self.logger.info(
            "faults", f"site {window.site} offline", until=window.end
        )
        yield self.env.timeout(window.end - self.env.now)
        site.set_online()
        self.applied.append(window)
        self.logger.info("faults", f"site {window.site} back online")

    # -- reporting ---------------------------------------------------------------
    def downtime_by_site(self) -> Dict[str, float]:
        """Total scheduled downtime per site (seconds), applied or not yet."""
        totals: Dict[str, float] = {}
        for window in self.windows:
            totals[window.site] = totals.get(window.site, 0.0) + window.duration
        return totals

    def __repr__(self) -> str:
        return f"<FaultInjector windows={len(self.windows)} applied={len(self.applied)}>"
