"""Fault models: job-level failure probabilities and site outage schedules.

Both models are fully deterministic for a given seed so that fault-injection
experiments remain reproducible, like every other stochastic component of the
simulator.  Job failures are keyed on ``(seed, site, job_id)`` -- the same job
fails (or not) at the same point regardless of scheduling order -- and outage
schedules are materialised up-front as concrete windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.utils.errors import CGSimError
from repro.utils.rng import spawn_rng
from repro.workload.job import Job

__all__ = ["JobFailureModel", "OutageWindow", "SiteOutageModel"]


class JobFailureModel:
    """Per-site probability that a job fails partway through execution.

    Parameters
    ----------
    default_rate:
        Failure probability applied to sites without an explicit entry
        (0 disables injected failures everywhere by default).
    site_rates:
        Mapping of site name to failure probability in ``[0, 1]``.
    mean_failure_fraction:
        Mean fraction of the job's execution completed before it fails
        (drawn uniformly in ``(0, 2 * mean)``, clamped to ``(0, 1)``); wasted
        work is therefore ``fraction * walltime`` core-seconds, as it is on a
        real grid where failures strike mid-run rather than at submission.
    seed:
        Root seed; the decision for a given job at a given site never depends
        on when the model is consulted.

    Examples
    --------
    >>> model = JobFailureModel(default_rate=0.0, site_rates={"BNL": 1.0}, seed=1)
    >>> model.failure_fraction(Job(work=1.0, job_id=7), "BNL") is not None
    True
    """

    def __init__(
        self,
        default_rate: float = 0.0,
        site_rates: Optional[Dict[str, float]] = None,
        mean_failure_fraction: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= default_rate <= 1.0:
            raise CGSimError("default_rate must lie in [0, 1]")
        if not 0.0 < mean_failure_fraction <= 1.0:
            raise CGSimError("mean_failure_fraction must lie in (0, 1]")
        self.default_rate = float(default_rate)
        self.site_rates = dict(site_rates or {})
        for site, rate in self.site_rates.items():
            if not 0.0 <= rate <= 1.0:
                raise CGSimError(f"failure rate for {site!r} must lie in [0, 1]")
        self.mean_failure_fraction = float(mean_failure_fraction)
        self.seed = int(seed)
        #: Count of injected failures per site (observability/debugging aid).
        self.injected: Dict[str, int] = {}

    def rate_for(self, site: str) -> float:
        """Failure probability applied at ``site``."""
        return self.site_rates.get(site, self.default_rate)

    def failure_fraction(self, job: Job, site: str) -> Optional[float]:
        """Decide whether ``job`` fails at ``site``.

        Returns ``None`` when the job completes normally, otherwise the
        fraction of its execution time after which it dies (in ``(0, 1)``).
        The decision is a pure function of ``(seed, site, job_id)``.
        """
        rate = self.rate_for(site)
        if rate <= 0.0:
            return None
        # Key the draw on the job's identity *within its trace* (stamped by
        # the workload generators and the trace loader) plus the attempt
        # number, not on the raw job_id: job ids come from a process-global
        # counter, so two generations of the identical trace would otherwise
        # draw different failures.  Retried attempts carry the same
        # trace_index but a higher "attempt", so each attempt gets an
        # independent draw (a retry is not doomed to repeat its failure).
        key = job.attributes.get("trace_index", job.job_id)
        attempt = job.attributes.get("attempt", 1)
        gen = spawn_rng(self.seed, f"job-failure:{site}:{key}:{attempt}")
        if gen.uniform() >= rate:
            return None
        fraction = gen.uniform(0.0, 2.0 * self.mean_failure_fraction)
        fraction = min(0.999, max(1e-3, fraction))
        self.injected[site] = self.injected.get(site, 0) + 1
        return float(fraction)

    # -- checkpoint support ----------------------------------------------------
    def snapshot(self) -> dict:
        """Capture the model's seed and injected-failure counters.

        Part of the :class:`repro.state.Snapshottable` protocol.  The
        failure decisions themselves are stateless (pure functions of seed,
        site and job identity), so the seed plus the observability counters
        fully describe the model; both are verified after a checkpoint
        replay.
        """
        return {"seed": self.seed, "injected": dict(self.injected)}

    def restore(self, state: dict) -> None:
        """Verify a replayed model matches a snapshot (seed and counters).

        Replay regenerates the injected-failure counters from the same
        deterministic draws; a mismatch (or a different seed) means the
        restored simulator was configured differently and raises
        :class:`~repro.utils.errors.CheckpointError`.
        """
        from repro.state.protocol import diff_states
        from repro.utils.errors import CheckpointError

        diffs = diff_states(state, self.snapshot())
        if diffs:
            raise CheckpointError(
                "failure model diverged during replay: " + "; ".join(diffs)
            )

    def reseed(self, seed: int) -> None:
        """Re-key all future failure draws from ``seed`` (fork-branch divergence).

        Failure decisions are pure functions of ``(seed, site, job identity,
        attempt)``; swapping the seed is therefore all a fork branch needs
        for an independent future failure pattern, without touching the
        already-materialised past.
        """
        self.seed = int(seed)


@dataclass(frozen=True)
class OutageWindow:
    """One contiguous downtime interval of a site.

    A frozen ``(site, start, end)`` triple in simulated seconds with
    ``0 <= start < end`` enforced at construction.  Windows are what the
    fault injector consumes -- hand-write them for targeted maintenance
    studies or draw whole schedules from :class:`SiteOutageModel`.

    Examples
    --------
    >>> from repro import OutageWindow
    >>> window = OutageWindow(site="BNL", start=4 * 3600.0, end=12 * 3600.0)
    >>> window.duration / 3600.0
    8.0
    """

    site: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise CGSimError(
                f"outage window for {self.site!r} must satisfy 0 <= start < end "
                f"(got {self.start}..{self.end})"
            )

    @property
    def duration(self) -> float:
        """Length of the outage in seconds."""
        return self.end - self.start


class SiteOutageModel:
    """Generate per-site outage schedules from MTBF/MTTR parameters.

    Parameters
    ----------
    mean_time_between_failures:
        Mean simulated seconds of uptime between outages (exponential).
    mean_time_to_repair:
        Mean outage duration in seconds (exponential).
    seed:
        Root seed for the schedule draws.

    The model is materialised with :meth:`schedule`, which returns concrete
    :class:`OutageWindow` objects over a horizon; the windows (not the model)
    are what the :class:`~repro.faults.injector.FaultInjector` consumes, so a
    schedule can equally be hand-written for targeted what-if studies.
    """

    def __init__(
        self,
        mean_time_between_failures: float,
        mean_time_to_repair: float,
        seed: int = 0,
    ) -> None:
        if mean_time_between_failures <= 0 or mean_time_to_repair <= 0:
            raise CGSimError("MTBF and MTTR must be positive")
        self.mtbf = float(mean_time_between_failures)
        self.mttr = float(mean_time_to_repair)
        self.seed = int(seed)

    def schedule(self, sites: Iterable[str], horizon: float) -> List[OutageWindow]:
        """Materialise outage windows for ``sites`` over ``[0, horizon]`` seconds."""
        if horizon <= 0:
            raise CGSimError("horizon must be positive")
        windows: List[OutageWindow] = []
        for site in sites:
            gen = spawn_rng(self.seed, f"outage:{site}")
            clock = 0.0
            while True:
                clock += float(gen.exponential(self.mtbf))
                if clock >= horizon:
                    break
                downtime = max(1.0, float(gen.exponential(self.mttr)))
                end = min(horizon, clock + downtime)
                windows.append(OutageWindow(site=site, start=clock, end=end))
                clock = end
        return sorted(windows, key=lambda w: (w.start, w.site))

    def expected_availability(self) -> float:
        """Long-run fraction of time a site is up: MTBF / (MTBF + MTTR)."""
        return self.mtbf / (self.mtbf + self.mttr)
