"""CGSim reproduction: a simulation framework for large-scale distributed computing.

This package is a from-scratch Python reproduction of **CGSim** (SC'25 PMBS
workshop): a simulator for WLCG-scale computing grids built, in the original,
on top of SimGrid.  Here every layer is implemented in pure Python:

* :mod:`repro.des` -- the discrete-event kernel (SimGrid substitute).
* :mod:`repro.platform` -- hosts, links, zones, routing, flow-level network
  sharing and CPU models.
* :mod:`repro.config` -- the three JSON inputs (infrastructure, topology,
  execution parameters).
* :mod:`repro.workload` -- the standardized job structure, traces and
  synthetic PanDA-like workload generation.
* :mod:`repro.core` -- the simulation core: main-server sender actor, per-site
  receiver actors, data manager, metrics and the :class:`~repro.core.Simulator`
  facade.
* :mod:`repro.plugins` -- the allocation-policy plugin system with bundled
  policies.
* :mod:`repro.faults` -- fault injection: job failure models, site outage
  schedules and PanDA-style automatic retries.
* :mod:`repro.monitoring` -- event-level monitoring, SQLite/CSV output and the
  dashboard.
* :mod:`repro.calibration` -- the walltime/queue-time calibration framework
  with brute-force, random, Bayesian and CMA-ES optimizers.
* :mod:`repro.mldata` -- ML-ready event dataset assembly and a surrogate
  baseline.
* :mod:`repro.atlas` -- the ATLAS/WLCG case-study builders.
* :mod:`repro.experiments` -- parallel experiment sweeps: fan independent
  simulation runs (scenario grids, seed replications, calibration trials)
  across worker processes with deterministic derived seeding.
* :mod:`repro.scenarios` -- declarative scenario packs: whole studies (grid +
  workload + faults + data + execution + optional sweep/calibration) as
  single validated YAML/JSON files, discovered through a registry and run
  end-to-end by ``repro scenario run``.

Quickstart
----------
>>> from repro import generate_grid, SyntheticWorkloadGenerator, Simulator
>>> infra, topo = generate_grid(4, seed=1)
>>> jobs = SyntheticWorkloadGenerator(infra, seed=1).generate(100)
>>> result = Simulator(infra, topo).run(jobs)
>>> result.metrics.finished_jobs
100
"""

from repro.config import (
    ExecutionConfig,
    InfrastructureConfig,
    LinkConfig,
    MonitoringConfig,
    OutputConfig,
    SiteConfig,
    TopologyConfig,
    load_simulation_inputs,
)
from repro.config.generators import generate_grid, generate_sites
from repro.faults import FaultInjector, JobFailureModel, OutageWindow, SiteOutageModel
from repro.core import (
    DataManager,
    JobManager,
    MainServer,
    SessionProgress,
    SimulationMetrics,
    SimulationResult,
    SimulationSession,
    Simulator,
    SiteRuntime,
    compute_metrics,
)
from repro.monitoring import Dashboard, MonitoringCollector, SQLiteStore
from repro.plugins import AllocationPolicy, ResourceView, available_policies, create_policy
from repro.workload import Job, JobState, SyntheticWorkloadGenerator, WorkloadSpec, load_trace, save_trace
from repro.experiments import RunResult, RunSpec, SweepResult, SweepRunner, scenario_grid
from repro.scenarios import (
    ScenarioOutcome,
    ScenarioPack,
    available_scenario_packs,
    get_scenario_pack,
    load_scenario_pack,
    register_scenario_pack,
    run_scenario_pack,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "SiteConfig",
    "InfrastructureConfig",
    "LinkConfig",
    "TopologyConfig",
    "ExecutionConfig",
    "MonitoringConfig",
    "OutputConfig",
    "load_simulation_inputs",
    "generate_grid",
    "generate_sites",
    # workload
    "Job",
    "JobState",
    "SyntheticWorkloadGenerator",
    "WorkloadSpec",
    "load_trace",
    "save_trace",
    # core
    "Simulator",
    "SimulationSession",
    "SessionProgress",
    "SimulationResult",
    "SimulationMetrics",
    "compute_metrics",
    "MainServer",
    "SiteRuntime",
    "JobManager",
    "DataManager",
    # plugins
    "AllocationPolicy",
    "ResourceView",
    "available_policies",
    "create_policy",
    # fault injection
    "JobFailureModel",
    "SiteOutageModel",
    "OutageWindow",
    "FaultInjector",
    # monitoring
    "MonitoringCollector",
    "SQLiteStore",
    "Dashboard",
    # experiment sweeps
    "RunSpec",
    "RunResult",
    "SweepRunner",
    "SweepResult",
    "scenario_grid",
    # scenario packs
    "ScenarioPack",
    "ScenarioOutcome",
    "load_scenario_pack",
    "available_scenario_packs",
    "get_scenario_pack",
    "register_scenario_pack",
    "run_scenario_pack",
]
