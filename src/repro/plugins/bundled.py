"""Bundled allocation policies.

CGSim ships a simple example plugin out of the box and leaves richer policies
to users; this reproduction bundles a representative set so the scheduling
ablation benchmarks have something meaningful to compare:

* :class:`RoundRobinPolicy` -- cycle through eligible sites (the out-of-the-
  box example of the paper).
* :class:`RandomPolicy` -- uniform random eligible site.
* :class:`LeastLoadedPolicy` -- lowest current load fraction.
* :class:`WeightedCapacityPolicy` -- probability proportional to total cores
  (optionally scaled by core speed).
* :class:`DataAwarePolicy` -- prefer sites already holding the job's input
  data; fall back to least-loaded.
* :class:`PandaDispatcherPolicy` -- a PanDA-inspired heuristic balancing
  queue depth against site capacity, used to replicate the production
  dispatching behaviour during calibration.
* :class:`BackfillPolicy` -- least-loaded for wide jobs, but lets single-core
  jobs slip into sites with a few idle cores.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.plugins.base import AllocationPolicy, ResourceView
from repro.plugins.registry import register_policy
from repro.utils.rng import RandomSource
from repro.workload.job import Job

__all__ = [
    "RoundRobinPolicy",
    "RandomPolicy",
    "LeastLoadedPolicy",
    "WeightedCapacityPolicy",
    "DataAwarePolicy",
    "PandaDispatcherPolicy",
    "BackfillPolicy",
    "FollowTracePolicy",
]


@register_policy("round_robin")
class RoundRobinPolicy(AllocationPolicy):
    """Assign jobs to eligible sites in a fixed cyclic order (the paper's
    out-of-the-box example plugin)."""

    def __init__(self, **options) -> None:
        super().__init__(**options)
        self._cursor = 0

    def assign_job(self, job: Job, resources: ResourceView) -> Optional[str]:
        eligible = resources.sites_that_fit(job.cores)
        if not eligible:
            return None
        names = sorted(s.name for s in eligible)
        choice = names[self._cursor % len(names)]
        self._cursor += 1
        return choice

    def snapshot(self) -> dict:
        """Capture the cyclic cursor so a restored run resumes the rotation."""
        return {"cursor": self._cursor}

    def restore(self, state: dict) -> None:
        """Re-seat the cyclic cursor from a :meth:`snapshot` payload."""
        self._cursor = int(state.get("cursor", 0))


@register_policy("random")
class RandomPolicy(AllocationPolicy):
    """Assign each job to a uniformly random eligible site (seeded)."""

    def __init__(self, seed: int = 0, **options) -> None:
        super().__init__(seed=seed, **options)
        self._rng = RandomSource(seed).generator("random-policy")

    def assign_job(self, job: Job, resources: ResourceView) -> Optional[str]:
        eligible = sorted(s.name for s in resources.sites_that_fit(job.cores))
        if not eligible:
            return None
        return eligible[int(self._rng.integers(0, len(eligible)))]

    def snapshot(self) -> dict:
        """Capture the policy's RNG stream position for checkpointing."""
        from repro.utils.rng import generator_state

        return {"rng": generator_state(self._rng)}

    def restore(self, state: dict) -> None:
        """Re-seat the policy's RNG stream from a :meth:`snapshot` payload."""
        from repro.utils.rng import restore_generator_state

        restore_generator_state(self._rng, state["rng"])

    def reseed(self, seed: int) -> None:
        """Re-derive the choice stream from ``seed`` (fork-branch divergence)."""
        self._rng = RandomSource(int(seed)).generator("random-policy")


@register_policy("least_loaded")
class LeastLoadedPolicy(AllocationPolicy):
    """Assign each job to the eligible site with the lowest load fraction."""

    def assign_job(self, job: Job, resources: ResourceView) -> Optional[str]:
        best = resources.least_loaded(job.cores)
        return best.name if best is not None else None


@register_policy("weighted_capacity")
class WeightedCapacityPolicy(AllocationPolicy):
    """Probabilistic assignment proportional to site capacity.

    ``use_speed=True`` weights by aggregate speed (cores x per-core speed)
    instead of plain core count.
    """

    def __init__(self, seed: int = 0, use_speed: bool = False, **options) -> None:
        super().__init__(seed=seed, use_speed=use_speed, **options)
        self.use_speed = bool(use_speed)
        self._rng = RandomSource(seed).generator("weighted-capacity")

    def assign_job(self, job: Job, resources: ResourceView) -> Optional[str]:
        eligible = sorted(resources.sites_that_fit(job.cores), key=lambda s: s.name)
        if not eligible:
            return None
        if self.use_speed:
            weights = np.array([s.total_cores * s.core_speed for s in eligible], dtype=float)
        else:
            weights = np.array([s.total_cores for s in eligible], dtype=float)
        total = weights.sum()
        if total <= 0:
            return eligible[0].name
        index = int(self._rng.choice(len(eligible), p=weights / total))
        return eligible[index].name

    def snapshot(self) -> dict:
        """Capture the policy's RNG stream position for checkpointing."""
        from repro.utils.rng import generator_state

        return {"rng": generator_state(self._rng)}

    def restore(self, state: dict) -> None:
        """Re-seat the policy's RNG stream from a :meth:`snapshot` payload."""
        from repro.utils.rng import restore_generator_state

        restore_generator_state(self._rng, state["rng"])

    def reseed(self, seed: int) -> None:
        """Re-derive the weighting stream from ``seed`` (fork-branch divergence)."""
        self._rng = RandomSource(int(seed)).generator("weighted-capacity")


@register_policy("data_aware")
class DataAwarePolicy(AllocationPolicy):
    """Prefer sites that already hold the job's input dataset.

    The job's ``attributes["dataset"]`` (when present) names the dataset it
    reads; sites whose storage holds a replica and that can fit the job win.
    Otherwise the policy falls back to the least-loaded eligible site, which
    keeps behaviour sensible for jobs without data affinity.
    """

    def assign_job(self, job: Job, resources: ResourceView) -> Optional[str]:
        dataset = job.attributes.get("dataset")
        if dataset is not None:
            holders = [
                s
                for s in resources.sites_that_fit(job.cores)
                if dataset in s.resident_data
            ]
            if holders:
                return min(holders, key=lambda s: (s.load_fraction, s.backlog, s.name)).name
        best = resources.least_loaded(job.cores)
        return best.name if best is not None else None


@register_policy("panda_dispatcher")
class PandaDispatcherPolicy(AllocationPolicy):
    """PanDA-inspired dispatching heuristic.

    Production PanDA brokers jobs by comparing each queue's backlog with its
    processing capacity: sites with a short backlog relative to how fast they
    drain it receive the next job.  The score used here is::

        expected_wait(site) = backlog_cores / (total_cores * relative_speed)

    The eligible site with the smallest expected wait wins; ties break by
    name for determinism.  ``respect_target=True`` (used when replaying
    historical traces during calibration) sends each job to its recorded
    production site whenever that site exists.
    """

    def __init__(self, respect_target: bool = False, **options) -> None:
        super().__init__(respect_target=respect_target, **options)
        self.respect_target = bool(respect_target)
        self._mean_speed: Optional[float] = None

    def initialize(self, platform_description: dict) -> None:
        zones = platform_description.get("zones", {})
        speeds = [z["mean_core_speed"] for z in zones.values() if z.get("mean_core_speed")]
        self._mean_speed = float(np.mean(speeds)) if speeds else None

    def assign_job(self, job: Job, resources: ResourceView) -> Optional[str]:
        if self.respect_target and job.target_site and job.target_site in resources:
            target = resources.site(job.target_site)
            if target.total_cores >= job.cores:
                return target.name
        eligible = resources.sites_that_fit(job.cores)
        if not eligible:
            return None
        reference_speed = self._mean_speed or 1.0

        def expected_wait(site) -> float:
            backlog_cores = site.backlog * max(1, job.cores)
            relative_speed = site.core_speed / reference_speed if reference_speed else 1.0
            capacity = max(site.total_cores, 1) * max(relative_speed, 1e-9)
            return backlog_cores / capacity

        return min(eligible, key=lambda s: (expected_wait(s), s.name)).name


@register_policy("backfill")
class BackfillPolicy(AllocationPolicy):
    """Least-loaded placement with single-core backfilling.

    Multi-core jobs go to the least-loaded site that can ever fit them;
    single-core jobs preferentially fill sites that currently have idle cores
    (even heavily loaded ones), which keeps narrow jobs from queueing behind
    wide ones.
    """

    def assign_job(self, job: Job, resources: ResourceView) -> Optional[str]:
        if job.cores == 1:
            with_capacity = resources.sites_with_capacity(1)
            if with_capacity:
                return min(
                    with_capacity, key=lambda s: (s.backlog, -s.available_cores, s.name)
                ).name
        best = resources.least_loaded(job.cores)
        return best.name if best is not None else None


@register_policy("follow_trace")
class FollowTracePolicy(AllocationPolicy):
    """Send every job to its recorded production site (calibration replay).

    Jobs without a ``target_site`` (or whose target does not exist in the
    simulated platform) fall back to the least-loaded eligible site so that
    replays of partially-known traces still complete.
    """

    def assign_job(self, job: Job, resources: ResourceView) -> Optional[str]:
        if job.target_site and job.target_site in resources:
            site = resources.site(job.target_site)
            if site.total_cores >= job.cores:
                return site.name
        best = resources.least_loaded(job.cores)
        return best.name if best is not None else None
