"""Plugin system: allocation policies plus the data-layer plugin families.

One of CGSim's headline features is that users can test custom workload
allocation algorithms through a plugin mechanism without modifying the
simulator core.  The original implements plugins as C++ shared libraries
inheriting from an installed abstract class; this reproduction keeps the same
contract in Python and generalises it to *families* of plugins:

* :class:`~repro.plugins.base.AllocationPolicy` -- the abstract base class
  with the hooks the paper's Figure 2 exposes (``assign_job`` is the one a
  plugin *must* implement; resource information is supplied by the simulator
  through :class:`~repro.plugins.base.ResourceView`).
* :mod:`~repro.plugins.registry` -- family-scoped named registration
  (``allocation``, ``eviction``, ``replication``) plus dynamic
  ``"module:ClassName"`` loading and ``cgsim_repro.plugins`` entry-point
  discovery for user plugins referenced from configuration.
* Bundled example policies: round-robin, random, least-loaded,
  weighted-capacity, data-locality-aware, a PanDA-style dispatcher and a
  backfilling variant.  The eviction/replication families bundled with
  :mod:`repro.data` register here too.

See ``docs/plugins.md`` for the plugin-authoring guide.
"""

from repro.plugins.base import AllocationPolicy, ResourceView, SiteStatus
from repro.plugins.registry import (
    available_plugins,
    available_policies,
    create_plugin,
    create_policy,
    load_entry_point_plugins,
    load_plugin_class,
    load_policy_class,
    plugin_families,
    register_family,
    register_plugin,
    register_policy,
)

# Importing the bundled policy modules registers them with the registry.
from repro.plugins import bundled as _bundled  # noqa: F401  (registration side effect)
from repro.plugins.bundled import (
    BackfillPolicy,
    DataAwarePolicy,
    LeastLoadedPolicy,
    PandaDispatcherPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    WeightedCapacityPolicy,
)

__all__ = [
    "AllocationPolicy",
    "ResourceView",
    "SiteStatus",
    "register_policy",
    "create_policy",
    "load_policy_class",
    "available_policies",
    "register_family",
    "register_plugin",
    "create_plugin",
    "load_plugin_class",
    "available_plugins",
    "plugin_families",
    "load_entry_point_plugins",
    "RoundRobinPolicy",
    "RandomPolicy",
    "LeastLoadedPolicy",
    "WeightedCapacityPolicy",
    "DataAwarePolicy",
    "PandaDispatcherPolicy",
    "BackfillPolicy",
]
