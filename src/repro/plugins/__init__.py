"""Allocation-policy plugin system.

One of CGSim's headline features is that users can test custom workload
allocation algorithms through a plugin mechanism without modifying the
simulator core.  The original implements plugins as C++ shared libraries
inheriting from an installed abstract class; this reproduction keeps the same
contract in Python:

* :class:`~repro.plugins.base.AllocationPolicy` -- the abstract base class
  with the hooks the paper's Figure 2 exposes (``assign_job`` is the one a
  plugin *must* implement; resource information is supplied by the simulator
  through :class:`~repro.plugins.base.ResourceView`).
* :mod:`~repro.plugins.registry` -- named registration of bundled policies
  plus dynamic ``"module:ClassName"`` loading for user plugins referenced
  from the execution configuration.
* Bundled example policies: round-robin, random, least-loaded,
  weighted-capacity, data-locality-aware, a PanDA-style dispatcher and a
  backfilling variant.
"""

from repro.plugins.base import AllocationPolicy, ResourceView, SiteStatus
from repro.plugins.registry import (
    available_policies,
    create_policy,
    load_policy_class,
    register_policy,
)

# Importing the bundled policy modules registers them with the registry.
from repro.plugins import bundled as _bundled  # noqa: F401  (registration side effect)
from repro.plugins.bundled import (
    BackfillPolicy,
    DataAwarePolicy,
    LeastLoadedPolicy,
    PandaDispatcherPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    WeightedCapacityPolicy,
)

__all__ = [
    "AllocationPolicy",
    "ResourceView",
    "SiteStatus",
    "register_policy",
    "create_policy",
    "load_policy_class",
    "available_policies",
    "RoundRobinPolicy",
    "RandomPolicy",
    "LeastLoadedPolicy",
    "WeightedCapacityPolicy",
    "DataAwarePolicy",
    "PandaDispatcherPolicy",
    "BackfillPolicy",
]
