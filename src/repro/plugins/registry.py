"""Plugin registry and dynamic loading.

Bundled policies register themselves by name; user plugins are referenced
from the execution configuration as ``"package.module:ClassName"`` and loaded
dynamically -- the Python analogue of CGSim loading a user-built shared
library given in the input configuration.
"""

from __future__ import annotations

import importlib
from typing import Dict, List, Type

from repro.plugins.base import AllocationPolicy
from repro.utils.errors import SchedulingError

__all__ = ["register_policy", "create_policy", "load_policy_class", "available_policies"]

_REGISTRY: Dict[str, Type[AllocationPolicy]] = {}


def register_policy(name: str):
    """Class decorator registering an :class:`AllocationPolicy` under ``name``.

    >>> @register_policy("my_policy")
    ... class MyPolicy(AllocationPolicy):
    ...     def assign_job(self, job, resources):
    ...         return resources.site_names[0]
    """

    def decorator(cls: Type[AllocationPolicy]) -> Type[AllocationPolicy]:
        if not (isinstance(cls, type) and issubclass(cls, AllocationPolicy)):
            raise SchedulingError(f"{cls!r} is not an AllocationPolicy subclass")
        if name in _REGISTRY and _REGISTRY[name] is not cls:
            raise SchedulingError(f"policy name {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def available_policies() -> List[str]:
    """Names of every registered (bundled or user-registered) policy."""
    return sorted(_REGISTRY)


def load_policy_class(spec: str) -> Type[AllocationPolicy]:
    """Resolve ``spec`` to a policy class.

    ``spec`` is either a registered name (``"round_robin"``) or a dynamic
    ``"module.path:ClassName"`` reference to a user plugin.
    """
    if spec in _REGISTRY:
        return _REGISTRY[spec]
    if ":" in spec:
        module_name, _, class_name = spec.partition(":")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise SchedulingError(f"cannot import plugin module {module_name!r}: {exc}") from exc
        try:
            cls = getattr(module, class_name)
        except AttributeError:
            raise SchedulingError(
                f"module {module_name!r} has no class {class_name!r}"
            ) from None
        if not (isinstance(cls, type) and issubclass(cls, AllocationPolicy)):
            raise SchedulingError(
                f"{module_name}:{class_name} is not an AllocationPolicy subclass"
            )
        return cls
    raise SchedulingError(
        f"unknown policy {spec!r}; available: {available_policies()} "
        "(or use 'module.path:ClassName')"
    )


def create_policy(spec: str, **options) -> AllocationPolicy:
    """Instantiate the policy referenced by ``spec`` with ``options``."""
    return load_policy_class(spec)(**options)
