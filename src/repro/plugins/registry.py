"""Plugin registry and dynamic loading.

The registry manages *families* of plugins.  Each family pairs a name (e.g.
``"allocation"``) with an abstract base class; concrete plugins register
under a family with the :func:`register_plugin` decorator, and configuration
files reference them either by registered name or as a dynamic
``"package.module:ClassName"`` spec -- the Python analogue of CGSim loading
a user-built shared library given in the input configuration.

Three families ship with the package:

* ``"allocation"`` -- :class:`~repro.plugins.base.AllocationPolicy`
  (where does each job run);
* ``"eviction"`` -- :class:`~repro.data.eviction.EvictionPolicy`
  (which cached dataset a full site cache drops);
* ``"replication"`` -- :class:`~repro.data.replication.ReplicationStrategy`
  (where initial dataset replicas are placed).

The original, allocation-only helpers (:func:`register_policy`,
:func:`create_policy`, ...) remain as thin wrappers over the family API.
"""

from __future__ import annotations

import importlib
from typing import Dict, List, Optional, Type

from repro.plugins.base import AllocationPolicy
from repro.utils.errors import SchedulingError

__all__ = [
    "register_family",
    "register_plugin",
    "load_plugin_class",
    "create_plugin",
    "available_plugins",
    "plugin_families",
    "load_entry_point_plugins",
    "register_policy",
    "create_policy",
    "load_policy_class",
    "available_policies",
]

#: Entry-point group third-party distributions use to auto-register plugins.
PLUGIN_ENTRY_POINT_GROUP = "cgsim_repro.plugins"

#: family name -> required base class.
_FAMILIES: Dict[str, type] = {}
#: family name -> {plugin name -> plugin class}.
_REGISTRY: Dict[str, Dict[str, type]] = {}


# -- family management -------------------------------------------------------------
def register_family(family: str, base: type) -> None:
    """Declare a plugin ``family`` whose members must subclass ``base``.

    Registering the same family with the same base class twice is a no-op,
    so modules can idempotently declare the family they populate; changing
    the base class of an existing family is an error.
    """
    existing = _FAMILIES.get(family)
    if existing is not None and existing is not base:
        raise SchedulingError(
            f"plugin family {family!r} already registered with base {existing.__name__}"
        )
    _FAMILIES[family] = base
    _REGISTRY.setdefault(family, {})


def plugin_families() -> List[str]:
    """Names of every declared plugin family, sorted (``allocation``,
    ``eviction`` and ``replication`` ship with the package)."""
    _ensure_families_loaded()
    return sorted(_FAMILIES)


def _family_base(family: str) -> type:
    try:
        return _FAMILIES[family]
    except KeyError:
        raise SchedulingError(
            f"unknown plugin family {family!r}; families: {plugin_families()}"
        ) from None


def _ensure_families_loaded() -> None:
    """Import the modules whose import side effect registers bundled plugins."""
    # Allocation policies register on ``repro.plugins`` import (this package);
    # the data-layer families live in ``repro.data`` which imports us, so the
    # import here must stay lazy to avoid a cycle.
    import repro.data  # noqa: F401  (registration side effect)


# -- registration ------------------------------------------------------------------
def register_plugin(family: str, name: str):
    """Class decorator registering a plugin class under ``family``/``name``.

    The class must subclass the family's declared base class; its ``name``
    attribute is stamped with the registered name.

    >>> from repro.plugins.registry import register_plugin
    >>> @register_plugin("allocation", "my_policy")
    ... class MyPolicy(AllocationPolicy):
    ...     def assign_job(self, job, resources):
    ...         return resources.site_names[0]
    """
    base = _family_base(family)

    def decorator(cls: type) -> type:
        if not (isinstance(cls, type) and issubclass(cls, base)):
            raise SchedulingError(
                f"{cls!r} is not a {base.__name__} subclass (family {family!r})"
            )
        registry = _REGISTRY[family]
        if name in registry and registry[name] is not cls:
            raise SchedulingError(
                f"plugin name {name!r} already registered in family {family!r}"
            )
        cls.name = name
        registry[name] = cls
        return cls

    return decorator


def available_plugins(family: str) -> List[str]:
    """Names of every registered plugin in ``family``, sorted (bundled
    plugins plus anything user code registered in this process)."""
    if family not in _FAMILIES:
        _ensure_families_loaded()
    _family_base(family)  # raises for unknown families
    return sorted(_REGISTRY[family])


def load_plugin_class(family: str, spec: str) -> type:
    """Resolve ``spec`` to a plugin class of ``family``.

    ``spec`` is either a registered name (``"lru"``) or a dynamic
    ``"module.path:ClassName"`` reference to a user plugin; dynamically
    loaded classes are still checked against the family's base class.
    """
    if family not in _FAMILIES or (":" not in spec and spec not in _REGISTRY.get(family, {})):
        _ensure_families_loaded()
    base = _family_base(family)
    registry = _REGISTRY[family]
    if spec in registry:
        return registry[spec]
    if ":" in spec:
        module_name, _, class_name = spec.partition(":")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise SchedulingError(f"cannot import plugin module {module_name!r}: {exc}") from exc
        try:
            cls = getattr(module, class_name)
        except AttributeError:
            raise SchedulingError(
                f"module {module_name!r} has no class {class_name!r}"
            ) from None
        if not (isinstance(cls, type) and issubclass(cls, base)):
            raise SchedulingError(
                f"{module_name}:{class_name} is not a {base.__name__} subclass "
                f"(family {family!r})"
            )
        return cls
    raise SchedulingError(
        f"unknown {family} plugin {spec!r}; available: {available_plugins(family)} "
        "(or use 'module.path:ClassName')"
    )


def create_plugin(family: str, spec: str, **options):
    """Instantiate the ``family`` plugin referenced by ``spec`` with ``options``."""
    return load_plugin_class(family, spec)(**options)


def load_entry_point_plugins(group: str = PLUGIN_ENTRY_POINT_GROUP) -> List[str]:
    """Load third-party plugin modules advertised through entry points.

    Each entry point in ``group`` names a module (or object) whose import
    registers plugins via :func:`register_plugin`.  Returns the entry-point
    names that loaded; broken entry points raise :class:`SchedulingError`
    naming the offender instead of crashing with a bare import error.
    """
    from importlib import metadata

    loaded: List[str] = []
    try:
        entry_points = metadata.entry_points()
        if hasattr(entry_points, "select"):  # Python >= 3.10
            selected = entry_points.select(group=group)
        else:  # pragma: no cover - legacy API
            selected = entry_points.get(group, [])
    except Exception as exc:  # pragma: no cover - metadata backend failure
        raise SchedulingError(f"cannot enumerate entry points: {exc}") from exc
    for entry_point in selected:
        try:
            entry_point.load()
        except Exception as exc:
            raise SchedulingError(
                f"entry point {entry_point.name!r} ({group}) failed to load: {exc}"
            ) from exc
        loaded.append(entry_point.name)
    return loaded


# -- allocation-policy compatibility wrappers ---------------------------------------
register_family("allocation", AllocationPolicy)


def register_policy(name: str):
    """Class decorator registering an :class:`AllocationPolicy` under ``name``.

    >>> @register_policy("my_other_policy")
    ... class MyPolicy(AllocationPolicy):
    ...     def assign_job(self, job, resources):
    ...         return resources.site_names[0]
    """
    return register_plugin("allocation", name)


def available_policies() -> List[str]:
    """Names of every registered (bundled or user-registered) allocation policy."""
    return sorted(_REGISTRY["allocation"])


def load_policy_class(spec: str) -> Type[AllocationPolicy]:
    """Resolve ``spec`` to an allocation-policy class.

    ``spec`` is either a registered name (``"round_robin"``) or a dynamic
    ``"module.path:ClassName"`` reference to a user plugin.
    """
    try:
        return load_plugin_class("allocation", spec)
    except SchedulingError as exc:
        # Preserve the historical error message shape for unknown names.
        if ":" not in spec and "unknown allocation plugin" in str(exc):
            raise SchedulingError(
                f"unknown policy {spec!r}; available: {available_policies()} "
                "(or use 'module.path:ClassName')"
            ) from None
        raise


def create_policy(spec: str, **options) -> AllocationPolicy:
    """Instantiate the allocation policy referenced by ``spec`` with ``options``."""
    return load_policy_class(spec)(**options)
