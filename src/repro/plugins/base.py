"""Abstract allocation-policy base class and the resource view it sees.

This mirrors the abstract class CGSim installs for plugin developers
(paper Figure 2): the plugin's job is to fill in the *allocation site* of
every incoming job, using the standardized job structure and the resource
information the simulator exposes.

A policy never touches simulator internals: it sees a
:class:`ResourceView` -- an immutable-by-convention snapshot of per-site
capacity and queue state refreshed by the main server before every dispatch
round -- and returns a site name (or ``None`` to leave the job pending).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.utils.errors import SchedulingError
from repro.workload.job import Job

__all__ = ["SiteStatus", "ResourceView", "AllocationPolicy"]


@dataclass
class SiteStatus:
    """Dynamic, per-site information exposed to allocation policies."""

    name: str
    total_cores: int
    available_cores: int
    core_speed: float
    pending_jobs: int
    running_jobs: int
    assigned_jobs: int
    finished_jobs: int
    failed_jobs: int = 0
    #: Names of datasets/files whose replicas the site's storage holds.
    resident_data: frozenset = field(default_factory=frozenset)
    #: Free-form site properties (tier, cloud, country).
    properties: Dict[str, str] = field(default_factory=dict)

    @property
    def load_fraction(self) -> float:
        """Fraction of cores currently busy (0 when the site has no cores)."""
        if self.total_cores == 0:
            return 0.0
        return 1.0 - self.available_cores / self.total_cores

    @property
    def backlog(self) -> int:
        """Jobs waiting at or assigned to the site but not yet finished."""
        return self.pending_jobs + self.assigned_jobs + self.running_jobs

    @property
    def normalized_backlog(self) -> float:
        """Outstanding jobs per core -- a drain-time proxy.

        Instantaneous core occupancy alone is a misleading load signal: a
        site whose few free cores are stuck behind a wide job at the head of
        its FIFO queue looks "less loaded" than a fully-busy site even while
        its queue grows without bound.  Normalising the backlog by capacity
        avoids that feedback loop.
        """
        if self.total_cores == 0:
            return float("inf") if self.backlog else 0.0
        return self.backlog / self.total_cores


class ResourceView:
    """Snapshot of the whole grid handed to a policy's ``assign_job``.

    This is the reproduction of CGSim's ``getResourceInformation`` hook: the
    simulator builds/refreshes one of these before each dispatch round and
    the policy reads it (it must not mutate it).
    """

    def __init__(self, sites: Dict[str, SiteStatus], time: float = 0.0) -> None:
        self._sites = dict(sites)
        self.time = time

    # -- read access ---------------------------------------------------------
    @property
    def site_names(self) -> List[str]:
        """All site names, in platform registration order."""
        return list(self._sites)

    @property
    def sites(self) -> List[SiteStatus]:
        """All site status records."""
        return list(self._sites.values())

    def site(self, name: str) -> SiteStatus:
        """Status of one site (raises :class:`SchedulingError` if unknown)."""
        try:
            return self._sites[name]
        except KeyError:
            raise SchedulingError(f"unknown site {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._sites

    def __len__(self) -> int:
        return len(self._sites)

    # -- common queries used by bundled policies ---------------------------------
    def sites_with_capacity(self, cores: int) -> List[SiteStatus]:
        """Sites that currently have at least ``cores`` free cores."""
        return [s for s in self._sites.values() if s.available_cores >= cores]

    def sites_that_fit(self, cores: int) -> List[SiteStatus]:
        """Sites whose *total* capacity can ever run a ``cores``-core job."""
        return [s for s in self._sites.values() if s.total_cores >= cores]

    def least_loaded(self, cores: int = 1) -> Optional[SiteStatus]:
        """The eligible site with the least outstanding work per core.

        The primary key is the capacity-normalised backlog (a drain-time
        proxy); instantaneous core occupancy and the site name break ties.
        Ranking by occupancy alone would send every job to whichever site has
        a few idle cores stuck behind a wide job, starving the rest of the
        grid.
        """
        candidates = self.sites_that_fit(cores)
        if not candidates:
            return None
        return min(
            candidates, key=lambda s: (s.normalized_backlog, s.load_fraction, s.name)
        )

    def total_available_cores(self) -> int:
        """Free cores across the whole grid."""
        return sum(s.available_cores for s in self._sites.values())


class AllocationPolicy(abc.ABC):
    """Base class every allocation-policy plugin inherits from.

    Subclasses must implement :meth:`assign_job`; the other hooks have
    sensible no-op defaults.  The simulation core guarantees the following
    call order:

    1. :meth:`initialize` once, before any job is dispatched, with the static
       platform description (the ``get_resource_information`` equivalent).
    2. :meth:`assign_job` for every job the main server tries to place
       (including re-tries of pending jobs), with a fresh
       :class:`ResourceView`.
    3. :meth:`on_job_finished` whenever a job reaches a terminal state.
    4. :meth:`finalize` once, when the simulation ends.
    """

    #: Registry name; filled in by :func:`repro.plugins.registry.register_policy`.
    name: str = "custom"

    def __init__(self, **options) -> None:
        #: Free-form options from the execution configuration.
        self.options = dict(options)

    # -- mandatory hook -------------------------------------------------------
    @abc.abstractmethod
    def assign_job(self, job: Job, resources: ResourceView) -> Optional[str]:
        """Return the name of the site ``job`` should run at.

        Returning ``None`` means "no suitable resource right now"; the main
        server then parks the job on its pending list and retries later, as
        described in the paper's workflow.
        """

    # -- optional hooks ---------------------------------------------------------
    def initialize(self, platform_description: dict) -> None:
        """Called once with the static platform description before dispatching."""

    def on_job_finished(self, job: Job) -> None:
        """Called when a job reaches a terminal state (finished or failed)."""

    def finalize(self) -> None:
        """Called once when the simulation completes."""

    # -- checkpoint hooks -----------------------------------------------------
    def snapshot(self) -> dict:
        """Capture the policy's checkpointable state (default: none).

        Part of the :class:`repro.state.Snapshottable` protocol.  Stateless
        policies inherit this empty default; stateful ones (cursors, RNG
        streams, learned weights) override it together with :meth:`restore`
        so checkpoints can freeze and re-seat their decision state exactly.
        """
        return {}

    def restore(self, state: dict) -> None:
        """Re-seat the policy onto a :meth:`snapshot` payload (default: no-op).

        Stateful subclasses override this to stamp their cursors/RNG state
        back; the base implementation accepts any payload silently so
        stateless policies satisfy the protocol without boilerplate.
        """

    def reseed(self, seed: int) -> None:
        """Re-derive the policy's random streams from ``seed`` (default: no-op).

        Called on fork branches so each branch explores an independent
        future: subclasses owning generators rebuild them from the given
        seed; deterministic policies have nothing to reseed and inherit this
        no-op.
        """

    # -- helpers -------------------------------------------------------------
    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} options={self.options}>"
