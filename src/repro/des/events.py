"""Event types for the discrete-event kernel.

An :class:`Event` moves through three states: *pending* (created, not yet
scheduled), *triggered* (given a value and placed on the environment's event
calendar) and *processed* (its callbacks have run).  Processes are themselves
events -- a :class:`Process` triggers when its underlying generator finishes
-- which is what makes ``yield env.process(...)`` and condition events
compose naturally.

Hot-path notes
--------------
Every class here declares ``__slots__``: simulations churn through millions
of :class:`Timeout` and :class:`Event` instances, and slotted attribute
storage removes the per-instance ``__dict__`` allocation and speeds up every
attribute access in :meth:`Process._resume` and :meth:`Environment.step`.
:meth:`Process._resume` additionally caches the generator's bound
``send``/``throw`` methods and tests event state through direct attribute
reads (``callbacks is None``) instead of properties.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, List, Optional

from repro.utils.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.des.core import Environment

__all__ = ["Event", "Timeout", "Process", "Interrupt", "Condition", "AllOf", "AnyOf"]

#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Interrupt(Exception):
    """Exception thrown into a process when another process interrupts it.

    The interrupting cause is available as :attr:`cause`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening at a point in simulated time that processes can wait on.

    Parameters
    ----------
    env:
        The environment the event belongs to.

    Notes
    -----
    * ``succeed(value)`` triggers the event successfully; waiting processes
      receive ``value`` as the result of their ``yield``.
    * ``fail(exception)`` triggers the event as failed; waiting processes see
      the exception re-raised at their ``yield`` statement.  A failed event
      that nobody waits on raises at the environment level when processed,
      so errors never pass silently.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set to True by a callback (or the kernel) when a failure was handled.
        self.defused = False

    # -- state inspection --------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value and scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (only valid once triggered)."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event triggered with (or the failure exception)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` and schedule it."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception`` and schedule it."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of another (already triggered) event onto this one."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition -------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_event, [self, other])

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after ``delay`` simulated seconds.

    ``Environment.timeout()`` is the preferred constructor: it recycles
    processed ``Timeout`` objects from a per-environment pool and schedules
    them without going through the generic :meth:`Environment.schedule`
    indirection.  Direct construction stays supported and behaves
    identically.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        env.schedule(self, delay=self.delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks = [process._resume_cb]
        env.schedule(self, priority=0)


class Process(Event):
    """A running process: wraps a generator and is itself a waitable event.

    The wrapped generator yields :class:`Event` instances; each time one of
    the yielded events is processed the generator is resumed with that
    event's value (or the failure exception is thrown into it).  When the
    generator returns, the process event succeeds with the return value.
    """

    __slots__ = ("_generator", "_target", "_send", "_throw", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process target must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        # Bound methods cached once; _resume runs once per event processed
        # and would otherwise allocate a fresh method object per registration.
        self._send = generator.send
        self._throw = generator.throw
        self._resume_cb = self._resume
        Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on (``None`` if running)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current ``yield``.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event first.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        # Detach from whatever we were waiting for so the original target does
        # not resume us a second time, then resume immediately with the
        # interrupt as the outcome.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._target = None
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks = [self._resume_cb]
        self.env.schedule(interrupt_event, priority=0)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env._active_process = self
        send = self._send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    # The exception is considered handled once thrown into
                    # the waiting process.
                    event.defused = True
                    next_event = self._throw(event._value)
            except StopIteration as stop:
                self._target = None
                env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate via event
                self._target = None
                env._active_process = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                env._active_process = None
                raise SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
            if next_event.env is not env:
                env._active_process = None
                raise SimulationError("cannot wait on an event from another environment")

            waiters = next_event.callbacks
            if waiters is None:
                # Already processed: loop immediately with its outcome.
                event = next_event
                continue
            # Not yet processed: register ourselves and go to sleep.
            self._target = next_event
            waiters.append(self._resume_cb)
            break
        env._active_process = None

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process({name}) {'done' if self.triggered else 'alive'}>"


class Condition(Event):
    """An event that triggers when a boolean combination of events triggers.

    Used through :class:`AllOf` / :class:`AnyOf` or the ``&`` / ``|``
    operators on events.  The condition's value is a dict mapping each
    *triggered* constituent event to its value.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("all condition events must share one environment")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        """Evaluator for :class:`AllOf`: every event has triggered."""
        return len(events) == count

    @staticmethod
    def any_event(events: List[Event], count: int) -> bool:
        """Evaluator for :class:`AnyOf`: at least one event has triggered."""
        return count > 0 or not events

    def _collect_values(self) -> dict:
        # Only events that have actually been processed count as "happened";
        # a Timeout is *triggered* at creation but has not occurred yet.
        return {event: event._value for event in self._events if event.processed}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Condition that triggers once *all* of ``events`` have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that triggers once *any* of ``events`` has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_event, events)
