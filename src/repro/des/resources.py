"""Counted resources for the discrete-event kernel.

:class:`Resource` models a pool of identical capacity units (e.g. CPU cores,
batch slots) with FIFO queueing; :class:`PriorityResource` orders waiters by a
priority value; :class:`Container` models a divisible quantity (e.g. bytes of
storage) with ``put``/``get`` of arbitrary amounts.

Requests are events.  ``with resource.request() as req: yield req`` acquires a
unit and releases it automatically on exit; explicit ``release()`` is also
supported for long-lived holds spanning several process steps.

Hot-path notes
--------------
Waiter queues are deques (:class:`Resource`) or heaps
(:class:`PriorityResource`) with O(1)/O(log n) head operations, and
cancellation is *lazy*: a withdrawn request is only flagged and skipped when
it reaches the head, so ``cancel()`` never scans the queue.  All event
subclasses declare ``__slots__`` (see :mod:`repro.des.events`).
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import TYPE_CHECKING

from repro.des.events import Event
from repro.utils.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment

__all__ = ["Request", "Release", "Resource", "PriorityResource", "Container"]


class Request(Event):
    """A pending acquisition of one unit (or ``amount`` units) of a resource."""

    __slots__ = ("resource", "amount", "priority", "time", "_cancelled")

    def __init__(self, resource: "Resource", amount: int = 1, priority: float = 0.0) -> None:
        super().__init__(resource.env)
        if amount < 1:
            raise SimulationError(f"request amount must be >= 1, got {amount}")
        if amount > resource.capacity:
            raise SimulationError(
                f"request for {amount} units exceeds resource capacity {resource.capacity}"
            )
        self.resource = resource
        self.amount = int(amount)
        self.priority = priority
        self.time = resource.env.now
        self._cancelled = False
        resource._add_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the units if granted, or withdraw the request if still queued."""
        self.resource._cancel(self)


class Release(Event):
    """An (immediately successful) release of a previously granted request."""

    __slots__ = ("request",)

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.env)
        self.request = request
        resource._do_release(request)
        self.succeed()


class Resource:
    """A pool of ``capacity`` identical units with FIFO waiting.

    Parameters
    ----------
    env:
        The owning environment.
    capacity:
        Number of units in the pool (>= 1).
    """

    __slots__ = ("env", "capacity", "_in_use", "_waiting", "_queued", "_granted", "_seq")

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self._in_use = 0
        #: Waiters in grant order; cancelled entries are skipped lazily.
        self._waiting = deque()
        #: Live (non-cancelled, ungranted) waiter count.
        self._queued = 0
        self._granted: set = set()
        #: Tie-break counter for PriorityResource heap entries.
        self._seq = 0

    # -- public API ---------------------------------------------------------
    @property
    def count(self) -> int:
        """Units currently granted."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests still waiting."""
        return self._queued

    def request(self, amount: int = 1, priority: float = 0.0) -> Request:
        """Ask for ``amount`` units; returns an event that triggers when granted."""
        return Request(self, amount=amount, priority=priority)

    def release(self, request: Request) -> Release:
        """Return the units held by ``request`` to the pool."""
        return Release(self, request)

    # -- waiter queue (overridden by PriorityResource) -------------------------
    def _push_waiter(self, request: Request) -> None:
        self._waiting.append(request)

    def _head_waiter(self):
        """The next request in grant order, dropping cancelled entries (None if empty)."""
        waiting = self._waiting
        while waiting:
            head = waiting[0]
            if head._cancelled:
                waiting.popleft()
            else:
                return head
        return None

    def _pop_waiter(self) -> None:
        self._waiting.popleft()

    # -- internal machinery ---------------------------------------------------
    def _add_request(self, request: Request) -> None:
        self._push_waiter(request)
        self._queued += 1
        self._trigger_waiters()

    def _do_release(self, request: Request) -> None:
        if request in self._granted:
            self._granted.discard(request)
            self._in_use -= request.amount
        self._trigger_waiters()

    def _cancel(self, request: Request) -> None:
        if request in self._granted:
            self._do_release(request)
        elif not request.triggered and not request._cancelled:
            # Lazy cancellation: flag the entry; the queue drops it when it
            # surfaces at the head.
            request._cancelled = True
            self._queued -= 1

    def _trigger_waiters(self) -> None:
        # Grant strictly in queue order; a large request at the head blocks
        # smaller ones behind it (no starvation of wide requests).
        while True:
            head = self._head_waiter()
            if head is None:
                return
            if head.amount > self.capacity - self._in_use:
                return
            self._pop_waiter()
            self._queued -= 1
            self._in_use += head.amount
            self._granted.add(head)
            head.succeed()

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} capacity={self.capacity} in_use={self._in_use} "
            f"queued={self._queued}>"
        )


class PriorityResource(Resource):
    """A :class:`Resource` whose waiting queue is ordered by ``priority``.

    Lower priority values are served first; ties are broken by request time
    and then insertion order, so behaviour is deterministic.  The queue is a
    heap, so adding a waiter costs O(log n) instead of the O(n log n)
    re-sort a sorted list would need.
    """

    __slots__ = ()

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._waiting: list = []

    def _push_waiter(self, request: Request) -> None:
        seq = self._seq
        self._seq = seq + 1
        heappush(self._waiting, (request.priority, request.time, seq, request))

    def _head_waiter(self):
        waiting = self._waiting
        while waiting:
            head = waiting[0][3]
            if head._cancelled:
                heappop(waiting)
            else:
                return head
        return None

    def _pop_waiter(self) -> None:
        heappop(self._waiting)


class ContainerPut(Event):
    """Pending deposit of ``amount`` into a container."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        super().__init__(container.env)
        if amount <= 0:
            raise SimulationError(f"put amount must be > 0, got {amount}")
        self.amount = float(amount)
        container._put_waiters.append(self)
        container._update()


class ContainerGet(Event):
    """Pending withdrawal of ``amount`` from a container."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        super().__init__(container.env)
        if amount <= 0:
            raise SimulationError(f"get amount must be > 0, got {amount}")
        self.amount = float(amount)
        container._get_waiters.append(self)
        container._update()


class Container:
    """A divisible quantity with bounded capacity (e.g. storage bytes).

    ``put(amount)`` blocks while the container would overflow; ``get(amount)``
    blocks while it holds less than ``amount``.
    """

    __slots__ = ("env", "capacity", "_level", "_put_waiters", "_get_waiters")

    def __init__(self, env: "Environment", capacity: float = float("inf"), init: float = 0.0) -> None:
        if capacity <= 0:
            raise SimulationError("container capacity must be positive")
        if init < 0 or init > capacity:
            raise SimulationError("initial level must lie within [0, capacity]")
        self.env = env
        self.capacity = float(capacity)
        self._level = float(init)
        self._put_waiters: list = []
        self._get_waiters: list = []

    @property
    def level(self) -> float:
        """Current content of the container."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Deposit ``amount``; the returned event triggers once it fits."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Withdraw ``amount``; the returned event triggers once available."""
        return ContainerGet(self, amount)

    def _update(self) -> None:
        # Any waiter that fits is served (not just the head): a small put can
        # slip past a blocked large one, which is the historical semantics.
        progressed = True
        while progressed:
            progressed = False
            for put in list(self._put_waiters):
                if self._level + put.amount <= self.capacity + 1e-12:
                    self._level += put.amount
                    self._put_waiters.remove(put)
                    put.succeed()
                    progressed = True
            for get in list(self._get_waiters):
                if self._level >= get.amount - 1e-12:
                    self._level -= get.amount
                    self._get_waiters.remove(get)
                    get.succeed()
                    progressed = True

    def __repr__(self) -> str:
        return f"<Container level={self._level}/{self.capacity}>"
