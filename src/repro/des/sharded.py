"""Sharded-clock parallel engine: conservatively synchronized site regions.

The single-clock kernel processes every event of the grid on one calendar.
For workloads whose jobs are pinned to sites *a priori* (trace replays under
the ``follow_trace`` policy -- the paper's calibration workloads -- and the
synthetic generators, which stamp every job's ``target_site``), the event
graph decomposes cleanly: nothing that happens at one site can influence
another site's timeline.  This module exploits that structure by
partitioning the sites into ``execution.shards`` *regions*, simulating each
region on its own :class:`~repro.des.core.Environment` in a separate worker
process, and merging the per-region outputs into one
:class:`~repro.core.simulator.SimulationResult`.

Synchronization model
---------------------
Regions advance their clocks in *windows*, conservatively synchronized by a
coordinator in the parent process:

1. every worker reports the timestamp of its next event
   (:meth:`Environment.peek`);
2. the coordinator picks ``target = min(peeks) + window`` and tells every
   region to :meth:`~repro.core.session.SimulationSession.advance_until` it;
3. each worker replies with its clock, next-event time, completion flag and
   a state digest drawn from the checkpoint machinery
   (:meth:`MainServer.snapshot`), which the coordinator folds into its
   progress view of the whole grid.

The *lookahead* that makes the windows safe is the WAN latency of the
topology: an event at one site cannot affect another region sooner than the
smallest cross-region link latency, and for shard-eligible workloads (no
data transfers, pinned placement) no event crosses regions at all -- the
windows bound clock skew between regions rather than correctness.  The
window defaults to ``max(pending_retry_interval, 64 x lookahead)`` and can
be pinned with ``execution.shard_window``.

When shards cannot help
-----------------------
:func:`check_shardable` refuses (with an explanation per problem) whenever
region independence cannot be guaranteed:

* the allocation policy is not pinning (anything but ``follow_trace``), or a
  job lacks a ``target_site`` -- placement would depend on global state;
* a job's core count exceeds its target site's widest host -- the
  single-clock engine parks or fails such jobs against the *global* pending
  machinery;
* data transfers (or streaming I/O / caches) are enabled -- stage-ins share
  WAN links across regions;
* declarative stop conditions are configured -- "first condition to fire"
  is a global race;
* output files are configured -- regions would race on the same paths;
* build hooks are registered -- they cannot be shipped to workers.

Verification
------------
``run_sharded(..., verify=True)`` (surfaced as ``repro run --shards-verify``)
re-runs the workload on a pristine single-clock clone and compares the two
metric sets bit-for-bit via :func:`repro.state.protocol.diff_states`, after
re-ordering both job lists into a canonical engine-independent order (wave
jobs by id, retry attempts by ``(original id, attempt)``).  Any divergence
raises :class:`~repro.utils.errors.SimulationError` listing the differing
fields.
"""

from __future__ import annotations

import copy
import multiprocessing
import pickle
import time as _wallclock
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.utils.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulator import SimulationResult, Simulator
    from repro.workload.job import Job

__all__ = [
    "ShardPlan",
    "plan_shards",
    "cross_region_lookahead",
    "check_shardable",
    "run_sharded",
]

_INF = float("inf")


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic partition of the grid's sites into clock regions.

    ``regions`` maps region index to a tuple of site names; ``lookahead`` is
    the smallest cross-region link latency (the conservative-synchronization
    bound) and ``window`` the synchronization-window size actually used.
    """

    regions: Tuple[Tuple[str, ...], ...]
    lookahead: float
    window: float

    def region_of(self, site: str) -> int:
        """Index of the region holding ``site`` (raises on unknown sites)."""
        for index, names in enumerate(self.regions):
            if site in names:
                return index
        raise SimulationError(f"site {site!r} is not in any shard region")

    def __len__(self) -> int:
        return len(self.regions)


def plan_shards(site_names: List[str], shards: int) -> Tuple[Tuple[str, ...], ...]:
    """Partition ``site_names`` into at most ``shards`` regions, round-robin.

    Sites are sorted by name first, so the partition depends only on the
    site set -- never on declaration order or hash seeds.  With more shards
    than sites, the empty tail regions are dropped.
    """
    if shards < 1:
        raise SimulationError(f"shards must be >= 1, got {shards}")
    ordered = sorted(site_names)
    regions: List[List[str]] = [[] for _ in range(min(shards, len(ordered)))]
    for index, name in enumerate(ordered):
        regions[index % len(regions)].append(name)
    return tuple(tuple(region) for region in regions)


def cross_region_lookahead(topology, regions: Tuple[Tuple[str, ...], ...]) -> float:
    """Smallest latency of any link joining two different regions.

    This is the conservative-synchronization bound: no event can propagate
    between regions faster than the fastest cross-region link.  Falls back
    to the topology's implicit server-link latency when no explicit link
    crosses regions (every site then reaches the rest of the grid only
    through the main-server star).
    """
    region_of: Dict[str, int] = {}
    for index, names in enumerate(regions):
        for name in names:
            region_of[name] = index
    crossing = [
        link.latency
        for link in topology.links
        if region_of.get(link.source) is not None
        and region_of.get(link.destination) is not None
        and region_of[link.source] != region_of[link.destination]
    ]
    if crossing:
        return float(min(crossing))
    return float(topology.server_latency)


def check_shardable(simulator: "Simulator", jobs: List["Job"]) -> List[str]:
    """Explain everything that makes this run ineligible for sharding.

    Returns an empty list when the workload decomposes into independent
    regions (see the module docstring for the rules); otherwise one
    human-readable reason per problem.  :func:`run_sharded` raises with the
    joined reasons, so callers can pre-flight eligibility cheaply.
    """
    from repro.plugins.bundled import FollowTracePolicy

    problems: List[str] = []
    site_names = set(simulator.infrastructure.site_names)
    if len(site_names) < 2:
        problems.append("sharding needs at least 2 sites")
    if not isinstance(simulator.policy, FollowTracePolicy):
        problems.append(
            f"policy {simulator.policy.name!r} is not pinning; only "
            "'follow_trace' (jobs pre-assigned to their target_site) "
            "guarantees region independence"
        )
    if simulator.enable_data_transfers:
        problems.append(
            "data transfers share WAN links across regions; disable "
            "enable_data_transfers (and caches/streaming) to shard"
        )
    if simulator._build_hooks:
        problems.append("on_build hooks cannot be shipped to shard workers")
    execution = simulator.execution
    if execution.stop is not None and execution.stop.enabled():
        problems.append(
            "declarative stop conditions race globally; remove execution.stop"
        )
    output = execution.output
    if output.sqlite_path or output.csv_directory or output.ml_dataset:
        problems.append(
            "configured outputs would be written by every region; disable "
            "execution.output for sharded runs"
        )
    widest: Dict[str, int] = {
        site.name: max(site.cores_per_host()) for site in simulator.infrastructure.sites
    }
    unpinned = 0
    too_wide = 0
    for job in jobs:
        target = job.target_site
        if target is None or target not in site_names:
            unpinned += 1
        elif int(job.cores) > widest[target]:
            too_wide += 1
    if unpinned:
        problems.append(
            f"{unpinned} job(s) lack a target_site naming a known site; "
            "placement would depend on global grid state"
        )
    if too_wide:
        problems.append(
            f"{too_wide} job(s) need more cores than their target site's "
            "widest host; their pending/unplaceable handling is global"
        )
    return problems


def _shard_window(execution, lookahead: float) -> float:
    """Window size: explicit override, or a multiple of the lookahead."""
    if execution.shard_window is not None:
        return float(execution.shard_window)
    return max(float(execution.pending_retry_interval), 64.0 * lookahead)


def _region_execution(execution):
    """The execution config a region worker runs under.

    Single-clock (``shards=1``), no output files, and monitoring muted: the
    merged result recomputes its metrics purely from the jobs, so per-region
    transition rows would be discarded anyway.
    """
    from repro.config.execution import MonitoringConfig, OutputConfig

    return replace(
        execution,
        shards=1,
        shard_window=None,
        monitoring=MonitoringConfig(enable_events=False, snapshot_interval=0.0),
        output=OutputConfig(),
        stop=None,
    )


def _region_payload(
    simulator: "Simulator",
    region_sites: Tuple[str, ...],
    region_index: int,
    shards: int,
    id_base: int,
    indexed_jobs: List[Tuple[int, "Job"]],
) -> dict:
    """Everything one worker needs, as a picklable dict."""
    from repro.config.infrastructure import InfrastructureConfig
    from repro.config.topology import TopologyConfig

    region = set(region_sites)
    topology = simulator.topology
    endpoints = region | {topology.server_zone}
    config = {
        "infrastructure": InfrastructureConfig(
            sites=[
                site
                for site in simulator.infrastructure.sites
                if site.name in region
            ]
        ),
        "topology": TopologyConfig(
            links=[
                link
                for link in topology.links
                if link.source in endpoints and link.destination in endpoints
            ],
            server_zone=topology.server_zone,
            server_bandwidth=topology.server_bandwidth,
            server_latency=topology.server_latency,
            routing_weight=topology.routing_weight,
        ),
        "execution": _region_execution(simulator.execution),
        "policy": (
            None if simulator._policy_spec is not None else copy.deepcopy(simulator.policy)
        ),
        "enable_data_transfers": False,
        "data_cache": None,
        "streaming_io": False,
        "parallel_efficiency": simulator.parallel_efficiency,
        "failure_model": copy.deepcopy(simulator.failure_model),
        "outages": [w for w in simulator.outages if w.site in region],
        "policy_initial": copy.deepcopy(simulator._policy_initial),
    }
    return {
        "config": config,
        "region_index": region_index,
        "shards": shards,
        "id_base": id_base,
        "indices": [index for index, _ in indexed_jobs],
        "jobs": [job for _, job in indexed_jobs],
    }


def _region_worker(conn) -> None:
    """Worker-process entry point: one region, one Environment, one session.

    Speaks a tiny message protocol with the coordinator::

        <- payload (first message: the region's configuration and jobs)
        -> ("ready", peek, done)
        <- ("advance", target)    -> ("state", now, peek, done, digest)
        <- ("finalize",)          -> ("result", {...})
        <- ("abort",)             (silent exit)

    Any exception is reported as ``("error", traceback)`` instead of dying
    silently, so the coordinator can surface the region's failure.
    """
    try:
        from repro.core.simulator import Simulator

        payload = conn.recv()
        simulator = Simulator.from_config_payload(payload["config"])

        def _pin_allocator(sim: "Simulator") -> None:
            # Region k of N mints runtime ids base+k, base+k+N, ...: disjoint
            # congruence classes, so merged outputs never collide.
            sim.job_ids.reset(payload["id_base"] + payload["region_index"])
            sim.job_ids.step = payload["shards"]

        simulator.on_build(_pin_allocator)
        session = simulator.session(payload["jobs"])
        env = simulator.env
        deadline = simulator.execution.max_simulation_time
        conn.send(("ready", env.peek(), session.done))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "advance":
                target = float(message[1])
                if deadline is not None:
                    target = min(target, deadline)
                if not session.done and target > session.now:
                    session.advance_until(target)
                done = session.done or (
                    deadline is not None and session.now >= deadline
                )
                conn.send(
                    ("state", env.now, env.peek(), done, simulator.server.snapshot())
                )
            elif kind == "finalize":
                session.advance_to_completion()
                result = session.finalize()
                conn.send(
                    (
                        "result",
                        {
                            "jobs": result.jobs,
                            "simulated_time": result.simulated_time,
                            "pending_jobs": result.pending_jobs,
                            "assignments": result.assignments,
                            "wallclock": result.wallclock_seconds,
                        },
                    )
                )
                conn.close()
                return
            else:  # "abort" or anything unknown: exit quietly
                conn.close()
                return
    except BaseException:  # pragma: no cover - transported to the parent
        import traceback

        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass


def _canonical_order(jobs: List["Job"]) -> List["Job"]:
    """Engine-independent job order: by (original id, attempt).

    Retry attempts carry ``retry_of``/``attempt`` attributes and sort right
    after their original; runtime-minted attempt ids differ between the
    single-clock and sharded engines (and between shard counts), so ids
    alone cannot anchor a cross-engine comparison.
    """
    return sorted(
        jobs,
        key=lambda job: (
            int(job.attributes.get("retry_of", job.job_id)),
            int(job.attributes.get("attempt", 1)),
        ),
    )


def comparable_metrics(jobs: List["Job"]) -> dict:
    """Metrics dict for cross-engine comparison (canonical job order).

    Re-derives the metrics from the jobs alone -- no collector, so the
    ``transitions`` summary (which sharded runs do not retain) never
    contributes -- after canonical re-ordering, making the floating-point
    reductions bit-identical whenever the underlying jobs are.
    """
    from repro.core.metrics import compute_metrics

    data = compute_metrics(_canonical_order(jobs)).to_dict()
    data.pop("transitions", None)
    return data


def run_sharded(
    simulator: "Simulator",
    jobs: List["Job"],
    verify: bool = False,
) -> "SimulationResult":
    """Run ``jobs`` across ``execution.shards`` clock regions and merge.

    The entry point behind ``Simulator.run()`` when ``execution.shards > 1``
    (and ``repro run --shards``).  Raises
    :class:`~repro.utils.errors.SimulationError` with every eligibility
    problem when the workload cannot be sharded (see
    :func:`check_shardable`).  With ``verify=True`` the merged metrics are
    additionally cross-checked bit-for-bit against a pristine single-clock
    run of the same workload.
    """
    from repro.core.metrics import compute_metrics
    from repro.core.simulator import SimulationResult
    from repro.des import Environment
    from repro.monitoring.collector import MonitoringCollector
    from repro.platform.builder import build_platform
    from repro.workload.job import JobState

    started = _wallclock.perf_counter()
    execution = simulator.execution
    shards = int(execution.shards)
    if shards < 2:
        raise SimulationError("run_sharded needs execution.shards >= 2")
    problems = check_shardable(simulator, jobs)
    if problems:
        raise SimulationError(
            "workload is not shard-eligible: " + "; ".join(problems)
        )
    # Mirror the session contract: terminal inputs are replayed as copies.
    jobs = [
        job if job.state is JobState.CREATED else job.copy_for_replay()
        for job in jobs
    ]
    regions = plan_shards(simulator.infrastructure.site_names, shards)
    lookahead = cross_region_lookahead(simulator.topology, regions)
    window = _shard_window(execution, lookahead)
    plan = ShardPlan(regions=regions, lookahead=lookahead, window=window)
    if len(plan) < shards:
        simulator.logger.info(
            "sharded",
            f"only {len(plan)} region(s) for {shards} shards "
            f"({len(simulator.infrastructure.site_names)} sites)",
        )

    by_region: List[List[Tuple[int, "Job"]]] = [[] for _ in range(len(plan))]
    for index, job in enumerate(jobs):
        by_region[plan.region_of(job.target_site)].append((index, job))
    id_base = max((int(job.job_id) for job in jobs), default=0) + 1
    payloads = [
        _region_payload(simulator, plan.regions[k], k, len(plan), id_base, by_region[k])
        for k in range(len(plan))
    ]
    for payload in payloads:
        try:
            pickle.dumps(payload, protocol=4)
        except Exception as exc:
            raise SimulationError(
                "simulator configuration cannot be shipped to shard workers "
                f"(not picklable: {exc})"
            ) from exc

    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    workers = []
    try:
        for payload in payloads:
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_region_worker, args=(child_conn,), daemon=True
            )
            process.start()
            child_conn.close()
            parent_conn.send(payload)
            workers.append((process, parent_conn))

        peeks: List[float] = [_INF] * len(workers)
        done: List[bool] = [False] * len(workers)
        for index, (_, conn) in enumerate(workers):
            peeks[index], done[index] = _expect(conn, "ready")[1:3]
        rounds = 0
        while not all(done):
            horizon = min(peek for index, peek in enumerate(peeks) if not done[index])
            if horizon == _INF:
                stuck = [k for k in range(len(workers)) if not done[k]]
                raise SimulationError(
                    f"sharded regions {stuck} have no scheduled events but "
                    "incomplete workloads (deadlock)"
                )
            target = horizon + window
            active = [k for k in range(len(workers)) if not done[k]]
            for k in active:
                workers[k][1].send(("advance", target))
            completed_jobs = 0
            for k in active:
                _, _, peeks[k], done[k], digest = _expect(workers[k][1], "state")
                completed_jobs += int(digest.get("completed", 0))
            rounds += 1
            simulator.logger.debug(
                "sharded",
                f"window {rounds}: target={target:.0f}s "
                f"active={len(active)} completed~{completed_jobs}",
            )

        for _, conn in workers:
            conn.send(("finalize",))
        region_results = [_expect(conn, "result")[1] for _, conn in workers]
    finally:
        for process, conn in workers:
            try:
                conn.close()
            except Exception:
                pass
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - crash cleanup
                process.terminate()
                process.join()

    merged: List[Optional["Job"]] = [None] * len(jobs)
    retries: List["Job"] = []
    assignments: Dict[int, str] = {}
    pending_jobs = 0
    simulated_time = 0.0
    for k, data in enumerate(region_results):
        indices = payloads[k]["indices"]
        region_jobs = data["jobs"]
        for index, job in zip(indices, region_jobs[: len(indices)]):
            merged[index] = job
        retries.extend(region_jobs[len(indices) :])
        assignments.update(data["assignments"])
        pending_jobs += int(data["pending_jobs"])
        simulated_time = max(simulated_time, float(data["simulated_time"]))
    all_jobs = list(merged) + _canonical_order(retries)

    metrics = compute_metrics(all_jobs)
    platform = build_platform(Environment(), simulator.infrastructure, simulator.topology)
    result = SimulationResult(
        jobs=all_jobs,
        metrics=metrics,
        collector=MonitoringCollector(),
        platform=platform,
        simulated_time=simulated_time,
        wallclock_seconds=_wallclock.perf_counter() - started,
        pending_jobs=pending_jobs,
        assignments=assignments,
        stopped_reason=None,
    )
    if verify:
        _verify_against_single_clock(simulator, jobs, result)
    return result


def _expect(conn, kind: str):
    """Receive one worker message, translating errors and wrong kinds."""
    message = conn.recv()
    if message[0] == "error":
        raise SimulationError(f"shard worker failed:\n{message[1]}")
    if message[0] != kind:
        raise SimulationError(
            f"shard worker protocol error: expected {kind!r}, got {message[0]!r}"
        )
    return message


def _verify_against_single_clock(
    simulator: "Simulator", jobs: List["Job"], result: "SimulationResult"
) -> None:
    """Assert the merged metrics equal a pristine single-clock run's.

    Uses the checkpoint machinery's :func:`~repro.state.protocol.diff_states`
    for the comparison, so a mismatch reports every divergent field (exactly
    as a failed checkpoint replay would).
    """
    from repro.state.protocol import diff_states

    reference = simulator.clone()
    reference.execution = _region_execution(simulator.execution)
    reference_result = reference.run([job.copy_for_replay() for job in jobs])
    expected = comparable_metrics(reference_result.jobs)
    actual = comparable_metrics(result.jobs)
    diffs = diff_states(expected, actual)
    if diffs:
        raise SimulationError(
            "sharded run diverged from the single-clock engine: "
            + "; ".join(diffs)
        )
