"""Object stores (mailboxes / queues) for the discrete-event kernel.

Stores are the communication primitive the CGSim core uses between the main
server's *sender* actor and each site's *receiver* actor: the sender ``put``s
job descriptors into a site's store, the receiver ``get``s them as capacity
frees up.

* :class:`Store` -- unbounded-or-bounded FIFO of arbitrary Python objects.
* :class:`FilterStore` -- ``get(filter=...)`` retrieves the first item
  matching a predicate (used by data-aware policies pulling specific jobs).
* :class:`PriorityStore` -- items are :class:`PriorityItem` wrappers retrieved
  lowest-priority-value first (used for priority job queues).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.des.events import Event
from repro.utils.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment

__all__ = ["Store", "FilterStore", "PriorityStore", "PriorityItem", "StorePut", "StoreGet"]


class StorePut(Event):
    """Pending insertion of ``item`` into a store."""

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_waiters.append(self)
        store._update()


class StoreGet(Event):
    """Pending retrieval of one item from a store."""

    def __init__(self, store: "Store", filter_fn: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(store.env)
        self.filter_fn = filter_fn
        store._get_waiters.append(self)
        store._update()


class Store:
    """FIFO store of Python objects with optional bounded capacity."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_waiters: List[StorePut] = []
        self._get_waiters: List[StoreGet] = []

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the returned event triggers once there is room."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Retrieve the oldest item; the returned event triggers once one exists."""
        return StoreGet(self)

    def __len__(self) -> int:
        return len(self.items)

    # -- internal ----------------------------------------------------------
    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.pop(0))
            return True
        return False

    def _update(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._put_waiters:
                if self._do_put(self._put_waiters[0]):
                    self._put_waiters.pop(0)
                    progressed = True
                else:
                    break
            remaining: List[StoreGet] = []
            for get in self._get_waiters:
                if not self._do_get(get):
                    remaining.append(get)
                else:
                    progressed = True
            self._get_waiters = remaining

    def __repr__(self) -> str:
        return f"<{type(self).__name__} items={len(self.items)} capacity={self.capacity}>"


class FilterStore(Store):
    """A store whose ``get`` may specify a predicate on the item to retrieve."""

    def get(self, filter_fn: Optional[Callable[[Any], bool]] = None) -> StoreGet:  # type: ignore[override]
        """Retrieve the first item for which ``filter_fn(item)`` is true."""
        return StoreGet(self, filter_fn)

    def _do_get(self, event: StoreGet) -> bool:
        predicate = event.filter_fn or (lambda _item: True)
        for index, item in enumerate(self.items):
            if predicate(item):
                del self.items[index]
                event.succeed(item)
                return True
        return False


@dataclass(order=True)
class PriorityItem:
    """Wrapper pairing a priority with an arbitrary (non-compared) payload."""

    priority: float
    item: Any = field(compare=False)


class PriorityStore(Store):
    """A store that always returns the lowest-priority-value item first."""

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            item = event.item
            if not isinstance(item, PriorityItem):
                raise SimulationError("PriorityStore items must be PriorityItem instances")
            heapq.heappush(self.items, item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(heapq.heappop(self.items))
            return True
        return False
