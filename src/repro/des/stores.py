"""Object stores (mailboxes / queues) for the discrete-event kernel.

Stores are the communication primitive the CGSim core uses between the main
server's *sender* actor and each site's *receiver* actor: the sender ``put``s
job descriptors into a site's store, the receiver ``get``s them as capacity
frees up.

* :class:`Store` -- unbounded-or-bounded FIFO of arbitrary Python objects.
* :class:`FilterStore` -- ``get(filter=...)`` retrieves the first item
  matching a predicate (used by data-aware policies pulling specific jobs).
* :class:`PriorityStore` -- items are :class:`PriorityItem` wrappers retrieved
  lowest-priority-value first (used for priority job queues).

Hot-path notes
--------------
:class:`Store` keeps items and waiters in deques: ``get`` pops the head in
O(1) where a list would memmove the whole backlog, which matters for the
site queues that accumulate thousands of jobs.  :class:`FilterStore`
(arbitrary removal) and :class:`PriorityStore` (heap-ordered items) override
the container choices they need.  All store events declare ``__slots__``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.des.events import Event
from repro.utils.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment

__all__ = ["Store", "FilterStore", "PriorityStore", "PriorityItem", "StorePut", "StoreGet"]


class StorePut(Event):
    """Pending insertion of ``item`` into a store."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_waiters.append(self)
        store._update()


class StoreGet(Event):
    """Pending retrieval of one item from a store."""

    __slots__ = ("filter_fn",)

    def __init__(self, store: "Store", filter_fn: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(store.env)
        self.filter_fn = filter_fn
        store._get_waiters.append(self)
        store._update()


class Store:
    """FIFO store of Python objects with optional bounded capacity."""

    __slots__ = ("env", "capacity", "items", "_put_waiters", "_get_waiters")

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque = deque()
        self._put_waiters: deque = deque()
        self._get_waiters: deque = deque()

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the returned event triggers once there is room."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Retrieve the oldest item; the returned event triggers once one exists."""
        return StoreGet(self)

    def __len__(self) -> int:
        return len(self.items)

    # -- internal ----------------------------------------------------------
    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.popleft())
            return True
        return False

    def _update(self) -> None:
        # Puts only unblock when gets drain items and vice versa, so loop
        # until neither side progresses.  Both queues drain strictly from
        # the head: the base store's put/get only ever block on fullness /
        # emptiness, which affects every waiter equally.
        puts = self._put_waiters
        gets = self._get_waiters
        while True:
            progressed = False
            while puts and self._do_put(puts[0]):
                puts.popleft()
                progressed = True
            while gets and self._do_get(gets[0]):
                gets.popleft()
                progressed = True
            if not progressed:
                return

    def __repr__(self) -> str:
        return f"<{type(self).__name__} items={len(self.items)} capacity={self.capacity}>"


class FilterStore(Store):
    """A store whose ``get`` may specify a predicate on the item to retrieve."""

    __slots__ = ()

    def get(self, filter_fn: Optional[Callable[[Any], bool]] = None) -> StoreGet:  # type: ignore[override]
        """Retrieve the first item for which ``filter_fn(item)`` is true."""
        return StoreGet(self, filter_fn)

    def _do_get(self, event: StoreGet) -> bool:
        predicate = event.filter_fn
        items = self.items
        for index, item in enumerate(items):
            if predicate is None or predicate(item):
                del items[index]
                event.succeed(item)
                return True
        return False

    def _update(self) -> None:
        # Unlike the base store, an unmatched get must NOT block the gets
        # queued behind it: every waiter is offered the current items.
        puts = self._put_waiters
        while True:
            progressed = False
            while puts and self._do_put(puts[0]):
                puts.popleft()
                progressed = True
            remaining: deque = deque()
            for get in self._get_waiters:
                if self._do_get(get):
                    progressed = True
                else:
                    remaining.append(get)
            self._get_waiters = remaining
            if not progressed:
                return


@dataclass(order=True)
class PriorityItem:
    """Wrapper pairing a priority with an arbitrary (non-compared) payload."""

    priority: float
    item: Any = field(compare=False)


class PriorityStore(Store):
    """A store that always returns the lowest-priority-value item first."""

    __slots__ = ()

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        #: Heap of :class:`PriorityItem` (heapq needs a plain list).
        self.items: List[PriorityItem] = []

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            item = event.item
            if not isinstance(item, PriorityItem):
                raise SimulationError("PriorityStore items must be PriorityItem instances")
            heappush(self.items, item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(heappop(self.items))
            return True
        return False
