"""Columnar macro-event lanes: batched timeout dispatch without event objects.

A *macro lane* is the kernel's vectorized fast path for the dominant event
pattern simulations produce: large numbers of independent "at time *t*, run
this small callback" entries with no kernel interaction between them (job
completions, workload release times, monitoring ticks).  The scalar path
pays one pooled :class:`~repro.des.events.Timeout` plus one generator resume
per such event; a macro lane stores the same schedule as **columnar data**
-- a sorted array of times and an aligned list of payload values, one shared
callback -- and the run loop drains whole runs of consecutive entries in a
tight loop (:meth:`repro.des.core.Environment._advance_macro`).

Two lane flavours cover the two scheduling shapes:

* :class:`MacroBatch` -- the whole schedule is known up front
  (:meth:`repro.des.core.Environment.schedule_macro`).  Times go through one
  ``numpy`` stable argsort, so entries dispatch in ``(time, seq)`` order
  where ``seq`` is the input position; after sorting the columns are kept as
  plain Python lists because per-element access is what the dispatch loop
  does.
* :class:`DynamicMacroLane` -- entries arrive one at a time while the
  simulation runs (:meth:`repro.des.core.Environment.macro_lane`).  Entries
  live in a ``(time, seq, value)`` tuple heap: same ``(time, push-order)``
  dispatch order, which is exactly the order the scalar calendar's per-time
  FIFO buckets would have produced for timeouts scheduled in push order.

Ordering contract
-----------------
Macro entries due at time *t* run **after** urgent/priority events at *t*
(process initialisation, interrupts, ``until`` sentinels -- so a deadline
still stops the clock before any same-time activity) and **before** the
normal-priority bucket at *t*.  Among lanes, ties break by lane
registration order; within a lane, by ``(time, seq)``.  This equals the
scalar calendar's insertion-order semantics whenever the batch is scheduled
before any colliding normal event -- the pattern every bundled consumer
follows -- and it is what the macro/scalar bit-identity property tests pin.

Callbacks may do anything a normal event callback may, including scheduling
regular events or new macro entries; the drain loop yields back to the main
run loop as soon as a callback makes same-time work runnable, so causality
within a timestamp is preserved.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.utils.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.des.core import Environment

__all__ = ["MacroBatch", "DynamicMacroLane"]

#: Head time reported by an exhausted/cancelled lane.
_INF = float("inf")


class MacroBatch:
    """A precomputed columnar batch of timed callback entries.

    Create through :meth:`repro.des.core.Environment.schedule_macro`; the
    constructor sorts the entry times (stable, so equal times keep input
    order) and registers the lane with the environment's macro heap.

    Parameters
    ----------
    env:
        Owning environment.
    times:
        Absolute dispatch times, one per entry (already validated >= now).
    callback:
        Called as ``callback(value)`` for every entry, in ``(time, seq)``
        order.  ``None`` values are passed for batches without payloads.
    values:
        Optional payloads aligned with ``times`` (pre-sort input order).
    """

    __slots__ = ("env", "callback", "_times", "_values", "_cursor", "_cancelled")

    def __init__(
        self,
        env: "Environment",
        times: np.ndarray,
        callback: Callable[[Any], None],
        values: Optional[Sequence[Any]] = None,
    ) -> None:
        self.env = env
        self.callback = callback
        if values is not None and len(values) != len(times):
            raise SimulationError(
                f"macro batch values length {len(values)} != times length {len(times)}"
            )
        order = np.argsort(times, kind="stable")
        # Columns are kept as plain lists: the dispatch loop touches one
        # element at a time, and unboxing numpy scalars per entry costs more
        # than the one-time conversion.
        self._times: List[float] = times[order].tolist()
        if values is None:
            self._values: Optional[list] = None
        else:
            values = list(values)
            self._values = [values[index] for index in order.tolist()]
        self._cursor = 0
        self._cancelled = False

    # -- lane protocol (used by Environment._advance_macro) -----------------
    def head_time(self) -> float:
        """Time of the next undispatched entry (``inf`` when exhausted)."""
        if self._cancelled or self._cursor >= len(self._times):
            return _INF
        return self._times[self._cursor]

    @property
    def remaining(self) -> int:
        """Entries not yet dispatched."""
        if self._cancelled:
            return 0
        return len(self._times) - self._cursor

    def cancel(self) -> None:
        """Drop every undispatched entry (already-dispatched ones stand)."""
        self._cancelled = True

    def __repr__(self) -> str:
        return (
            f"<MacroBatch remaining={self.remaining}/{len(self._times)} "
            f"{'cancelled' if self._cancelled else 'active'}>"
        )


class DynamicMacroLane:
    """A push-based macro lane for entries whose times arrive incrementally.

    Create through :meth:`repro.des.core.Environment.macro_lane`.  Entries
    are ``(time, seq, value)`` tuples in a heap: dispatch order is
    ``(time, push order)``, which matches the per-time FIFO order the scalar
    calendar gives timeouts scheduled in the same order.  The lane
    re-registers itself with the environment whenever a push creates a new
    earliest head (lazy re-registration; stale heap entries are discarded at
    dispatch time).

    The main consumer is the simulation core's shared job-completion lane:
    every site pushes ``(duration, completion-record)`` at admission time and
    one shared callback finishes the job, replacing a pooled ``Timeout`` plus
    a generator resume per completion.
    """

    __slots__ = ("env", "callback", "_heap", "_seq")

    def __init__(self, env: "Environment", callback: Callable[[Any], None]) -> None:
        self.env = env
        self.callback = callback
        self._heap: List[tuple] = []
        self._seq = 0

    def push(self, delay: float, value: Any = None) -> None:
        """Schedule ``callback(value)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative macro delay {delay!r}")
        when = self.env._now + delay
        heap = self._heap
        previous_head = heap[0][0] if heap else _INF
        heappush(heap, (when, self._seq, value))
        self._seq += 1
        if when < previous_head:
            # New earliest entry: (re-)announce the lane to the environment.
            # An already-registered later head becomes a stale heap entry the
            # dispatcher discards when it surfaces.
            self.env._register_macro_lane(self)

    def push_at(self, when: float, value: Any = None) -> None:
        """Schedule ``callback(value)`` at absolute time ``when``."""
        self.push(when - self.env._now, value)

    # -- lane protocol ------------------------------------------------------
    def head_time(self) -> float:
        """Time of the earliest pending entry (``inf`` when empty)."""
        return self._heap[0][0] if self._heap else _INF

    @property
    def remaining(self) -> int:
        """Entries not yet dispatched."""
        return len(self._heap)

    def cancel(self) -> None:
        """Drop every pending entry."""
        self._heap.clear()

    def _pop_value(self) -> Any:
        """Remove and return the payload of the earliest entry."""
        return heappop(self._heap)[2]

    def __repr__(self) -> str:
        return f"<DynamicMacroLane remaining={len(self._heap)}>"
