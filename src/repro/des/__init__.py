"""Discrete-event simulation kernel.

This package is the reproduction's substitute for the SimGrid engine that the
original CGSim builds upon.  It provides a compact but complete
process-oriented discrete-event core:

* :class:`~repro.des.core.Environment` -- the event loop: a heap-ordered
  calendar of pending events, a simulation clock, and ``run()`` /
  ``run(until=...)`` drivers.
* :class:`~repro.des.events.Event`, :class:`~repro.des.events.Timeout`,
  :class:`~repro.des.events.Process` -- the event types.  Processes are plain
  Python generator functions that ``yield`` events to wait on, exactly like
  SimGrid actors block on activities.
* :class:`~repro.des.events.AllOf` / :class:`~repro.des.events.AnyOf` --
  condition events for waiting on several activities at once.
* :class:`~repro.des.resources.Resource`,
  :class:`~repro.des.resources.PriorityResource`,
  :class:`~repro.des.resources.Container` -- counted resources with FIFO or
  priority queueing, used for CPU cores and storage space.
* :class:`~repro.des.stores.Store`, :class:`~repro.des.stores.FilterStore`,
  :class:`~repro.des.stores.PriorityStore` -- mailboxes/queues used for the
  sender/receiver actor communication in the simulation core.
* :class:`~repro.des.macro.MacroBatch` /
  :class:`~repro.des.macro.DynamicMacroLane` -- columnar macro-event lanes:
  the vectorized fast path that dispatches large batches of independent
  timed callbacks without per-event objects or generator resumes
  (``Environment.schedule_macro`` / ``Environment.macro_lane``).
* :mod:`~repro.des.sharded` -- the sharded-clock parallel engine: partitions
  a platform's sites into conservatively-synchronized regions, each running
  its own :class:`~repro.des.core.Environment` in a worker process.

The public API intentionally mirrors the well-known SimPy interface so that
anyone familiar with process-based DES can read the simulation core directly;
the implementation is entirely self-contained.
"""

from repro.des.core import Environment, StopSimulation
from repro.des.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.des.macro import DynamicMacroLane, MacroBatch
from repro.des.resources import Container, PriorityResource, Resource
from repro.des.stores import FilterStore, PriorityItem, PriorityStore, Store

__all__ = [
    "Environment",
    "StopSimulation",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "MacroBatch",
    "DynamicMacroLane",
    "AllOf",
    "AnyOf",
    "Resource",
    "PriorityResource",
    "Container",
    "Store",
    "FilterStore",
    "PriorityStore",
    "PriorityItem",
]
