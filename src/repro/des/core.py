"""The discrete-event environment: clock, event calendar and run loop.

The :class:`Environment` owns a binary-heap event calendar ordered by
``(time, priority, insertion order)``.  ``run()`` pops events in order,
advances the clock and executes their callbacks, which in turn resume the
generator processes waiting on them.  The design (and most of the public
method names) follows the conventional process-based DES structure so that
the simulation core reads like ordinary SimPy/SimGrid-style actor code.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from repro.des.events import AllOf, AnyOf, Event, Process, Timeout
from repro.utils.errors import SimulationError

__all__ = ["Environment", "StopSimulation"]

#: Default scheduling priority; "urgent" events (process initialisation,
#: interrupts) use priority 0 so they run before same-time normal events.
NORMAL_PRIORITY = 1
URGENT_PRIORITY = 0


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at the ``until`` event."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Simulation clock value at start (seconds).

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(5)
    ...     return env.now
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> p.value
    5.0
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (``None`` between events)."""
        return self._active_process

    # -- event factories -------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event` bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` executing ``generator``."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Create a condition that waits for all of ``events``."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Create a condition that waits for any of ``events``."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL_PRIORITY, delay: float = 0.0) -> None:
        """Place a triggered event on the calendar ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))
        self._eid += 1

    def peek(self) -> float:
        """Return the time of the next scheduled event (``inf`` if none)."""
        return self._queue[0][0] if self._queue else float("inf")

    @property
    def queue_length(self) -> int:
        """Number of events currently on the calendar (diagnostics)."""
        return len(self._queue)

    def step(self) -> None:
        """Process exactly one event; raise :class:`IndexError` if none remain."""
        if not self._queue:
            raise IndexError("no more events scheduled")
        when, _prio, _eid, event = heapq.heappop(self._queue)
        if when < self._now - 1e-12:
            raise SimulationError(
                f"event calendar corrupted: next event at {when} but clock already at {self._now}"
            )
        self._now = max(self._now, when)

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # An un-handled failure: surface it instead of losing it.
            exc = event.value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    # -- run loop ---------------------------------------------------------------
    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` -- run until no events remain.
            * a number -- run until the clock reaches that time.
            * an :class:`Event` -- run until that event is processed and
              return its value (re-raising its exception if it failed).
        """
        until_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                until_event = until
                if until_event.processed:
                    return until_event.value
                until_event.callbacks.append(_stop_callback)
            else:
                deadline = float(until)
                if deadline < self._now:
                    raise SimulationError(
                        f"until={deadline} lies in the past (now={self._now})"
                    )
                until_event = Event(self)
                until_event._ok = True
                until_event._value = None
                # Highest priority so the clock stops exactly at the deadline
                # before any same-time activity runs.
                heapq.heappush(self._queue, (deadline, -1, self._eid, until_event))
                self._eid += 1
                until_event.callbacks.append(_stop_callback)

        try:
            while self._queue:
                self.step()
        except StopSimulation as stop:
            return stop.value

        if until_event is not None and not until_event.processed:
            raise SimulationError("simulation ran out of events before reaching 'until'")
        return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._queue)}>"


def _stop_callback(event: Event) -> None:
    """Callback attached to ``until`` events: stops the run loop."""
    if event._ok:
        raise StopSimulation(event._value)
    raise event._value
