"""The discrete-event environment: clock, event calendar and run loop.

The :class:`Environment` owns a *bucketed* event calendar:

* ``_ready`` -- the FIFO of events due at the **current** clock time.
  Zero-delay scheduling (every ``succeed()`` of a request, store get/put,
  condition, ...) appends here in O(1) with no heap traffic at all.
* ``_buckets`` -- a dict mapping each distinct **future** time to the FIFO
  bucket of normal-priority events scheduled at it; ``_times`` is a binary
  min-heap holding each distinct time once.  When the clock advances, the
  next time's whole bucket is adopted as the new ready list in O(1).
* ``_pri_buckets`` -- a rare-path dict of ``(priority, seq, event)`` lists
  for below-normal priorities (process initialisation, interrupts, ``until``
  sentinels); drained, lowest ``(priority, seq)`` first, before same-time
  normal events.

``run()`` drains the ready list, advances the clock and executes event
callbacks, which in turn resume the generator processes waiting on them.
The public surface (``timeout`` / ``process`` / ``schedule`` / ``step`` /
``run``) follows the conventional process-based DES structure so that the
simulation core reads like ordinary SimPy/SimGrid-style actor code.

Hot-path notes
--------------
A classic heap keyed by ``(time, priority, seq)`` pays 10+ tuple
comparisons per operation at realistic calendar sizes, which bounds the
whole kernel.  The bucketed calendar does cheap float comparisons on
distinct times only, and none at all for same-time events -- and DES
workloads are full of identical timestamps (fixed polling intervals,
synchronized job steps, zero-delay wakeup chains).  Within a bucket FIFO
order *is* insertion order, so no sequence counter is needed on the normal
path.  Two further fast paths matter:

* **Timeout pooling.**  :meth:`Environment.timeout` recycles processed
  :class:`Timeout` objects from a per-environment free list and inserts the
  calendar entry inline, skipping both the object allocation and the
  generic :meth:`schedule` indirection.  An object is only recycled when
  ``sys.getrefcount`` proves the kernel held the last reference (nobody
  outside can observe the reuse); on interpreters without refcounts the
  pool simply stays empty.
* **Inlined run loop.**  :meth:`Environment.run` inlines the per-event body
  of :meth:`step` with the calendar bound to locals; the no-failure common
  case executes without any try/except or attribute churn, and the
  failure / clock-guard / urgent-priority branches live in rarely taken
  out-of-line paths.

The clock-corruption guard uses a *relative* tolerance
(``1e-12 * max(1, |now|)``): with an absolute epsilon a week-long simulated
horizon (``now ~ 6e5``) would either false-positive on benign float noise
or mask real corruption, depending on the epsilon chosen.
"""

from __future__ import annotations

import sys
from heapq import heappop, heappush
from typing import Any, Dict, Generator, List, Optional

import numpy as np

from repro.des.events import AllOf, AnyOf, Event, Process, Timeout
from repro.des.macro import DynamicMacroLane, MacroBatch
from repro.utils.errors import SimulationError

__all__ = ["Environment", "StopSimulation"]

_INF = float("inf")

#: Sentinel returned by ``_pop_next`` when progress was a macro-entry
#: dispatch (the callback already ran) rather than a popped event.
_MACRO_STEP = object()

#: Default scheduling priority; "urgent" events (process initialisation,
#: interrupts) use priority 0 so they run before same-time normal events.
NORMAL_PRIORITY = 1
URGENT_PRIORITY = 0

#: Upper bound on the per-environment Timeout free list.
_POOL_MAX = 1024

#: ``sys.getrefcount`` is a CPython detail; without it pooling is disabled.
_getrefcount = getattr(sys, "getrefcount", None)


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at the ``until`` event."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Simulation clock value at start (seconds).

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(5)
    ...     return env.now
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> p.value
    5.0
    """

    __slots__ = (
        "_now",
        "_ready",
        "_times",
        "_buckets",
        "_pri_buckets",
        "_eid",
        "_active_process",
        "_timeout_pool",
        "_until",
        "_macro",
        "_macro_seq",
    )

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        #: Events due at the current clock time: [next_index, event, ...].
        #: Slot 0 is the index of the next event to dispatch; consumed slots
        #: are cleared so the kernel can recycle the objects they held.
        self._ready: list = [1]
        #: Min-heap of the distinct future times present in either bucket dict.
        self._times: List[float] = []
        #: future time -> [next_index, event, event, ...] (normal priority).
        self._buckets: Dict[float, list] = {}
        #: time -> [(priority, seq, event), ...] for below-normal priorities.
        self._pri_buckets: Dict[float, list] = {}
        #: Sequence counter ordering same-time, same-priority urgent events.
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Free list of processed Timeout objects awaiting reuse.
        self._timeout_pool: List[Timeout] = []
        #: The sentinel of the *currently executing* ``run(until=...)`` call.
        #: A sentinel left on the calendar by an earlier run (aborted by an
        #: exception, or simply a deadline beyond where that run stopped) no
        #: longer matches and is ignored when it is eventually processed --
        #: this is what makes stop/resume across repeated ``run`` calls safe.
        self._until: Optional[Event] = None
        #: Min-heap of ``(head_time, seq, lane)`` for registered macro lanes
        #: (see :mod:`repro.des.macro`).  Empty for purely scalar workloads,
        #: in which case the run loop never looks at it.
        self._macro: list = []
        #: Registration counter ordering same-time macro lanes.
        self._macro_seq = 0

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (``None`` between events)."""
        return self._active_process

    # -- event factories -------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event` bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None, *, _push=heappush, _new=Timeout.__new__) -> Timeout:
        """Create a :class:`Timeout` that triggers ``delay`` seconds from now.

        This is the kernel's dominant allocation; the fast path reuses a
        pooled, already-processed ``Timeout`` (pool entries are known to be
        ``_ok`` and not defused, so only ``delay`` and ``_value`` need
        resetting) and inserts the calendar entry inline instead of going
        through :meth:`schedule`.
        """
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
            timeout.delay = delay
            timeout._value = value
        else:
            timeout = _new(Timeout)
            timeout.env = self
            timeout.callbacks = []
            timeout.delay = delay
            timeout._ok = True
            timeout._value = value
            timeout.defused = False
        now = self._now
        when = now + delay
        if when > now:
            buckets = self._buckets
            bucket = buckets.get(when)
            if bucket is not None:
                bucket.append(timeout)
            else:
                buckets[when] = [1, timeout]
                if when not in self._pri_buckets:
                    _push(self._times, when)
        else:
            self._ready.append(timeout)
        return timeout

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` executing ``generator``."""
        return Process(self, generator)

    def schedule_macro(
        self,
        delays,
        callback,
        values=None,
        *,
        absolute: bool = False,
    ) -> MacroBatch:
        """Schedule a columnar batch of timed callbacks (``MacroBatch``).

        ``delays`` is a 1-D sequence of offsets from now (or absolute times
        with ``absolute=True``); ``callback(value)`` runs once per entry in
        ``(time, input position)`` order, with ``value`` drawn from the
        aligned ``values`` sequence (``None`` without one).  See
        :mod:`repro.des.macro` for the ordering contract relative to
        ordinary calendar events.
        """
        times = np.asarray(delays, dtype=np.float64)
        if times.ndim != 1:
            raise SimulationError("macro schedule must be a 1-D sequence of times")
        if not absolute:
            times = times + self._now
        if times.size:
            earliest = float(times.min())
            if earliest < self._now:
                raise SimulationError(
                    f"macro batch entry at {earliest} lies in the past (now={self._now})"
                )
        batch = MacroBatch(self, times, callback, values)
        if times.size:
            self._register_macro_lane(batch)
        return batch

    def macro_lane(self, callback) -> DynamicMacroLane:
        """Create a push-based macro lane dispatching through ``callback``.

        The lane registers itself with the calendar on first push; entries
        dispatch in ``(time, push order)`` -- the same per-time FIFO order
        the scalar calendar gives timeouts scheduled in push order.
        """
        return DynamicMacroLane(self, callback)

    def _register_macro_lane(self, lane) -> None:
        """Insert ``lane`` into the macro heap keyed by its current head."""
        seq = self._macro_seq
        self._macro_seq = seq + 1
        heappush(self._macro, (lane.head_time(), seq, lane))

    def all_of(self, events) -> AllOf:
        """Create a condition that waits for all of ``events``."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Create a condition that waits for any of ``events``."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL_PRIORITY, delay: float = 0.0) -> None:
        """Place a triggered event on the calendar ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        now = self._now
        when = now + delay
        if priority == NORMAL_PRIORITY:
            if when > now:
                buckets = self._buckets
                bucket = buckets.get(when)
                if bucket is not None:
                    bucket.append(event)
                else:
                    buckets[when] = [1, event]
                    if when not in self._pri_buckets:
                        heappush(self._times, when)
            else:
                self._ready.append(event)
        else:
            eid = self._eid
            self._eid = eid + 1
            pri_buckets = self._pri_buckets
            bucket = pri_buckets.get(when)
            if bucket is not None:
                heappush(bucket, (priority, eid, event))
            else:
                pri_buckets[when] = [(priority, eid, event)]
                # The drain loop inspects the urgent bucket of the *current*
                # time on every iteration; only future times need a heap entry.
                if when > now and when not in self._buckets:
                    heappush(self._times, when)

    def peek(self) -> float:
        """Return the time of the next scheduled event (``inf`` if none)."""
        ready = self._ready
        if ready[0] < len(ready) or self._now in self._pri_buckets:
            return self._now
        when = self._times[0] if self._times else _INF
        if self._macro:
            macro_head = self._macro_head()
            if macro_head < when:
                return macro_head
        return when

    @property
    def queue_length(self) -> int:
        """Number of events currently on the calendar (diagnostics)."""
        ready = self._ready
        count = len(ready) - ready[0]
        count += sum(len(bucket) - bucket[0] for bucket in self._buckets.values())
        count += sum(len(bucket) for bucket in self._pri_buckets.values())
        if self._macro:
            # Stale heap entries may duplicate a lane; count each lane once.
            lanes = {id(entry[2]): entry[2] for entry in self._macro}
            count += sum(lane.remaining for lane in lanes.values())
        return count

    # -- checkpoint support ----------------------------------------------------
    # cgsim: lint-ignore[snap-field-coverage] the calendar, timeout pool and generator frames cannot be pickled; replay rebuilds them (see docstring)
    def snapshot(self) -> dict:
        """Capture the kernel's checkpointable state: the clock.

        Part of the :class:`repro.state.Snapshottable` protocol.  The
        calendar (bucketed FIFO queues), the pooled timeouts and the live
        generator frames are deliberately *not* serialised: they cannot be
        pickled meaningfully, so checkpoints use deterministic replay -- the
        session re-executes its recorded inputs to rebuild them -- and the
        clock is the kernel-level invariant replay is verified against.
        """
        return {"now": self._now}

    def restore(self, state: dict) -> None:
        """Verify the environment was replayed to the snapshotted clock.

        The kernel's ``restore`` is a verification, not a mutation (see
        :meth:`snapshot`): after the owning session fast-forwards by
        replaying its op log, the clock must land exactly -- bit-identical
        float -- on the recorded time, or the replay diverged and a
        :class:`~repro.utils.errors.CheckpointError` is raised.
        """
        from repro.utils.errors import CheckpointError

        expected = state.get("now")
        if expected != self._now:
            raise CheckpointError(
                f"kernel clock diverged during replay: checkpoint recorded "
                f"t={expected!r}, replay reached t={self._now!r}"
            )

    def _pop_next(self) -> Optional[Any]:
        """Remove and return the next event in ``(time, priority, seq)`` order.

        Advances the clock as needed; returns ``None`` when no events remain.
        When the next unit of work is a macro-lane entry, dispatches exactly
        one entry (its callback runs here) and returns the ``_MACRO_STEP``
        sentinel instead of an event.
        """
        while True:
            if self._pri_buckets:
                bucket = self._pri_buckets.get(self._now)
                if bucket is not None:
                    return self._pop_pri(bucket)
            ready = self._ready
            index = ready[0]
            if index < len(ready):
                event = ready[index]
                ready[index] = None  # release the slot so the object can be pooled
                ready[0] = index + 1
                return event
            if self._macro:
                macro_head = self._macro_head()
                if macro_head != _INF:
                    times = self._times
                    if times:
                        head = times[0]
                        if macro_head == head and head in self._pri_buckets:
                            # Urgent events at this time outrank the macro
                            # entries: advance the clock only, the loop picks
                            # the urgent bucket up next iteration.
                            self._now = head
                            continue
                        if macro_head <= head:
                            self._dispatch_macro_one()
                            return _MACRO_STEP
                    else:
                        self._dispatch_macro_one()
                        return _MACRO_STEP
            if not self._advance_regular():
                return None

    def _pop_pri(self, bucket: list) -> Event:
        """Pop the lowest ``(priority, seq)`` entry of an urgent bucket (a heap)."""
        event = heappop(bucket)[2]
        if not bucket:
            del self._pri_buckets[self._now]
        return event

    def _advance(self) -> bool:
        """Make progress when the ready list is empty; False when nothing remains.

        On the scalar path this moves the clock to the next scheduled time
        and adopts that time's whole bucket as the new ready list.  With
        macro lanes registered it first arbitrates between the macro heads
        and the regular calendar (urgent buckets at the shared time win,
        then macro entries, then the normal bucket) and may instead drain a
        run of macro entries in a tight loop (:meth:`_advance_macro`).
        """
        if self._macro:
            macro_head = self._macro_head()
            if macro_head != _INF:
                times = self._times
                if times:
                    head = times[0]
                    if macro_head == head and head in self._pri_buckets:
                        # Deadline sentinels / urgent events at this time run
                        # before same-time macro entries: advance the clock
                        # only and let the run loop drain the urgent bucket.
                        self._now = head
                        return True
                    if macro_head <= head:
                        return self._advance_macro()
                else:
                    return self._advance_macro()
        return self._advance_regular()

    def _advance_regular(self) -> bool:
        """Move the clock to the next calendar time; False when none remains.

        Adopts the next time's whole bucket as the new ready list.
        """
        times = self._times
        if not times:
            return False
        when = heappop(times)
        if when < self._now:
            self._check_clock(when)
        else:
            self._now = when
        self._ready = self._buckets.pop(when, None) or [1]
        return True

    def _macro_head(self) -> float:
        """Earliest macro-entry time, refreshing stale lane heads lazily.

        Heap entries record a lane's head at registration time; a lane whose
        true head moved (drained entries, or a dynamic push that triggered a
        duplicate registration) is popped and, if still non-empty, reinserted
        under its current head.
        """
        macro = self._macro
        while macro:
            entry = macro[0]
            actual = entry[2].head_time()
            if actual == entry[0]:
                return actual
            heappop(macro)
            if actual != _INF:
                heappush(macro, (actual, entry[1], entry[2]))
        return _INF

    def _advance_macro(self) -> bool:
        """Drain a run of due entries from the front macro lane.

        Caller (:meth:`_advance`) has established that the lane's head is
        dispatchable.  The loop keeps dispatching entries from this lane
        while they stay ahead of every other event source, and bails back to
        the main run loop as soon as a callback makes same-time work
        runnable (ready/urgent events, or a newly registered lane) so
        causality within a timestamp is preserved.
        """
        macro = self._macro
        lane = macro[0][2]
        times = self._times
        pri = self._pri_buckets
        ready = self._ready
        callback = lane.callback
        # Heads of *other* lanes are fixed while this lane drains (a new
        # registration changes len(macro), which is re-checked per entry).
        if len(macro) > 1:
            limit = macro[1][0]
            if len(macro) > 2 and macro[2][0] < limit:
                limit = macro[2][0]
        else:
            limit = _INF
        lane_count = len(macro)
        if type(lane) is MacroBatch:
            lane_times = lane._times
            lane_values = lane._values
            cursor = lane._cursor
            size = len(lane_times)
            try:
                while cursor < size:
                    when = lane_times[cursor]
                    if when > limit:
                        break
                    if times:
                        head = times[0]
                        if when > head or (when == head and head in pri):
                            break
                    if when != self._now:
                        if when < self._now:
                            self._check_clock(when)
                        else:
                            self._now = when
                    value = None if lane_values is None else lane_values[cursor]
                    cursor += 1
                    callback(value)
                    if lane._cancelled:
                        cursor = size
                        break
                    if ready[0] < len(ready) or (pri and self._now in pri) or len(macro) != lane_count:
                        break
            finally:
                lane._cursor = cursor
        else:
            heap = lane._heap
            while heap:
                when = heap[0][0]
                if when > limit:
                    break
                if times:
                    head = times[0]
                    if when > head or (when == head and head in pri):
                        break
                if when != self._now:
                    if when < self._now:
                        self._check_clock(when)
                    else:
                        self._now = when
                callback(heappop(heap)[2])
                if ready[0] < len(ready) or (pri and self._now in pri) or len(macro) != lane_count:
                    break
        return True

    def _dispatch_macro_one(self) -> None:
        """Dispatch exactly one entry from the front macro lane (step path)."""
        lane = self._macro[0][2]
        when = lane.head_time()
        if when != self._now:
            if when < self._now:
                self._check_clock(when)
            else:
                self._now = when
        if type(lane) is MacroBatch:
            cursor = lane._cursor
            value = lane._values[cursor] if lane._values is not None else None
            lane._cursor = cursor + 1
            lane.callback(value)
        else:
            lane.callback(lane._pop_value())

    def step(self) -> None:
        """Process exactly one event; raise :class:`IndexError` if none remain.

        A due macro-lane entry counts as one event: its callback has already
        run inside the dispatch, so ``step`` returns immediately.
        """
        event = self._pop_next()
        if event is None:
            raise IndexError("no more events scheduled")
        if event is _MACRO_STEP:
            return

        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)

        if event._ok:
            # Common case: recycle the Timeout when the kernel held the last
            # reference (step's local + getrefcount's argument = 2).
            if (
                type(event) is Timeout
                and not event.defused
                and _getrefcount is not None
                and _getrefcount(event) == 2
                and len(self._timeout_pool) < _POOL_MAX
            ):
                callbacks.clear()
                event.callbacks = callbacks
                event._value = None  # don't pin the payload while pooled
                self._timeout_pool.append(event)
        elif not event.defused:
            # An un-handled failure: surface it instead of losing it.
            exc = event.value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    def _check_clock(self, when: float) -> None:
        """Scale-aware guard against a corrupted calendar (clock going backwards)."""
        now = self._now
        if when < now - 1e-12 * (abs(now) if abs(now) > 1.0 else 1.0):
            raise SimulationError(
                f"event calendar corrupted: next event at {when} but clock already at {now}"
            )

    # -- run loop ---------------------------------------------------------------
    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` -- run until no events remain.
            * a number -- run until the clock reaches that time.
            * an :class:`Event` -- run until that event is processed and
              return its value (re-raising its exception if it failed).

        ``run`` is re-entrant: a stopped (or aborted) run can be resumed by
        calling ``run`` again with a later deadline or another event.  Only
        the sentinel belonging to the *current* call stops the loop; stale
        sentinels left behind by earlier calls are processed as ordinary
        no-op events (see :class:`repro.core.session.SimulationSession`,
        which leans on exactly this to pause and resume a simulation).
        """
        until_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                until_event = until
                if until_event.processed:
                    return until_event.value
                until_event.callbacks.append(_stop_callback)
            else:
                deadline = float(until)
                if deadline < self._now:
                    raise SimulationError(
                        f"until={deadline} lies in the past (now={self._now})"
                    )
                until_event = Event(self)
                until_event._ok = True
                until_event._value = None
                # Highest priority so the clock stops exactly at the deadline
                # before any same-time activity runs.
                self.schedule(until_event, priority=-1, delay=deadline - self._now)
                until_event.callbacks.append(_stop_callback)

        # The loop body is step() with the calendar bound to locals and the
        # failure/guard/urgent branches pushed out of line.
        self._until = until_event
        pri_buckets = self._pri_buckets
        pool = self._timeout_pool
        refcount = _getrefcount
        try:
            while True:
                event = None
                if pri_buckets:
                    bucket = pri_buckets.get(self._now)
                    if bucket is not None:
                        event = self._pop_pri(bucket)
                if event is None:
                    ready = self._ready
                    index = ready[0]
                    if index < len(ready):
                        event = ready[index]
                        ready[index] = None
                        ready[0] = index + 1
                    else:
                        if not self._advance():
                            break
                        continue

                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)

                if event._ok:
                    # References here: loop local + cleared calendar slot +
                    # getrefcount argument -> 2 means nobody else holds it.
                    if (
                        type(event) is Timeout
                        and not event.defused
                        and refcount is not None
                        and refcount(event) == 2
                        and len(pool) < _POOL_MAX
                    ):
                        callbacks.clear()
                        event.callbacks = callbacks
                        event._value = None  # don't pin the payload while pooled
                        pool.append(event)
                elif not event.defused:
                    exc = event.value
                    raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))
        except StopSimulation as stop:
            return stop.value
        finally:
            self._until = None

        if until_event is not None and not until_event.processed:
            raise SimulationError("simulation ran out of events before reaching 'until'")
        return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={self.queue_length}>"


def _stop_callback(event: Event) -> None:
    """Callback attached to ``until`` events: stops the run loop.

    Only the sentinel of the run call currently executing may stop the loop;
    a sentinel left behind by an earlier (stopped or aborted) run is ignored,
    so resuming past an old deadline does not halt prematurely.
    """
    if event.env._until is not event:
        return
    if event._ok:
        raise StopSimulation(event._value)
    raise event._value
