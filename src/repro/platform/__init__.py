"""Platform model: hosts, links, zones, routing, network and CPU sharing.

This package reproduces the part of SimGrid that CGSim relies on: a
description of the simulated hardware (computing sites made of hosts with
cores/speed/RAM/disk, interconnected by links with latency and bandwidth,
grouped into network zones) together with the performance models that turn
activities into simulated durations:

* :class:`~repro.platform.host.Host` and
  :class:`~repro.platform.storage.Storage` -- per-machine compute and disk.
* :class:`~repro.platform.link.Link` -- point-to-point network capacity.
* :class:`~repro.platform.zone.NetZone` -- the site-level container handling
  routing between its hosts and towards other zones, exactly as CGSim maps
  one computing site to one SimGrid netzone.
* :class:`~repro.platform.network.NetworkModel` -- a flow-level network model
  with progressive-filling max-min fair bandwidth sharing.
* :class:`~repro.platform.compute.ComputeModel` -- slot-based and fair-share
  CPU execution models.
* :class:`~repro.platform.platform.Platform` -- the top-level object gluing
  zones, routes and models together; built from the topology configuration.
"""

from repro.platform.compute import ComputeModel, Execution
from repro.platform.host import Host
from repro.platform.link import Link
from repro.platform.network import Flow, NetworkModel
from repro.platform.platform import Platform
from repro.platform.routing import Route, RoutingTable
from repro.platform.storage import Storage
from repro.platform.zone import NetZone

__all__ = [
    "Host",
    "Link",
    "NetZone",
    "Platform",
    "NetworkModel",
    "Flow",
    "ComputeModel",
    "Execution",
    "Storage",
    "Route",
    "RoutingTable",
]
