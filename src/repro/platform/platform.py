"""The :class:`Platform` facade: zones, routing, network and compute models.

A :class:`Platform` is the complete simulated hardware: every zone (site)
with its hosts and storage, the inter-zone topology, and the shared
performance models (flow-level network, compute).  It is what allocation
policy plugins see through ``get_resource_information`` and what the
simulation core executes jobs against.

Platforms can be built programmatically (as done in the unit tests) or from
the topology/infrastructure configuration files through
:mod:`repro.platform.builder`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.des import Environment
from repro.platform.compute import ComputeModel
from repro.platform.host import Host
from repro.platform.link import Link
from repro.platform.network import NetworkModel
from repro.platform.routing import Route, RoutingTable
from repro.platform.storage import Storage
from repro.platform.zone import NetZone
from repro.utils.errors import PlatformError

__all__ = ["Platform"]


class Platform:
    """The complete simulated computing platform.

    Parameters
    ----------
    env:
        Discrete-event environment shared by every model on the platform.
    routing_weight:
        Shortest-path weight used for inter-zone routing (see
        :class:`~repro.platform.routing.RoutingTable`).
    """

    def __init__(self, env: Environment, routing_weight: str = "latency") -> None:
        self.env = env
        self._zones: Dict[str, NetZone] = {}
        self._hosts: Dict[str, Host] = {}
        self._links: Dict[str, Link] = {}
        self._storages: Dict[str, Storage] = {}
        self.routing = RoutingTable(weight=routing_weight)
        self.network = NetworkModel(env)
        self.compute = ComputeModel(env)

    # -- construction -----------------------------------------------------------
    def add_zone(
        self,
        name: str,
        local_bandwidth: Optional[float] = None,
        local_latency: float = 0.0,
        properties: Optional[Dict[str, str]] = None,
    ) -> NetZone:
        """Create and register a zone, optionally with an intra-zone link."""
        if name in self._zones:
            raise PlatformError(f"duplicate zone {name!r}")
        local_link = None
        if local_bandwidth is not None:
            local_link = self.add_link(
                f"{name}__local", bandwidth=local_bandwidth, latency=local_latency
            )
        zone = NetZone(name, local_link=local_link, properties=properties)
        self._zones[name] = zone
        self.routing.add_zone(name, local_link=local_link)
        return zone

    def add_link(
        self,
        name: str,
        bandwidth: float,
        latency: float = 0.0,
        sharing: str = "shared",
    ) -> Link:
        """Create and register a link (not yet attached to the topology)."""
        if name in self._links:
            raise PlatformError(f"duplicate link {name!r}")
        link = Link(name, bandwidth=bandwidth, latency=latency, sharing=sharing)
        self._links[name] = link
        return link

    def connect_zones(self, zone_a: str, zone_b: str, link: Link) -> None:
        """Attach ``link`` between two registered zones."""
        for zone in (zone_a, zone_b):
            if zone not in self._zones:
                raise PlatformError(f"unknown zone {zone!r}")
        self.routing.connect(zone_a, zone_b, link)

    def add_host(
        self,
        zone_name: str,
        name: str,
        speed: float,
        cores: int = 1,
        ram: float = 0.0,
        properties: Optional[Dict[str, str]] = None,
    ) -> Host:
        """Create a host inside ``zone_name``."""
        if name in self._hosts:
            raise PlatformError(f"duplicate host {name!r}")
        zone = self.zone(zone_name)
        host = Host(self.env, name, speed=speed, cores=cores, ram=ram, properties=properties)
        zone.add_host(host)
        self._hosts[name] = host
        return host

    def add_storage(
        self,
        zone_name: str,
        name: str,
        capacity: float = float("inf"),
        read_bandwidth: float = 1e9,
        write_bandwidth: float = 1e9,
    ) -> Storage:
        """Create a storage element associated with ``zone_name``."""
        if name in self._storages:
            raise PlatformError(f"duplicate storage {name!r}")
        zone = self.zone(zone_name)  # validates the zone exists
        storage = Storage(
            self.env,
            name,
            capacity=capacity,
            read_bandwidth=read_bandwidth,
            write_bandwidth=write_bandwidth,
        )
        storage.zone_name = zone.name  # type: ignore[attr-defined]
        self._storages[name] = storage
        return storage

    # -- lookup ------------------------------------------------------------------
    def zone(self, name: str) -> NetZone:
        """Return the zone called ``name``."""
        try:
            return self._zones[name]
        except KeyError:
            raise PlatformError(f"unknown zone {name!r}") from None

    def host(self, name: str) -> Host:
        """Return the host called ``name``."""
        try:
            return self._hosts[name]
        except KeyError:
            raise PlatformError(f"unknown host {name!r}") from None

    def storage(self, name: str) -> Storage:
        """Return the storage element called ``name``."""
        try:
            return self._storages[name]
        except KeyError:
            raise PlatformError(f"unknown storage {name!r}") from None

    def link(self, name: str) -> Link:
        """Return the link called ``name``."""
        try:
            return self._links[name]
        except KeyError:
            raise PlatformError(f"unknown link {name!r}") from None

    @property
    def zones(self) -> List[NetZone]:
        """All zones in registration order."""
        return list(self._zones.values())

    @property
    def zone_names(self) -> List[str]:
        """Names of all zones in registration order."""
        return list(self._zones)

    @property
    def hosts(self) -> List[Host]:
        """All hosts in registration order."""
        return list(self._hosts.values())

    @property
    def links(self) -> List[Link]:
        """All links in registration order."""
        return list(self._links.values())

    @property
    def storages(self) -> List[Storage]:
        """All storage elements in registration order."""
        return list(self._storages.values())

    def storages_in_zone(self, zone_name: str) -> List[Storage]:
        """Storage elements registered under ``zone_name``."""
        return [s for s in self._storages.values() if getattr(s, "zone_name", None) == zone_name]

    # -- derived information -------------------------------------------------------
    def route(self, source_zone: str, destination_zone: str) -> Route:
        """Route between two zones (see :class:`RoutingTable`)."""
        return self.routing.route(source_zone, destination_zone)

    @property
    def total_cores(self) -> int:
        """Total cores across every zone."""
        return sum(zone.total_cores for zone in self._zones.values())

    def describe(self) -> dict:
        """Return a JSON-friendly summary of the platform (used by plugins).

        This is the structure handed to allocation policies through
        ``get_resource_information``: per-zone core counts, speeds, storage
        and connectivity, without exposing simulator internals.
        """
        zones = {}
        for zone in self._zones.values():
            zones[zone.name] = {
                "hosts": len(zone.hosts),
                "total_cores": zone.total_cores,
                "available_cores": zone.available_cores,
                "mean_core_speed": zone.mean_core_speed(),
                "properties": dict(zone.properties),
                "storages": [s.name for s in self.storages_in_zone(zone.name)],
                "neighbors": self.routing.neighbors(zone.name),
            }
        return {
            "zones": zones,
            "links": {
                link.name: {"bandwidth": link.bandwidth, "latency": link.latency}
                for link in self._links.values()
            },
            "total_cores": self.total_cores,
        }

    def validate(self) -> None:
        """Check structural consistency (connectivity, non-empty zones).

        Raises :class:`PlatformError` describing the first problem found.
        Zones without hosts are allowed only if flagged as abstract
        (``properties["abstract"] == "true"``), which is how the main-server
        zone is represented.
        """
        if not self._zones:
            raise PlatformError("platform has no zones")
        for zone in self._zones.values():
            abstract = zone.properties.get("abstract", "false").lower() == "true"
            if not zone.hosts and not abstract:
                raise PlatformError(f"zone {zone.name!r} has no hosts")
        names = self.zone_names
        for other in names[1:]:
            if not self.routing.has_route(names[0], other):
                raise PlatformError(
                    f"zone {other!r} is unreachable from {names[0]!r}; topology is disconnected"
                )

    def __repr__(self) -> str:
        return (
            f"<Platform zones={len(self._zones)} hosts={len(self._hosts)} "
            f"links={len(self._links)}>"
        )
