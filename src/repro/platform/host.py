"""Host model: a machine with cores, per-core speed, RAM and attached storage.

In CGSim each computing site contains hosts ("CPUs") with properties such as
speed, RAM and storage; jobs occupy an integer number of cores for a duration
derived from their computational work and the host's per-core speed.  The
host exposes its cores as a counted resource so the site receiver actor can
admit jobs only while free cores remain, which is what produces realistic
queueing behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.des import Environment, Resource
from repro.utils.errors import PlatformError

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.storage import Storage
    from repro.platform.zone import NetZone

__all__ = ["Host"]


class Host:
    """A simulated machine.

    Parameters
    ----------
    env:
        Discrete-event environment.
    name:
        Globally unique host name (e.g. ``"BNL_wn012"``).
    speed:
        Per-core speed in operations per second (flop/s or HS23-normalised
        units -- the simulator only requires work and speed to share a unit).
    cores:
        Number of cores.
    ram:
        Memory in bytes.
    properties:
        Free-form key/value metadata (availability zone, tier, ...).
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        speed: float,
        cores: int = 1,
        ram: float = 0.0,
        properties: Optional[Dict[str, str]] = None,
    ) -> None:
        if speed <= 0:
            raise PlatformError(f"host {name!r}: speed must be positive, got {speed}")
        if cores < 1:
            raise PlatformError(f"host {name!r}: cores must be >= 1, got {cores}")
        if ram < 0:
            raise PlatformError(f"host {name!r}: ram must be >= 0, got {ram}")
        self.env = env
        self.name = name
        self.speed = float(speed)
        self.cores = int(cores)
        self.ram = float(ram)
        self.properties: Dict[str, str] = dict(properties or {})
        self.zone: Optional["NetZone"] = None
        self.storage: Optional["Storage"] = None
        #: Counted core pool; acquired by executions.
        self.core_pool = Resource(env, capacity=self.cores)
        #: Cumulative busy core-seconds, for utilisation accounting.
        self._busy_core_seconds = 0.0

    # -- capacity ------------------------------------------------------------
    @property
    def available_cores(self) -> int:
        """Cores not currently held by an execution."""
        return self.core_pool.available

    @property
    def used_cores(self) -> int:
        """Cores currently held by an execution."""
        return self.core_pool.count

    @property
    def total_speed(self) -> float:
        """Aggregate speed across all cores (operations per second)."""
        return self.speed * self.cores

    def duration_for(self, work: float, cores: int = 1, efficiency: float = 1.0) -> float:
        """Time to execute ``work`` operations on ``cores`` cores of this host.

        ``efficiency`` scales the effective speed (parallel efficiency < 1 for
        multi-core jobs models imperfect scaling).
        """
        if work < 0:
            raise PlatformError(f"work must be >= 0, got {work}")
        if cores < 1 or cores > self.cores:
            raise PlatformError(
                f"host {self.name!r}: cannot run on {cores} cores (host has {self.cores})"
            )
        if efficiency <= 0 or efficiency > 1:
            raise PlatformError(f"efficiency must be in (0, 1], got {efficiency}")
        return work / (self.speed * cores * efficiency)

    def account_busy(self, cores: int, duration: float) -> None:
        """Record ``cores`` busy for ``duration`` seconds (utilisation metric)."""
        self._busy_core_seconds += cores * duration

    @property
    def busy_core_seconds(self) -> float:
        """Total core-seconds of completed work on this host."""
        return self._busy_core_seconds

    def utilisation(self, horizon: float) -> float:
        """Fraction of core capacity used over ``horizon`` simulated seconds."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self._busy_core_seconds / (self.cores * horizon))

    def __repr__(self) -> str:
        return f"<Host {self.name} cores={self.cores} speed={self.speed:g}>"
