"""CPU execution models.

Two models are provided:

* **Slot model** (default, :meth:`ComputeModel.execute`): a job requests an
  integer number of cores on a host; once granted, it holds them for
  ``work / (speed * cores * efficiency)`` seconds.  This matches how WLCG
  batch systems hand whole cores/slots to jobs and is the model used by the
  CGSim evaluation (jobs have a core count and a walltime).
* **Fair-share model** (:meth:`ComputeModel.execute_shared`): all executions
  on a host share its aggregate speed equally (progressive filling with a
  single bottleneck), analogous to SimGrid's host CPU sharing.  It is exposed
  for ablation benchmarks comparing the two.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.des import Environment, Event
from repro.platform.host import Host
from repro.utils.errors import PlatformError

__all__ = ["Execution", "ComputeModel"]


@dataclass
class Execution:
    """Record of one (possibly still running) job execution on a host."""

    execution_id: int
    host: Host
    work: float
    cores: int
    efficiency: float
    start_time: float
    #: Filled in when the execution finishes.
    end_time: Optional[float] = None
    #: Metadata carried for monitoring (job id, site, ...).
    metadata: dict = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        """Wall-clock duration, available once finished."""
        if self.end_time is None:
            return None
        return self.end_time - self.start_time


class ComputeModel:
    """Executes computational work on hosts under the slot or fair-share model."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._ids = itertools.count(1)
        #: Completed executions, in completion order.
        self.completed: List[Execution] = []
        # Fair-share bookkeeping, per host.
        self._shared: Dict[Host, List[dict]] = {}
        self._shared_epoch: Dict[Host, int] = {}

    # -- slot model ----------------------------------------------------------
    def execute(
        self,
        host: Host,
        work: float,
        cores: int = 1,
        efficiency: float = 1.0,
        overhead: float = 0.0,
        metadata: Optional[dict] = None,
    ) -> Event:
        """Run ``work`` operations on ``cores`` dedicated cores of ``host``.

        The returned event succeeds with the :class:`Execution` record when
        the job finishes.  ``overhead`` adds a fixed number of seconds to the
        runtime (job setup/staging overhead).
        """
        if work < 0:
            raise PlatformError(f"work must be >= 0, got {work}")
        if overhead < 0:
            raise PlatformError(f"overhead must be >= 0, got {overhead}")
        done = Event(self.env)
        self.env.process(self._run_slot(host, work, cores, efficiency, overhead, done, metadata))
        return done

    def _run_slot(self, host, work, cores, efficiency, overhead, done, metadata):
        request = host.core_pool.request(amount=cores)
        yield request
        execution = Execution(
            execution_id=next(self._ids),
            host=host,
            work=work,
            cores=cores,
            efficiency=efficiency,
            start_time=self.env.now,
            metadata=dict(metadata or {}),
        )
        try:
            duration = host.duration_for(work, cores=cores, efficiency=efficiency) + overhead
            yield self.env.timeout(duration)
            execution.end_time = self.env.now
            host.account_busy(cores, duration)
            self.completed.append(execution)
            done.succeed(execution)
        finally:
            host.core_pool.release(request)

    # -- fair-share model -------------------------------------------------------
    def execute_shared(
        self,
        host: Host,
        work: float,
        metadata: Optional[dict] = None,
    ) -> Event:
        """Run ``work`` operations sharing the host's total speed with other work.

        All shared executions on the same host progress at
        ``host.total_speed / n`` where ``n`` is the number of concurrent
        shared executions; rates are re-evaluated whenever an execution
        arrives or leaves.
        """
        if work < 0:
            raise PlatformError(f"work must be >= 0, got {work}")
        done = Event(self.env)
        entry = {
            "remaining": float(work),
            "done": done,
            "last_update": self.env.now,
            "record": Execution(
                execution_id=next(self._ids),
                host=host,
                work=work,
                cores=host.cores,
                efficiency=1.0,
                start_time=self.env.now,
                metadata=dict(metadata or {}),
            ),
        }
        self._shared.setdefault(host, []).append(entry)
        self._reshare(host)
        return done

    def _reshare(self, host: Host) -> None:
        entries = self._shared.get(host, [])
        now = self.env.now
        # Settle progress at the rate each entry was last granted.
        for entry in entries:
            elapsed = now - entry["last_update"]
            rate = entry.get("rate", 0.0)
            if elapsed > 0 and rate > 0:
                entry["remaining"] = max(0.0, entry["remaining"] - rate * elapsed)
            entry["last_update"] = now
        # Complete whatever finished.
        still_running = []
        for entry in entries:
            if entry["remaining"] <= 1e-9:
                record: Execution = entry["record"]
                record.end_time = now
                host.account_busy(host.cores, record.end_time - record.start_time)
                self.completed.append(record)
                entry["done"].succeed(record)
            else:
                still_running.append(entry)
        self._shared[host] = still_running
        if not still_running:
            return
        # New equal share of the aggregate speed.
        rate = host.total_speed / len(still_running)
        next_completion = math.inf
        for entry in still_running:
            entry["rate"] = rate
            next_completion = min(next_completion, entry["remaining"] / rate)
        epoch = self._shared_epoch.get(host, 0) + 1
        self._shared_epoch[host] = epoch
        self.env.process(self._shared_wakeup(host, next_completion, epoch))

    def _shared_wakeup(self, host: Host, delay: float, epoch: int):
        yield self.env.timeout(delay)
        if self._shared_epoch.get(host) != epoch:
            return
        self._reshare(host)

    def __repr__(self) -> str:
        return f"<ComputeModel completed={len(self.completed)}>"
