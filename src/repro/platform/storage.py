"""Storage model: per-site disk capacity and read/write bandwidth.

Each computing site owns a storage element holding input and output files.
The model tracks occupied capacity (so a site can refuse data it cannot hold)
and serialises read/write operations through a bandwidth-limited channel, so
heavy staging activity slows down concurrent I/O, similar to SimGrid disk
resources.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.des import Environment, Event, Resource
from repro.utils.errors import PlatformError

__all__ = ["Storage"]


class Storage:
    """A storage element with capacity and read/write bandwidth.

    Parameters
    ----------
    env:
        Discrete-event environment.
    name:
        Unique storage name (usually ``"<site>_se"``).
    capacity:
        Total capacity in bytes (``inf`` allowed).
    read_bandwidth / write_bandwidth:
        Aggregate bandwidth in bytes/second shared by concurrent operations
        (operations are serialised through a single channel, i.e. an
        operation sees the full bandwidth but waits for earlier ones).
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        capacity: float = float("inf"),
        read_bandwidth: float = 1e9,
        write_bandwidth: float = 1e9,
    ) -> None:
        if capacity <= 0:
            raise PlatformError(f"storage {name!r}: capacity must be positive")
        if read_bandwidth <= 0 or write_bandwidth <= 0:
            raise PlatformError(f"storage {name!r}: bandwidths must be positive")
        self.env = env
        self.name = name
        self.capacity = float(capacity)
        self.read_bandwidth = float(read_bandwidth)
        self.write_bandwidth = float(write_bandwidth)
        self._used = 0.0
        self._files: Dict[str, float] = {}
        self._channel = Resource(env, capacity=1)
        #: Cumulative I/O accounting (bytes).
        self.bytes_read = 0.0
        self.bytes_written = 0.0

    # -- capacity ------------------------------------------------------------
    @property
    def used(self) -> float:
        """Bytes currently stored."""
        return self._used

    @property
    def free(self) -> float:
        """Bytes still available."""
        return self.capacity - self._used

    def holds(self, filename: str) -> bool:
        """True when ``filename`` is present on this storage."""
        return filename in self._files

    def file_size(self, filename: str) -> float:
        """Size of a stored file (raises if absent)."""
        try:
            return self._files[filename]
        except KeyError:
            raise PlatformError(f"storage {self.name!r} does not hold {filename!r}") from None

    @property
    def files(self) -> Dict[str, float]:
        """Mapping of stored file name to size."""
        return dict(self._files)

    # -- synchronous catalogue operations ------------------------------------------
    def register(self, filename: str, size: float) -> None:
        """Account for a file placed on this storage without simulating I/O.

        Used when building the initial replica distribution before the
        simulation starts.
        """
        if size < 0:
            raise PlatformError("file size must be >= 0")
        if filename in self._files:
            return
        if self._used + size > self.capacity + 1e-9:
            raise PlatformError(
                f"storage {self.name!r} full: cannot register {filename!r} ({size} bytes)"
            )
        self._files[filename] = float(size)
        self._used += size

    def evict(self, filename: str) -> None:
        """Remove a file from the storage (no simulated I/O)."""
        size = self._files.pop(filename, None)
        if size is not None:
            self._used -= size

    # -- simulated I/O -----------------------------------------------------------
    def write(self, filename: str, size: float) -> Event:
        """Write ``size`` bytes as ``filename``; event succeeds when done."""
        if size < 0:
            raise PlatformError("file size must be >= 0")
        done = Event(self.env)
        self.env.process(self._write_proc(filename, size, done))
        return done

    def _write_proc(self, filename: str, size: float, done: Event):
        if self._used + size > self.capacity + 1e-9:
            done.fail(PlatformError(f"storage {self.name!r} full writing {filename!r}"))
            return
        with self._channel.request() as slot:
            yield slot
            yield self.env.timeout(size / self.write_bandwidth)
        self.register(filename, size)
        self.bytes_written += size
        done.succeed(filename)

    def read(self, filename: str) -> Event:
        """Read ``filename``; event succeeds (with its size) when done."""
        done = Event(self.env)
        self.env.process(self._read_proc(filename, done))
        return done

    def _read_proc(self, filename: str, done: Event):
        if filename not in self._files:
            done.fail(PlatformError(f"storage {self.name!r} does not hold {filename!r}"))
            return
        size = self._files[filename]
        with self._channel.request() as slot:
            yield slot
            yield self.env.timeout(size / self.read_bandwidth)
        self.bytes_read += size
        done.succeed(size)

    def __repr__(self) -> str:
        return f"<Storage {self.name} used={self._used:g}/{self.capacity:g}>"
