"""Flow-level network model with max-min fair bandwidth sharing.

Transfers are modelled as *flows*: a number of bytes moving along a route (a
sequence of links).  At any instant, every link's capacity is divided among
the flows traversing it by **progressive filling** (max-min fairness): the
allocation repeatedly gives every unfrozen flow an equal share of the most
constrained link, freezes the flows crossing that link, and continues until
every flow is bounded by some bottleneck.  This is the classic fluid model
SimGrid's validated network models are built around, and it is what gives
contention-dependent transfer times.

Whenever a flow starts or finishes the allocation is re-solved and the
projected completion time of every active flow is updated.  The model is
driven by a single wake-up event per change (epoch-guarded), so the number of
simulation events is proportional to the number of flow arrivals/departures
rather than to the number of rate changes squared.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.des import Environment, Event
from repro.platform.link import Link
from repro.platform.routing import Route
from repro.utils.errors import PlatformError

__all__ = ["Flow", "NetworkModel"]


@dataclass
class Flow:
    """One active data transfer over a route."""

    flow_id: int
    route: Route
    size: float
    remaining: float
    done_event: Event
    start_time: float
    #: Current allocated rate (bytes/second); updated on every re-share.
    rate: float = 0.0
    #: Simulation time of the last remaining-bytes settlement.
    last_update: float = 0.0
    #: Extra metadata (job id, file name, ...) carried for monitoring.
    metadata: dict = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        """True once all bytes have been delivered.

        The threshold is relative to the transfer size: the fluid model
        settles remaining bytes from floating-point time differences, so a
        large transfer can legitimately be left with a sub-byte residue that
        must count as delivered (otherwise the completion wake-up can fall
        below the clock's resolution and never drain it).
        """
        return self.remaining <= max(1e-9, 1e-12 * self.size)


class NetworkModel:
    """Shared-bandwidth network simulation over a set of links.

    Parameters
    ----------
    env:
        Discrete-event environment.

    Notes
    -----
    * Latency is applied once per transfer, up-front, as an additional delay
      before the flow starts consuming bandwidth (the standard fluid-model
      approximation).
    * Links with ``sharing="fatpipe"`` never constrain flows below their
      nominal bandwidth no matter how many flows cross them.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._flows: Dict[int, Flow] = {}
        self._ids = itertools.count(1)
        self._epoch = 0
        #: Completed-transfer log: (flow, completion_time) tuples.
        self.completed: List[Flow] = []

    # -- public API --------------------------------------------------------------
    @property
    def active_flow_count(self) -> int:
        """Number of flows currently transferring."""
        return len(self._flows)

    def transfer(self, route: Route, size: float, metadata: Optional[dict] = None) -> Event:
        """Start a transfer of ``size`` bytes along ``route``.

        Returns an event that succeeds (with the flow object as value) when
        the last byte arrives.  Zero-byte transfers complete after the route
        latency alone.
        """
        if size < 0:
            raise PlatformError(f"transfer size must be >= 0, got {size}")
        done = Event(self.env)
        if not route.links:
            # No links on the route: the transfer is instantaneous.
            self.env.process(self._trivial_transfer(done, route, size, metadata))
            return done
        self.env.process(self._delayed_start(route, size, done, metadata))
        return done

    def _trivial_transfer(self, done: Event, route: Route, size: float, metadata):
        yield self.env.timeout(0.0)
        flow = Flow(
            flow_id=next(self._ids),
            route=route,
            size=size,
            remaining=0.0,
            done_event=done,
            start_time=self.env.now,
            last_update=self.env.now,
            metadata=dict(metadata or {}),
        )
        self.completed.append(flow)
        done.succeed(flow)

    def _delayed_start(self, route: Route, size: float, done: Event, metadata):
        # Latency is paid once, before bandwidth consumption begins.
        if route.latency > 0:
            yield self.env.timeout(route.latency)
        flow = Flow(
            flow_id=next(self._ids),
            route=route,
            size=size,
            remaining=float(size),
            done_event=done,
            start_time=self.env.now,
            last_update=self.env.now,
            metadata=dict(metadata or {}),
        )
        if size == 0:
            self.completed.append(flow)
            done.succeed(flow)
            return
        self._flows[flow.flow_id] = flow
        for link in flow.route.links:
            link.active_flows += 1
        self._reschedule()

    # -- fair sharing -----------------------------------------------------------
    def _settle(self) -> None:
        """Advance every active flow's remaining bytes to the current time."""
        now = self.env.now
        for flow in self._flows.values():
            elapsed = now - flow.last_update
            if elapsed > 0 and flow.rate > 0:
                flow.remaining = max(0.0, flow.remaining - flow.rate * elapsed)
                # Snap floating-point residues (relative to the transfer size)
                # to zero so the flow is recognised as finished.
                if flow.remaining <= max(1e-9, 1e-12 * flow.size):
                    flow.remaining = 0.0
            flow.last_update = now

    def _compute_rates(self) -> None:
        """Max-min fair allocation by progressive filling."""
        flows = list(self._flows.values())
        if not flows:
            return
        # Capacity per shared link; fatpipe links never constrain.
        link_capacity: Dict[Link, float] = {}
        link_flows: Dict[Link, List[Flow]] = {}
        for flow in flows:
            for link in flow.route.links:
                if link.is_fatpipe:
                    continue
                link_capacity.setdefault(link, link.bandwidth)
                link_flows.setdefault(link, []).append(flow)

        unfrozen = set(f.flow_id for f in flows)
        rates = {f.flow_id: 0.0 for f in flows}
        remaining_capacity = dict(link_capacity)
        active_on_link = {link: list(fl) for link, fl in link_flows.items()}

        while unfrozen:
            # Find the most constrained link: smallest fair share among links
            # that still carry unfrozen flows.
            best_share = math.inf
            best_link: Optional[Link] = None
            for link, flows_on_link in active_on_link.items():
                current = [f for f in flows_on_link if f.flow_id in unfrozen]
                if not current:
                    continue
                share = remaining_capacity[link] / len(current)
                if share < best_share:
                    best_share = share
                    best_link = link
            if best_link is None:
                # Every remaining flow only crosses fatpipe links: each gets
                # its bottleneck nominal bandwidth.
                for flow in flows:
                    if flow.flow_id in unfrozen:
                        rates[flow.flow_id] = flow.route.bottleneck_bandwidth
                break
            # Freeze every unfrozen flow crossing the bottleneck at the share.
            frozen_now = [
                f for f in active_on_link[best_link] if f.flow_id in unfrozen
            ]
            for flow in frozen_now:
                rates[flow.flow_id] = best_share
                unfrozen.discard(flow.flow_id)
                # Subtract its consumption from every other link it crosses.
                for link in flow.route.links:
                    if link.is_fatpipe or link is best_link:
                        continue
                    if link in remaining_capacity:
                        remaining_capacity[link] = max(
                            0.0, remaining_capacity[link] - best_share
                        )
            remaining_capacity[best_link] = 0.0

        for flow in flows:
            flow.rate = rates[flow.flow_id]

    def _reschedule(self) -> None:
        """Settle, re-share, and schedule the next completion wake-up."""
        self._settle()
        self._finish_completed()
        self._compute_rates()
        self._epoch += 1
        epoch = self._epoch
        next_completion = math.inf
        for flow in self._flows.values():
            if flow.rate > 0:
                next_completion = min(next_completion, flow.remaining / flow.rate)
        if math.isfinite(next_completion):
            # The wake-up must advance the clock by at least one representable
            # step; otherwise a wake-up/settle cycle at the same timestamp
            # would never reduce the remaining bytes (elapsed == 0) and the
            # simulation would spin forever on zero-delay events.
            minimum_advance = math.ulp(self.env.now) if self.env.now > 0 else 0.0
            self.env.process(self._wakeup(max(minimum_advance, next_completion), epoch))

    def _wakeup(self, delay: float, epoch: int):
        yield self.env.timeout(delay)
        if epoch != self._epoch:
            return  # A newer reschedule superseded this wake-up.
        self._reschedule()

    def _finish_completed(self) -> None:
        finished = [f for f in self._flows.values() if f.finished]
        for flow in finished:
            del self._flows[flow.flow_id]
            for link in flow.route.links:
                link.active_flows = max(0, link.active_flows - 1)
                link.account(flow.size)
            self.completed.append(flow)
            flow.done_event.succeed(flow)

    # -- introspection -----------------------------------------------------------
    def snapshot(self) -> List[dict]:
        """Return a monitoring-friendly view of active flows."""
        self._settle()
        return [
            {
                "flow_id": flow.flow_id,
                "source": flow.route.source,
                "destination": flow.route.destination,
                "size": flow.size,
                "remaining": flow.remaining,
                "rate": flow.rate,
                "metadata": dict(flow.metadata),
            }
            for flow in self._flows.values()
        ]

    def __repr__(self) -> str:
        return f"<NetworkModel active_flows={len(self._flows)} completed={len(self.completed)}>"
