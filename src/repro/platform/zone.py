"""Network zones: the site-level container of the platform model.

CGSim maps every computing site onto one SimGrid *netzone*: a container that
owns the site's hosts and internal links and handles routing between its
hosts and towards other zones through a gateway.  The reproduction keeps the
same structure: a :class:`NetZone` owns hosts, a local-area link used for all
intra-zone traffic, and a gateway identity used by the inter-zone routing
table maintained by :class:`~repro.platform.platform.Platform`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.platform.host import Host
from repro.platform.link import Link
from repro.utils.errors import PlatformError

__all__ = ["NetZone"]


class NetZone:
    """A network zone (one computing site, or the backbone root zone).

    Parameters
    ----------
    name:
        Unique zone name (e.g. ``"BNL"`` or ``"CERN"``).
    local_link:
        Link used for every host-to-host communication inside the zone and as
        the last hop of inter-zone routes ending in this zone.  ``None`` means
        intra-zone communication is instantaneous (useful for the abstract
        main-server zone).
    properties:
        Free-form metadata (tier level, country, cloud, ...).
    """

    def __init__(
        self,
        name: str,
        local_link: Optional[Link] = None,
        properties: Optional[Dict[str, str]] = None,
    ) -> None:
        self.name = name
        self.local_link = local_link
        self.properties: Dict[str, str] = dict(properties or {})
        self._hosts: Dict[str, Host] = {}

    # -- host management -----------------------------------------------------
    def add_host(self, host: Host) -> Host:
        """Register ``host`` inside this zone."""
        if host.name in self._hosts:
            raise PlatformError(f"zone {self.name!r}: duplicate host {host.name!r}")
        if host.zone is not None:
            raise PlatformError(
                f"host {host.name!r} already belongs to zone {host.zone.name!r}"
            )
        host.zone = self
        self._hosts[host.name] = host
        return host

    def host(self, name: str) -> Host:
        """Return the host called ``name`` (raises if unknown)."""
        try:
            return self._hosts[name]
        except KeyError:
            raise PlatformError(f"zone {self.name!r} has no host {name!r}") from None

    @property
    def hosts(self) -> List[Host]:
        """All hosts in the zone, in registration order."""
        return list(self._hosts.values())

    def __contains__(self, host_name: str) -> bool:
        return host_name in self._hosts

    def __len__(self) -> int:
        return len(self._hosts)

    def __iter__(self) -> Iterable[Host]:
        return iter(self._hosts.values())

    # -- aggregate capacity ----------------------------------------------------
    @property
    def total_cores(self) -> int:
        """Sum of cores across the zone's hosts."""
        return sum(host.cores for host in self._hosts.values())

    @property
    def available_cores(self) -> int:
        """Sum of currently free cores across the zone's hosts."""
        return sum(host.available_cores for host in self._hosts.values())

    @property
    def total_speed(self) -> float:
        """Aggregate compute speed of the zone (operations per second)."""
        return sum(host.total_speed for host in self._hosts.values())

    def mean_core_speed(self) -> float:
        """Average per-core speed over all hosts (0 when the zone is empty)."""
        total_cores = self.total_cores
        if total_cores == 0:
            return 0.0
        return self.total_speed / total_cores

    def __repr__(self) -> str:
        return f"<NetZone {self.name} hosts={len(self._hosts)} cores={self.total_cores}>"
