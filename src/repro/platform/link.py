"""Network link model.

A :class:`Link` is a shared channel with a nominal bandwidth (bytes/second)
and a latency (seconds).  Bandwidth is not reserved per transfer: the
flow-level :class:`~repro.platform.network.NetworkModel` shares each link's
capacity among the flows that traverse it with max-min fairness, re-solving
the allocation whenever a flow starts or completes -- the same modelling
approach SimGrid's validated network models use.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.utils.errors import PlatformError

__all__ = ["Link"]


class Link:
    """A (possibly shared) network link.

    Parameters
    ----------
    name:
        Unique link name.
    bandwidth:
        Nominal capacity in bytes per second.
    latency:
        One-way latency in seconds.
    sharing:
        ``"shared"`` (default) -- capacity split among concurrent flows;
        ``"fatpipe"`` -- every flow gets the full nominal bandwidth
        (models an over-provisioned backbone).
    """

    def __init__(
        self,
        name: str,
        bandwidth: float,
        latency: float = 0.0,
        sharing: str = "shared",
        properties: Optional[Dict[str, str]] = None,
    ) -> None:
        if bandwidth <= 0:
            raise PlatformError(f"link {name!r}: bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise PlatformError(f"link {name!r}: latency must be >= 0, got {latency}")
        if sharing not in ("shared", "fatpipe"):
            raise PlatformError(f"link {name!r}: unknown sharing policy {sharing!r}")
        self.name = name
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.sharing = sharing
        self.properties: Dict[str, str] = dict(properties or {})
        #: Bytes carried by completed flows, for accounting.
        self.bytes_carried = 0.0
        #: Number of flows currently traversing the link (kept by the network model).
        self.active_flows = 0

    @property
    def is_fatpipe(self) -> bool:
        """True when each flow gets the full bandwidth (no sharing)."""
        return self.sharing == "fatpipe"

    def account(self, num_bytes: float) -> None:
        """Record ``num_bytes`` carried across this link."""
        self.bytes_carried += num_bytes

    def __repr__(self) -> str:
        return (
            f"<Link {self.name} bw={self.bandwidth:g}B/s lat={self.latency:g}s "
            f"{self.sharing}>"
        )
