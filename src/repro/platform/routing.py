"""Routing between network zones.

The platform topology is a graph whose nodes are zones and whose edges carry
:class:`~repro.platform.link.Link` objects.  Routes between zones are computed
as shortest paths (weighted by link latency by default) and cached.  A
:class:`Route` is the ordered list of links a flow traverses, including the
endpoint zones' local links, plus the total route latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.platform.link import Link
from repro.utils.errors import PlatformError

__all__ = ["Route", "RoutingTable"]


@dataclass(frozen=True)
class Route:
    """An ordered sequence of links between two zones."""

    source: str
    destination: str
    links: Tuple[Link, ...] = field(default_factory=tuple)

    @property
    def latency(self) -> float:
        """Total one-way latency along the route (seconds)."""
        return sum(link.latency for link in self.links)

    @property
    def bottleneck_bandwidth(self) -> float:
        """Minimum nominal bandwidth along the route (bytes/second)."""
        if not self.links:
            return float("inf")
        return min(link.bandwidth for link in self.links)

    @property
    def hop_count(self) -> int:
        """Number of links traversed."""
        return len(self.links)

    def __iter__(self):
        return iter(self.links)


class RoutingTable:
    """Shortest-path routing over the zone graph, with route caching.

    Parameters
    ----------
    weight:
        Edge attribute used as the shortest-path weight: ``"latency"``
        (default), ``"hops"`` (unweighted) or ``"inverse_bandwidth"``.
    """

    def __init__(self, weight: str = "latency") -> None:
        if weight not in ("latency", "hops", "inverse_bandwidth"):
            raise PlatformError(f"unknown routing weight {weight!r}")
        self.weight = weight
        self._graph = nx.Graph()
        self._local_links: Dict[str, Optional[Link]] = {}
        self._cache: Dict[Tuple[str, str], Route] = {}

    # -- construction ----------------------------------------------------------
    def add_zone(self, zone_name: str, local_link: Optional[Link] = None) -> None:
        """Register a zone node (optionally with its intra-zone link)."""
        if zone_name in self._local_links:
            raise PlatformError(f"zone {zone_name!r} already registered in routing table")
        self._graph.add_node(zone_name)
        self._local_links[zone_name] = local_link

    def connect(self, zone_a: str, zone_b: str, link: Link) -> None:
        """Add a bidirectional inter-zone link between ``zone_a`` and ``zone_b``."""
        for zone in (zone_a, zone_b):
            if zone not in self._local_links:
                raise PlatformError(f"cannot connect unknown zone {zone!r}")
        if zone_a == zone_b:
            raise PlatformError(f"cannot connect zone {zone_a!r} to itself")
        self._graph.add_edge(
            zone_a,
            zone_b,
            link=link,
            latency=link.latency,
            hops=1.0,
            inverse_bandwidth=1.0 / link.bandwidth,
        )
        self._cache.clear()

    @property
    def zones(self) -> List[str]:
        """Registered zone names."""
        return list(self._local_links)

    def neighbors(self, zone_name: str) -> List[str]:
        """Zones directly connected to ``zone_name``."""
        if zone_name not in self._local_links:
            raise PlatformError(f"unknown zone {zone_name!r}")
        return list(self._graph.neighbors(zone_name))

    # -- lookup ---------------------------------------------------------------
    def route(self, source: str, destination: str) -> Route:
        """Return (computing and caching if necessary) the route between two zones.

        The route includes the source and destination zones' local links (when
        defined), so intra-zone transfers (``source == destination``) traverse
        the local link once.
        """
        key = (source, destination)
        if key in self._cache:
            return self._cache[key]
        for zone in key:
            if zone not in self._local_links:
                raise PlatformError(f"unknown zone {zone!r}")

        links: List[Link] = []
        if source == destination:
            local = self._local_links[source]
            if local is not None:
                links.append(local)
        else:
            try:
                path = nx.shortest_path(self._graph, source, destination, weight=self.weight)
            except nx.NetworkXNoPath:
                raise PlatformError(f"no route between {source!r} and {destination!r}") from None
            src_local = self._local_links[source]
            if src_local is not None:
                links.append(src_local)
            for hop_a, hop_b in zip(path[:-1], path[1:]):
                links.append(self._graph.edges[hop_a, hop_b]["link"])
            dst_local = self._local_links[destination]
            if dst_local is not None:
                links.append(dst_local)

        route = Route(source=source, destination=destination, links=tuple(links))
        self._cache[key] = route
        return route

    def has_route(self, source: str, destination: str) -> bool:
        """True when a path exists between the two zones."""
        try:
            self.route(source, destination)
            return True
        except PlatformError:
            return False

    def __repr__(self) -> str:
        return (
            f"<RoutingTable zones={self._graph.number_of_nodes()} "
            f"links={self._graph.number_of_edges()} weight={self.weight}>"
        )
