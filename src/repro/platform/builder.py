"""Build a :class:`~repro.platform.platform.Platform` from configuration.

This module is the bridge between the input layer (infrastructure + topology
JSON files) and the platform model: every site becomes a zone containing its
worker hosts and storage element, sites are wired together according to the
topology links, and a dedicated main-server zone (with one host) is created
and connected to every site that lacks an explicit link to it -- exactly the
structure described in the paper's architecture section (Figure 1a).
"""

from __future__ import annotations

from typing import Optional

from repro.config.infrastructure import InfrastructureConfig
from repro.config.topology import TopologyConfig
from repro.des import Environment
from repro.platform.platform import Platform

__all__ = ["build_platform", "MAIN_SERVER_HOST_SUFFIX"]

#: Host name used for the main server inside its zone.
MAIN_SERVER_HOST_SUFFIX = "_host"


def build_platform(
    env: Environment,
    infrastructure: InfrastructureConfig,
    topology: Optional[TopologyConfig] = None,
) -> Platform:
    """Construct the platform described by the configuration objects.

    Parameters
    ----------
    env:
        Discrete-event environment the platform will live in.
    infrastructure:
        Validated site descriptions.
    topology:
        Validated inter-site topology.  ``None`` uses a default
        :class:`TopologyConfig` (star around the main server).

    Returns
    -------
    Platform
        A validated platform with one zone per site plus the main-server
        zone; the main-server zone is marked ``abstract`` and contains a
        single coordination host.
    """
    topology = topology or TopologyConfig()
    platform = Platform(env, routing_weight=topology.routing_weight)

    # 1. Site zones with hosts and storage.
    for site in infrastructure.sites:
        zone = platform.add_zone(
            site.name,
            local_bandwidth=site.local_bandwidth,
            local_latency=site.local_latency,
            properties=site.properties,
        )
        for host_index, host_cores in enumerate(site.cores_per_host()):
            platform.add_host(
                site.name,
                f"{site.name}_wn{host_index:04d}",
                speed=site.core_speed,
                cores=host_cores,
                ram=site.ram_per_host,
                properties={"site": site.name},
            )
        platform.add_storage(
            site.name,
            f"{site.name}_se",
            capacity=site.storage_capacity,
            read_bandwidth=site.storage_read_bandwidth,
            write_bandwidth=site.storage_write_bandwidth,
        )
        del zone  # registered; nothing else to do with it here

    # 2. Main-server zone (the central controller of the simulation).
    server_zone = topology.server_zone
    if server_zone not in platform.zone_names:
        platform.add_zone(server_zone, properties={"abstract": "true"})
        platform.add_host(
            server_zone,
            f"{server_zone}{MAIN_SERVER_HOST_SUFFIX}",
            speed=1e9,
            cores=1,
            properties={"role": "main-server"},
        )

    # 3. Explicit topology links.
    for link_config in topology.links:
        link = platform.add_link(
            link_config.name,
            bandwidth=link_config.bandwidth,
            latency=link_config.latency,
            sharing=link_config.sharing,
        )
        platform.connect_zones(link_config.source, link_config.destination, link)

    # 4. Ensure the main server reaches every site: add default links where
    #    the topology left a site disconnected from the server zone.
    for site in infrastructure.sites:
        if not platform.routing.has_route(server_zone, site.name):
            link = platform.add_link(
                f"{server_zone}--{site.name}__auto",
                bandwidth=topology.server_bandwidth,
                latency=topology.server_latency,
            )
            platform.connect_zones(server_zone, site.name, link)

    platform.validate()
    return platform
