"""Textual real-time dashboard.

The original CGSim ships an interactive web dashboard (paper Figure 5)
showing the operational state of every simulated site -- node pressure
(CPUs in use), running/pending jobs, and per-job details on hover.  This
reproduction renders the same information as a terminal table refreshed from
the monitoring collector, and can export the equivalent JSON snapshot for an
external viewer.  The content is identical; only the rendering medium
differs.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.monitoring.collector import MonitoringCollector
from repro.monitoring.events import SiteSnapshot

__all__ = ["Dashboard"]

_BAR_WIDTH = 20


def _pressure_bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    """Render a load fraction as a fixed-width unicode bar."""
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "█" * filled + "░" * (width - filled)


class Dashboard:
    """Renders the live state of every site from the monitoring collector.

    Parameters
    ----------
    collector:
        The collector the simulation core feeds.  The dashboard reads the
        latest snapshot of every site; it never mutates simulation state.
    """

    def __init__(self, collector: MonitoringCollector) -> None:
        self.collector = collector

    # -- data access -------------------------------------------------------------
    def site_rows(self) -> List[dict]:
        """Per-site dashboard rows derived from the latest snapshots."""
        rows = []
        for site, snapshot in sorted(self.collector.latest_snapshot_per_site().items()):
            rows.append(
                {
                    "site": site,
                    "node_pressure": snapshot.node_pressure,
                    "used_cores": snapshot.used_cores,
                    "total_cores": snapshot.total_cores,
                    "running_jobs": snapshot.running_jobs,
                    "queued_jobs": snapshot.queued_jobs,
                    "pending_jobs": snapshot.pending_jobs,
                    "finished_jobs": snapshot.finished_jobs,
                    "failed_jobs": snapshot.failed_jobs,
                }
            )
        return rows

    def job_details(self, site: Optional[str] = None, limit: int = 20) -> List[dict]:
        """Most recent job-level events (optionally for one site).

        This is the "hover-over details showing the jobs running on each
        node" view of the paper's dashboard.  Reads the collector's columnar
        buffer directly -- no per-row record objects are materialised.
        """
        buffer = self.collector.events
        if site is not None:
            indices = buffer.indices_for_site(site)[-limit:]
        else:
            indices = range(max(0, len(buffer) - limit), len(buffer))
        return [
            {
                "event_id": buffer.event_ids[i],
                "time": buffer.times[i],
                "job_id": buffer.job_ids[i],
                "state": buffer.states[i],
                "site": buffer.sites[i],
                "cores": buffer.cores[i],
            }
            for i in indices
        ]

    # -- rendering ---------------------------------------------------------------
    @classmethod
    def live_summary(cls, session) -> str:
        """Render the state of a *running* session, mid-simulation.

        The stepped-lifecycle counterpart of :meth:`render`: hand it a
        :class:`~repro.core.session.SimulationSession` between advances (or
        from an ``on_progress`` callback) and it returns the session's
        progress line -- clock, terminal/total jobs, finished/failed/pending
        counts, stop reason -- followed by the per-site board built from the
        latest snapshots the collector has recorded so far.  Read-only: it
        never flushes, finalises or otherwise perturbs the run.
        """
        progress = session.progress()
        board = cls(session.simulator.collector).render(progress.time)
        return f"session: {progress.describe()}\n{board}"

    def render(self, time: Optional[float] = None) -> str:
        """Render the multi-site view as a fixed-width text table."""
        rows = self.site_rows()
        header_time = f" t={time:.0f}s" if time is not None else ""
        lines = [
            f"CGSim dashboard{header_time} — {len(rows)} sites",
            f"{'site':<20} {'pressure':<{_BAR_WIDTH + 7}} {'cores':>13} "
            f"{'run':>6} {'queue':>6} {'pend':>6} {'done':>7} {'fail':>5}",
        ]
        for row in rows:
            bar = _pressure_bar(row["node_pressure"])
            lines.append(
                f"{row['site']:<20} {bar} {row['node_pressure'] * 100:5.1f}% "
                f"{row['used_cores']:>6}/{row['total_cores']:<6} "
                f"{row['running_jobs']:>6} {row['queued_jobs']:>6} {row['pending_jobs']:>6} "
                f"{row['finished_jobs']:>7} {row['failed_jobs']:>5}"
            )
        if not rows:
            lines.append("(no snapshots recorded yet)")
        return "\n".join(lines)

    def to_json(self, time: Optional[float] = None) -> str:
        """Export the dashboard state as a JSON document (for external viewers)."""
        return json.dumps(
            {
                "time": time,
                "sites": self.site_rows(),
                "recent_events": self.job_details(limit=50),
            },
            indent=2,
        )
