"""Event-level monitoring records.

:class:`EventRecord` reproduces the rows of the paper's Table 1: every job
state transition is captured together with the concurrent state of the site
involved (available cores, pending/assigned/finished counters), giving the
dual job-level + site-level view that supports both real-time monitoring and
ML dataset generation.

:class:`SiteSnapshot` is the periodic (timestep) site-level record used by
the dashboard and by aggregate utilisation analyses.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

__all__ = ["EventRecord", "SiteSnapshot", "EVENT_FIELDS", "SNAPSHOT_FIELDS"]


@dataclass
class EventRecord:
    """One event-level monitoring row (Table 1 schema).

    Attributes
    ----------
    event_id:
        Monotonically increasing event counter.
    time:
        Simulation time of the transition (seconds).
    job_id:
        Identifier of the job whose state changed.
    state:
        New job state (``pending``, ``assigned``, ``running``, ``finished``,
        ``failed``).
    site:
        Site involved (empty string for grid-level events such as submission
        before any assignment).
    available_cores:
        Free cores at the site at the time of the event.
    pending_jobs:
        Jobs waiting on the main server's pending list for this site (or
        globally for grid-level events).
    assigned_jobs:
        Jobs assigned to the site and not yet finished.
    finished_jobs:
        Cumulative jobs finished at the site.
    extra:
        Additional numeric features for ML export (queue length, cores
        requested, ...).
    """

    event_id: int
    time: float
    job_id: int
    state: str
    site: str
    available_cores: int
    pending_jobs: int
    assigned_jobs: int
    finished_jobs: int
    extra: Dict[str, float] = field(default_factory=dict)

    def to_row(self) -> dict:
        """Flatten to a plain dict (``extra`` merged in with an ``x_`` prefix)."""
        row = asdict(self)
        extra = row.pop("extra")
        for key, value in extra.items():
            row[f"x_{key}"] = value
        return row


@dataclass
class SiteSnapshot:
    """Periodic site-level state capture (dashboard / utilisation analysis)."""

    time: float
    site: str
    total_cores: int
    available_cores: int
    running_jobs: int
    queued_jobs: int
    pending_jobs: int
    finished_jobs: int
    failed_jobs: int

    @property
    def used_cores(self) -> int:
        """Cores currently busy."""
        return self.total_cores - self.available_cores

    @property
    def node_pressure(self) -> float:
        """Fraction of the site's cores in use (the dashboard's node pressure)."""
        if self.total_cores == 0:
            return 0.0
        return self.used_cores / self.total_cores

    def to_row(self) -> dict:
        """Flatten to a plain dict for CSV/SQLite export."""
        row = asdict(self)
        row["used_cores"] = self.used_cores
        row["node_pressure"] = self.node_pressure
        return row


#: Column order of event rows in CSV/SQLite exports.
EVENT_FIELDS: List[str] = [
    "event_id",
    "time",
    "job_id",
    "state",
    "site",
    "available_cores",
    "pending_jobs",
    "assigned_jobs",
    "finished_jobs",
]

#: Column order of snapshot rows in CSV/SQLite exports.
SNAPSHOT_FIELDS: List[str] = [
    "time",
    "site",
    "total_cores",
    "available_cores",
    "used_cores",
    "running_jobs",
    "queued_jobs",
    "pending_jobs",
    "finished_jobs",
    "failed_jobs",
    "node_pressure",
]
