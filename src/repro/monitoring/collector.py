"""The monitoring collector: the simulation core's observation point.

The simulation core calls :meth:`MonitoringCollector.record_transition` on
every job state change and (optionally) runs a periodic snapshot process.
The collector owns the growing event-level dataset, keeps per-site counters,
and fans records out to whatever persistent back-ends are attached (SQLite,
CSV, the dashboard).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Protocol

from repro.monitoring.events import EventRecord, SiteSnapshot
from repro.workload.job import Job, JobState

__all__ = ["MonitoringCollector"]


class _Sink(Protocol):  # pragma: no cover - structural typing only
    def write_event(self, record: EventRecord) -> None: ...

    def write_snapshot(self, snapshot: SiteSnapshot) -> None: ...


class MonitoringCollector:
    """Collects event-level records and periodic site snapshots.

    Parameters
    ----------
    keep_in_memory:
        Retain every record in Python lists (required for the in-process
        dashboard, ML dataset assembly and most tests).  Large batch runs
        can disable this and rely on attached sinks instead.
    """

    def __init__(self, keep_in_memory: bool = True) -> None:
        self.keep_in_memory = keep_in_memory
        self.events: List[EventRecord] = []
        self.snapshots: List[SiteSnapshot] = []
        self._event_ids = itertools.count(1)
        self._sinks: List[_Sink] = []
        #: Per-site cumulative counters maintained from transitions.
        self._finished: Dict[str, int] = {}
        self._failed: Dict[str, int] = {}

    # -- sink management -------------------------------------------------------
    def attach(self, sink: _Sink) -> None:
        """Attach a persistence back-end receiving every record as it is produced."""
        self._sinks.append(sink)

    # -- recording -------------------------------------------------------------
    def record_transition(
        self,
        job: Job,
        state: JobState,
        time: float,
        site: str = "",
        available_cores: int = 0,
        pending_jobs: int = 0,
        assigned_jobs: int = 0,
        **extra: float,
    ) -> EventRecord:
        """Record one job state transition together with site-level context."""
        if state is JobState.FINISHED and site:
            self._finished[site] = self._finished.get(site, 0) + 1
        if state is JobState.FAILED and site:
            self._failed[site] = self._failed.get(site, 0) + 1
        record = EventRecord(
            event_id=next(self._event_ids),
            time=time,
            job_id=int(job.job_id or 0),
            state=state.value,
            site=site,
            available_cores=int(available_cores),
            pending_jobs=int(pending_jobs),
            assigned_jobs=int(assigned_jobs),
            finished_jobs=self._finished.get(site, 0),
            extra={"cores": float(job.cores), **{k: float(v) for k, v in extra.items()}},
        )
        if self.keep_in_memory:
            self.events.append(record)
        for sink in self._sinks:
            sink.write_event(record)
        return record

    def record_snapshot(self, snapshot: SiteSnapshot) -> SiteSnapshot:
        """Record one periodic site-level snapshot."""
        if self.keep_in_memory:
            self.snapshots.append(snapshot)
        for sink in self._sinks:
            sink.write_snapshot(snapshot)
        return snapshot

    # -- queries -----------------------------------------------------------------
    def finished_jobs(self, site: str) -> int:
        """Cumulative finished-job count for ``site``."""
        return self._finished.get(site, 0)

    def failed_jobs(self, site: str) -> int:
        """Cumulative failed-job count for ``site``."""
        return self._failed.get(site, 0)

    def events_for_job(self, job_id: int) -> List[EventRecord]:
        """All events concerning one job, in order."""
        return [e for e in self.events if e.job_id == job_id]

    def events_for_site(self, site: str) -> List[EventRecord]:
        """All events concerning one site, in order."""
        return [e for e in self.events if e.site == site]

    def latest_snapshot_per_site(self) -> Dict[str, SiteSnapshot]:
        """The most recent snapshot of every site (dashboard input)."""
        latest: Dict[str, SiteSnapshot] = {}
        for snapshot in self.snapshots:
            latest[snapshot.site] = snapshot
        return latest

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"<MonitoringCollector events={len(self.events)} snapshots={len(self.snapshots)}>"
