"""The monitoring collector: the simulation core's observation point.

The simulation core calls :meth:`MonitoringCollector.record_transition` on
every job state change and (optionally) runs a periodic snapshot process.
The collector appends rows to a columnar :class:`TraceBuffer`, keeps
per-site counters, and flushes batches of rows to whatever persistent
back-ends are attached (SQLite, CSV, the dashboard).

Batching and detail levels
--------------------------
Sinks are fed in batches of ``batch_size`` rows through their
``write_batch`` method (``write_event`` per record remains supported for
legacy sinks), which turns per-transition Python call fan-out into one
``executemany``/``writerows`` per batch.  Two knobs bound the volume of a
huge run:

* ``detail="aggregate"`` records no per-event rows at all -- only the O(1)
  per-site counters -- for runs where site-level aggregates suffice;
* ``sample_stride=N`` retains every Nth transition row (counters stay
  exact), a cheap uniform sample for ML-scale sweeps.

A collector created with ``keep_in_memory=False`` streams batches to its
sinks and drops them; asking such a collector for its ``events`` or
``snapshots`` raises :class:`~repro.utils.errors.MonitoringError` instead
of silently returning an empty dataset.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol

from repro.monitoring.events import EventRecord, SiteSnapshot
from repro.monitoring.trace_buffer import TraceBuffer
from repro.utils.errors import MonitoringError
from repro.workload.job import Job, JobState

__all__ = ["MonitoringCollector"]


class _Sink(Protocol):  # pragma: no cover - structural typing only
    def write_event(self, record: EventRecord) -> None: ...

    def write_snapshot(self, snapshot: SiteSnapshot) -> None: ...


class MonitoringCollector:
    """Collects event-level records and periodic site snapshots.

    Parameters
    ----------
    keep_in_memory:
        Retain every recorded row in the columnar buffer (required for the
        in-process dashboard, ML dataset assembly and most tests).  Large
        batch runs can disable this and rely on attached sinks instead;
        rows are then dropped after each batch flush.
    batch_size:
        Rows accumulated before attached sinks receive a batch.
    detail:
        ``"full"`` records per-transition rows; ``"aggregate"`` keeps only
        the per-site counters (no rows are buffered or written).
    sample_stride:
        Retain every Nth transition row (1 = every row).  Counters are
        maintained from *all* transitions regardless of sampling.
    """

    def __init__(
        self,
        keep_in_memory: bool = True,
        batch_size: int = 1024,
        detail: str = "full",
        sample_stride: int = 1,
    ) -> None:
        if detail not in ("full", "aggregate"):
            raise MonitoringError(f"unknown monitoring detail level {detail!r}")
        if batch_size < 1:
            raise MonitoringError(f"batch_size must be >= 1, got {batch_size}")
        if sample_stride < 1:
            raise MonitoringError(f"sample_stride must be >= 1, got {sample_stride}")
        self.keep_in_memory = keep_in_memory
        self.batch_size = int(batch_size)
        self.detail = detail
        self.sample_stride = int(sample_stride)
        #: Columnar event storage (all retained rows; pending rows when not retained).
        self.buffer = TraceBuffer()
        self._snapshots: List[SiteSnapshot] = []
        self._sinks: List[_Sink] = []
        #: Next event id / total transitions seen (sampling included).
        self._seen = 0
        self._next_event_id = 1
        #: Index of the first buffer row not yet flushed to sinks.
        self._flushed = 0
        #: Per-site cumulative counters maintained from transitions.
        self._finished: Dict[str, int] = {}
        self._failed: Dict[str, int] = {}
        #: Live observers called on *every* transition (sampling exempt).
        self._listeners: List = []
        #: When true, recording is a no-op (checkpoint fast-forward mode).
        self.muted = False

    # -- sink management -------------------------------------------------------
    def attach(self, sink: _Sink) -> None:
        """Attach a persistence back-end receiving batches of recorded rows."""
        self._sinks.append(sink)

    def add_transition_listener(self, listener) -> None:
        """Register ``listener(job, state, time, site)`` on every transition.

        Listeners are the live-observation hook behind
        :meth:`repro.core.session.SimulationSession.on_job_state`: they fire
        synchronously for *every* recorded transition -- detail level and
        ``sample_stride`` thin only the stored rows, never the listener
        stream -- so progress displays and early-stop predicates always see
        the true job flow.
        """
        self._listeners.append(listener)

    # -- recording -------------------------------------------------------------
    def record_transition(
        self,
        job: Job,
        state: JobState,
        time: float,
        site: str = "",
        available_cores: int = 0,
        pending_jobs: int = 0,
        assigned_jobs: int = 0,
        **extra: float,
    ) -> None:
        """Record one job state transition together with site-level context.

        The hot path: per-site counters always stay exact; a row is buffered
        only when the detail level and sampling stride say so, and sinks are
        fed whole batches, not single rows.
        """
        if self.muted:
            return
        state_value = state.value
        if state_value == "finished":
            if site:
                self._finished[site] = self._finished.get(site, 0) + 1
        elif state_value == "failed":
            if site:
                self._failed[site] = self._failed.get(site, 0) + 1
        if self._listeners:
            for listener in self._listeners:
                listener(job, state, time, site)
        seen = self._seen
        self._seen = seen + 1
        if self.detail == "aggregate" or seen % self.sample_stride:
            return
        if not self.keep_in_memory and not self._sinks:
            # Nobody will ever read the row: buffering it would only grow
            # the buffer without bound (the whole point of the knob is O(1)
            # memory), so keep the counters and drop the row.
            return
        event_id = self._next_event_id
        self._next_event_id = event_id + 1
        buffer = self.buffer
        buffer.append(
            event_id,
            time,
            int(job.job_id or 0),
            state_value,
            site,
            int(available_cores),
            int(pending_jobs),
            int(assigned_jobs),
            self._finished.get(site, 0),
            float(job.cores),
            {key: float(value) for key, value in extra.items()} if extra else None,
        )
        if self._sinks and len(buffer) - self._flushed >= self.batch_size:
            self._flush_events()

    def record_snapshot(self, snapshot: SiteSnapshot) -> SiteSnapshot:
        """Record one periodic site-level snapshot (low rate: written through)."""
        if self.muted:
            return snapshot
        if self.keep_in_memory:
            self._snapshots.append(snapshot)
        for sink in self._sinks:
            sink.write_snapshot(snapshot)
        return snapshot

    def _flush_events(self) -> None:
        """Hand all unflushed buffered rows to the sinks, batched."""
        buffer = self.buffer
        start = self._flushed
        stop = len(buffer)
        if stop > start:
            rows = None
            for sink in self._sinks:
                write_batch = getattr(sink, "write_batch", None)
                if write_batch is not None:
                    if rows is None:
                        rows = buffer.rows(start, stop)
                    write_batch(rows)
                else:  # legacy per-record sink
                    for index in range(start, stop):
                        sink.write_event(buffer.record(index))
        if self.keep_in_memory:
            self._flushed = stop
        else:
            buffer.clear()
            self._flushed = 0

    def flush(self) -> None:
        """Force-flush pending rows to the sinks (call at end of run)."""
        self._flush_events()

    # -- checkpoint support ------------------------------------------------------
    # cgsim: lint-ignore[snap-field-coverage] listener callbacks and sink objects are re-registered by the restoring session
    def snapshot(self) -> dict:
        """Capture the collector's counters and buffer high-water marks.

        Part of the :class:`repro.state.Snapshottable` protocol: total
        transitions seen, the next event id (the :class:`TraceBuffer`
        high-water mark), retained row/snapshot counts and the exact
        per-site finished/failed counters.  These are what a restored run
        needs to continue numbering and counting where the original left
        off.
        """
        return {
            "seen": self._seen,
            "next_event_id": self._next_event_id,
            "rows": len(self.buffer),
            "snapshots": len(self._snapshots),
            "flushed": self._flushed,
            "finished": dict(self._finished),
            "failed": dict(self._failed),
        }

    def restore(self, state: dict) -> None:
        """Re-seat the counters and high-water marks from a snapshot.

        Unlike the replay-verified components, the collector's ``restore``
        *stamps* state: a restore may legitimately fast-forward with sinks
        detached (or fully muted), in which case the replayed counters
        undercount -- re-seating them from the blob keeps event ids and
        per-site counts continuing exactly where the original run stood.
        Retained rows are not reconstructed here; the replay itself rebuilds
        them when recording stays enabled.
        """
        self._seen = int(state["seen"])
        self._next_event_id = int(state["next_event_id"])
        self._finished = dict(state.get("finished", {}))
        self._failed = dict(state.get("failed", {}))

    # -- queries -----------------------------------------------------------------
    @property
    def events(self) -> TraceBuffer:
        """The retained columnar event buffer (iterable of EventRecord views).

        Raises
        ------
        MonitoringError
            When the collector was created with ``keep_in_memory=False``:
            the rows were streamed to sinks and dropped, so reading them
            back here would silently yield an empty (or partial) dataset.
        """
        if not self.keep_in_memory:
            raise MonitoringError(
                "monitoring events were not retained (keep_in_memory=False); "
                "read them back from an attached sink (SQLite/CSV) instead"
            )
        return self.buffer

    @property
    def snapshots(self) -> List[SiteSnapshot]:
        """The retained site snapshots (see :attr:`events` for the contract)."""
        if not self.keep_in_memory:
            raise MonitoringError(
                "monitoring snapshots were not retained (keep_in_memory=False); "
                "read them back from an attached sink (SQLite/CSV) instead"
            )
        return self._snapshots

    def finished_jobs(self, site: str) -> int:
        """Cumulative finished-job count for ``site`` (exact under sampling)."""
        return self._finished.get(site, 0)

    def failed_jobs(self, site: str) -> int:
        """Cumulative failed-job count for ``site`` (exact under sampling)."""
        return self._failed.get(site, 0)

    def events_for_job(self, job_id: int) -> List[EventRecord]:
        """All retained events concerning one job, in order."""
        buffer = self.events
        return [buffer.record(i) for i in buffer.indices_for_job(job_id)]

    def events_for_site(self, site: str) -> List[EventRecord]:
        """All retained events concerning one site, in order."""
        buffer = self.events
        return [buffer.record(i) for i in buffer.indices_for_site(site)]

    def latest_snapshot_per_site(self) -> Dict[str, SiteSnapshot]:
        """The most recent snapshot of every site (dashboard input).

        Best-effort by design: reads the internal snapshot list directly so a
        dashboard over an unretained collector renders empty instead of
        aborting a finished run.
        """
        latest: Dict[str, SiteSnapshot] = {}
        for snapshot in self._snapshots:
            latest[snapshot.site] = snapshot
        return latest

    def __len__(self) -> int:
        """Rows currently held in the buffer."""
        return len(self.buffer)

    def __repr__(self) -> str:
        return (
            f"<MonitoringCollector rows={len(self.buffer)} seen={self._seen} "
            f"snapshots={len(self._snapshots)} detail={self.detail!r}>"
        )
