"""Output layer: event-level monitoring, storage back-ends and dashboard.

CGSim's output layer collects results into SQLite databases, supports CSV
export for statistical analysis, and provides a real-time dashboard.  The
monitoring system records both job-level state transitions and site-level
resource dynamics at each timestep (paper Table 1), producing the event-level
dataset that doubles as ML training data.

* :class:`~repro.monitoring.events.EventRecord` -- one Table 1 row.
* :class:`~repro.monitoring.collector.MonitoringCollector` -- hooks called by
  the simulation core on every transition + periodic snapshots.
* :class:`~repro.monitoring.sqlite_store.SQLiteStore` /
  :func:`~repro.monitoring.csv_export.export_csv` -- persistence back-ends.
* :class:`~repro.monitoring.dashboard.Dashboard` -- textual real-time view of
  per-site load (the reproduction of the web dashboard in Figure 5).
"""

from repro.monitoring.collector import MonitoringCollector
from repro.monitoring.csv_export import (
    CSVSink,
    export_events_csv,
    export_jobs_csv,
    export_snapshots_csv,
)
from repro.monitoring.dashboard import Dashboard
from repro.monitoring.events import EventRecord, SiteSnapshot
from repro.monitoring.sqlite_store import SQLiteStore
from repro.monitoring.trace_buffer import TraceBuffer

__all__ = [
    "EventRecord",
    "SiteSnapshot",
    "TraceBuffer",
    "MonitoringCollector",
    "SQLiteStore",
    "CSVSink",
    "export_events_csv",
    "export_jobs_csv",
    "export_snapshots_csv",
    "Dashboard",
]
