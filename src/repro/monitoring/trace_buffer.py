"""Columnar (struct-of-arrays) storage for the event-level monitoring trace.

The simulation core produces one monitoring row per job state transition --
by far the highest-volume data path outside the DES kernel itself.  Building
an :class:`~repro.monitoring.events.EventRecord` object per transition costs
a dataclass allocation plus a per-row ``extra`` dict; at millions of events
that dominates the monitoring overhead and the memory footprint.

:class:`TraceBuffer` instead keeps one plain Python list per column
(`Table 1` schema).  Appending is a handful of C-level ``list.append``
calls, consumers (metrics, ML dataset assembly, reporting, dashboards) read
the columns directly, and sinks receive whole batches of row tuples suitable
for ``executemany`` / ``writerows``.  For code that still wants the
row-object view, the buffer is an iterable sequence of lazily materialised
:class:`EventRecord` instances, so ``for event in buffer`` keeps working.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, List, Optional, Tuple

from repro.monitoring.events import EventRecord

__all__ = ["TraceBuffer"]

#: Column attributes in EVENT_FIELDS order (the CSV/SQLite row layout).
_COLUMNS = (
    "event_ids",
    "times",
    "job_ids",
    "states",
    "sites",
    "available_cores",
    "pending_jobs",
    "assigned_jobs",
    "finished_jobs",
)


class TraceBuffer:
    """Struct-of-arrays buffer of job-transition events (Table 1 rows).

    One parallel list per column; row ``i`` is spread across
    ``event_ids[i] ... finished_jobs[i]`` plus the always-present ``cores[i]``
    feature and the sparse ``extras[i]`` dict (``None`` for rows without
    additional features, which is nearly all of them).
    """

    __slots__ = _COLUMNS + ("cores", "extras")

    def __init__(self) -> None:
        self.event_ids: List[int] = []
        self.times: List[float] = []
        self.job_ids: List[int] = []
        self.states: List[str] = []
        self.sites: List[str] = []
        self.available_cores: List[int] = []
        self.pending_jobs: List[int] = []
        self.assigned_jobs: List[int] = []
        self.finished_jobs: List[int] = []
        #: Cores of the transitioning job (the ``x_cores`` ML feature).
        self.cores: List[float] = []
        #: Sparse per-row extra features (None when absent).
        self.extras: List[Optional[Dict[str, float]]] = []

    # -- writing -------------------------------------------------------------
    def append(
        self,
        event_id: int,
        time: float,
        job_id: int,
        state: str,
        site: str,
        available_cores: int,
        pending_jobs: int,
        assigned_jobs: int,
        finished_jobs: int,
        cores: float,
        extra: Optional[Dict[str, float]] = None,
    ) -> None:
        """Append one transition row (hot path: eleven list appends)."""
        self.event_ids.append(event_id)
        self.times.append(time)
        self.job_ids.append(job_id)
        self.states.append(state)
        self.sites.append(site)
        self.available_cores.append(available_cores)
        self.pending_jobs.append(pending_jobs)
        self.assigned_jobs.append(assigned_jobs)
        self.finished_jobs.append(finished_jobs)
        self.cores.append(cores)
        self.extras.append(extra)

    def clear(self) -> None:
        """Drop all rows (used after flushing when retention is disabled)."""
        for name in self.__slots__:
            getattr(self, name).clear()

    # -- reading -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.event_ids)

    def record(self, index: int) -> EventRecord:
        """Materialise row ``index`` as an :class:`EventRecord` view."""
        extra = {"cores": self.cores[index]}
        more = self.extras[index]
        if more:
            extra.update(more)
        return EventRecord(
            event_id=self.event_ids[index],
            time=self.times[index],
            job_id=self.job_ids[index],
            state=self.states[index],
            site=self.sites[index],
            available_cores=self.available_cores[index],
            pending_jobs=self.pending_jobs[index],
            assigned_jobs=self.assigned_jobs[index],
            finished_jobs=self.finished_jobs[index],
            extra=extra,
        )

    def __iter__(self) -> Iterator[EventRecord]:
        for index in range(len(self.event_ids)):
            yield self.record(index)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self.record(i) for i in range(*index.indices(len(self.event_ids)))]
        n = len(self.event_ids)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("trace buffer row index out of range")
        return self.record(index)

    def rows(self, start: int = 0, stop: Optional[int] = None) -> List[Tuple]:
        """Rows ``[start:stop)`` as tuples in ``EVENT_FIELDS`` order.

        This is the zero-copy-ish hand-off to batched sinks
        (``executemany`` / ``csv.writer.writerows``).
        """
        columns = [getattr(self, name) for name in _COLUMNS]
        if stop is None:
            stop = len(self.event_ids)
        if start or stop != len(self.event_ids):
            columns = [column[start:stop] for column in columns]
        return list(zip(*columns))

    def state_counts(self) -> Counter:
        """Transition counts by state (C-level counting over the column)."""
        return Counter(self.states)

    def indices_for_site(self, site: str) -> List[int]:
        """Row indices whose ``site`` column equals ``site``."""
        return [i for i, s in enumerate(self.sites) if s == site]

    def indices_for_job(self, job_id: int) -> List[int]:
        """Row indices whose ``job_id`` column equals ``job_id``."""
        return [i for i, j in enumerate(self.job_ids) if j == job_id]

    def __repr__(self) -> str:
        return f"<TraceBuffer rows={len(self.event_ids)}>"
