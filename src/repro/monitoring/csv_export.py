"""CSV export of monitoring output.

The output layer "supports CSV exports for statistical analysis"; these
helpers write the event-level dataset, the periodic snapshots and the final
per-job summaries produced by a simulation run into plain CSV files.

Two flavours exist:

* the one-shot :func:`export_events_csv` / :func:`export_snapshots_csv` /
  :func:`export_jobs_csv` functions, used after a run on retained data --
  when handed a columnar :class:`~repro.monitoring.trace_buffer.TraceBuffer`
  they emit its row tuples through one ``writerows`` call instead of a
  ``DictWriter`` round-trip per record;
* the streaming :class:`CSVSink`, a collector sink with a batched
  ``write_batch`` used by runs that do not retain events in memory.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import IO, Iterable, List, Optional, Union

from repro.monitoring.events import EVENT_FIELDS, SNAPSHOT_FIELDS, EventRecord, SiteSnapshot
from repro.workload.job import Job

__all__ = ["CSVSink", "export_events_csv", "export_snapshots_csv", "export_jobs_csv"]

PathLike = Union[str, Path]

#: Column order of per-job summary exports.
JOB_FIELDS: List[str] = [
    "job_id",
    "task_id",
    "cores",
    "work",
    "submission_time",
    "target_site",
    "assigned_site",
    "state",
    "assigned_time",
    "start_time",
    "end_time",
    "queue_time",
    "walltime",
    "true_walltime",
    "true_queue_time",
    "failure_reason",
]


def _write_rows(path: PathLike, fieldnames: List[str], rows: Iterable[dict]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def export_events_csv(events, path: PathLike) -> Path:
    """Write event-level records (Table 1 rows) to ``path``.

    ``events`` may be a :class:`TraceBuffer` (columnar fast path) or any
    iterable of :class:`EventRecord`.
    """
    rows = getattr(events, "rows", None)
    if rows is not None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(EVENT_FIELDS)
            writer.writerows(rows())
        return path
    return _write_rows(path, EVENT_FIELDS, (event.to_row() for event in events))


def export_snapshots_csv(snapshots: Iterable[SiteSnapshot], path: PathLike) -> Path:
    """Write periodic site-level snapshots to ``path`` as CSV.

    One row per :class:`~repro.monitoring.events.SiteSnapshot` -- the
    queue/running/used-core gauges sampled every
    ``monitoring.snapshot_interval`` simulated seconds -- with the columns of
    ``SNAPSHOT_FIELDS``.  Returns the written path, e.g.
    ``export_snapshots_csv(result.collector.snapshots, "snapshots.csv")``
    after a monitored :meth:`~repro.core.Simulator.run`.
    """
    return _write_rows(path, SNAPSHOT_FIELDS, (snapshot.to_row() for snapshot in snapshots))


def export_jobs_csv(jobs: Iterable[Job], path: PathLike) -> Path:
    """Write final per-job summaries to ``path`` as CSV.

    One row per job (static description plus final dynamic state: assigned
    site, queue time, walltime, failure reason) with the columns of
    ``JOB_FIELDS`` -- the job-level companion of the event-level dataset,
    e.g. ``export_jobs_csv(result.jobs, "jobs.csv")`` after a
    :meth:`~repro.core.Simulator.run`.
    """
    return _write_rows(path, JOB_FIELDS, (job.to_record() for job in jobs))


class CSVSink:
    """Streaming collector sink writing ``events.csv`` / ``snapshots.csv``.

    Intended for runs with ``keep_in_memory=False``: the batching collector
    hands over row-tuple batches which go straight through
    ``csv.writer.writerows``.  Both files are created (with their header
    rows) at construction so a run that records nothing still leaves the
    same files behind as the retained-export path; the sink must be
    :meth:`close`\\ d (or used as a context manager) to flush.
    """

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._event_handle: Optional[IO[str]] = (self.directory / "events.csv").open(
            "w", encoding="utf-8", newline=""
        )
        self._event_writer = csv.writer(self._event_handle)
        self._event_writer.writerow(EVENT_FIELDS)
        self._snapshot_handle: Optional[IO[str]] = (self.directory / "snapshots.csv").open(
            "w", encoding="utf-8", newline=""
        )
        self._snapshot_writer = csv.writer(self._snapshot_handle)
        self._snapshot_writer.writerow(SNAPSHOT_FIELDS)

    # -- sink protocol -------------------------------------------------------
    def write_batch(self, rows: Iterable[tuple]) -> None:
        """Append a batch of event rows (``EVENT_FIELDS`` order)."""
        self._event_writer.writerows(rows)

    def write_event(self, record: EventRecord) -> None:
        """Append one event row (legacy per-record path)."""
        row = record.to_row()
        self._event_writer.writerow([row[field] for field in EVENT_FIELDS])

    def write_snapshot(self, snapshot: SiteSnapshot) -> None:
        """Append one site snapshot row."""
        row = snapshot.to_row()
        self._snapshot_writer.writerow([row[field] for field in SNAPSHOT_FIELDS])

    # -- lifecycle -----------------------------------------------------------
    def flush(self) -> None:
        """Push buffered rows to disk without closing the files.

        Called when a session pauses or aborts mid-run so whatever the sink
        already received survives, while the sink stays open for a resumed
        session to keep appending.
        """
        for handle in (self._event_handle, self._snapshot_handle):
            if handle is not None:
                handle.flush()

    def close(self) -> None:
        """Flush and close any open files."""
        for handle in (self._event_handle, self._snapshot_handle):
            if handle is not None:
                handle.close()
        self._event_handle = self._event_writer = None
        self._snapshot_handle = self._snapshot_writer = None

    def __enter__(self) -> "CSVSink":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.close()
