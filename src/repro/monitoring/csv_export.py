"""CSV export of monitoring output.

The output layer "supports CSV exports for statistical analysis"; these
helpers write the event-level dataset, the periodic snapshots and the final
per-job summaries produced by a simulation run into plain CSV files.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Union

from repro.monitoring.events import EVENT_FIELDS, SNAPSHOT_FIELDS, EventRecord, SiteSnapshot
from repro.workload.job import Job

__all__ = ["export_events_csv", "export_snapshots_csv", "export_jobs_csv"]

PathLike = Union[str, Path]

#: Column order of per-job summary exports.
JOB_FIELDS: List[str] = [
    "job_id",
    "task_id",
    "cores",
    "work",
    "submission_time",
    "target_site",
    "assigned_site",
    "state",
    "assigned_time",
    "start_time",
    "end_time",
    "queue_time",
    "walltime",
    "true_walltime",
    "true_queue_time",
    "failure_reason",
]


def _write_rows(path: PathLike, fieldnames: List[str], rows: Iterable[dict]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def export_events_csv(events: Iterable[EventRecord], path: PathLike) -> Path:
    """Write event-level records (Table 1 rows) to ``path``."""
    return _write_rows(path, EVENT_FIELDS, (event.to_row() for event in events))


def export_snapshots_csv(snapshots: Iterable[SiteSnapshot], path: PathLike) -> Path:
    """Write periodic site snapshots to ``path``."""
    return _write_rows(path, SNAPSHOT_FIELDS, (snapshot.to_row() for snapshot in snapshots))


def export_jobs_csv(jobs: Iterable[Job], path: PathLike) -> Path:
    """Write final per-job summaries to ``path``."""
    return _write_rows(path, JOB_FIELDS, (job.to_record() for job in jobs))
