"""SQLite persistence back-end.

The CGSim output layer "collects and stores results in SQLite databases".
:class:`SQLiteStore` is a collector sink that writes event rows, snapshot
rows and final job summaries into three tables of one SQLite file; it also
offers simple read-back queries so post-processing scripts (and the tests)
can verify what was stored.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.monitoring.events import EventRecord, SiteSnapshot
from repro.workload.job import Job

__all__ = ["SQLiteStore"]

PathLike = Union[str, Path]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS events (
    event_id INTEGER PRIMARY KEY,
    time REAL NOT NULL,
    job_id INTEGER NOT NULL,
    state TEXT NOT NULL,
    site TEXT NOT NULL,
    available_cores INTEGER NOT NULL,
    pending_jobs INTEGER NOT NULL,
    assigned_jobs INTEGER NOT NULL,
    finished_jobs INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS snapshots (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    time REAL NOT NULL,
    site TEXT NOT NULL,
    total_cores INTEGER NOT NULL,
    available_cores INTEGER NOT NULL,
    running_jobs INTEGER NOT NULL,
    queued_jobs INTEGER NOT NULL,
    pending_jobs INTEGER NOT NULL,
    finished_jobs INTEGER NOT NULL,
    failed_jobs INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    job_id INTEGER PRIMARY KEY,
    task_id INTEGER,
    cores INTEGER NOT NULL,
    work REAL NOT NULL,
    submission_time REAL NOT NULL,
    assigned_site TEXT,
    state TEXT NOT NULL,
    assigned_time REAL,
    start_time REAL,
    end_time REAL,
    queue_time REAL,
    walltime REAL,
    true_walltime REAL,
    true_queue_time REAL,
    failure_reason TEXT
);
CREATE INDEX IF NOT EXISTS idx_events_site ON events (site);
CREATE INDEX IF NOT EXISTS idx_events_job ON events (job_id);
CREATE INDEX IF NOT EXISTS idx_snapshots_site ON snapshots (site);
"""


class SQLiteStore:
    """Collector sink writing monitoring output into one SQLite database.

    The store can be used as a context manager; :meth:`close` commits and
    closes the connection.  ``":memory:"`` databases are supported for tests.
    """

    def __init__(self, path: PathLike = ":memory:") -> None:
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # -- sink protocol -------------------------------------------------------------
    def write_event(self, record: EventRecord) -> None:
        """Insert one event-level row."""
        self._conn.execute(
            "INSERT OR REPLACE INTO events VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record.event_id,
                record.time,
                record.job_id,
                record.state,
                record.site,
                record.available_cores,
                record.pending_jobs,
                record.assigned_jobs,
                record.finished_jobs,
            ),
        )

    def write_batch(self, rows: Iterable[tuple]) -> None:
        """Insert a batch of event rows (``EVENT_FIELDS`` order) via ``executemany``.

        This is the fast path the batching collector uses: one C-level
        ``executemany`` per batch instead of one ``execute`` per transition.
        """
        self._conn.executemany(
            "INSERT OR REPLACE INTO events VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)", rows
        )

    def write_snapshot(self, snapshot: SiteSnapshot) -> None:
        """Insert one site snapshot row."""
        self._conn.execute(
            "INSERT INTO snapshots (time, site, total_cores, available_cores, running_jobs,"
            " queued_jobs, pending_jobs, finished_jobs, failed_jobs)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                snapshot.time,
                snapshot.site,
                snapshot.total_cores,
                snapshot.available_cores,
                snapshot.running_jobs,
                snapshot.queued_jobs,
                snapshot.pending_jobs,
                snapshot.finished_jobs,
                snapshot.failed_jobs,
            ),
        )

    def write_jobs(self, jobs: Iterable[Job]) -> None:
        """Write (or update) the final per-job summary table."""
        rows = []
        for job in jobs:
            record = job.to_record()
            rows.append(
                (
                    record["job_id"],
                    record["task_id"],
                    record["cores"],
                    record["work"],
                    record["submission_time"],
                    record["assigned_site"],
                    record["state"],
                    record["assigned_time"],
                    record["start_time"],
                    record["end_time"],
                    record["queue_time"],
                    record["walltime"],
                    record["true_walltime"],
                    record["true_queue_time"],
                    record["failure_reason"],
                )
            )
        self._conn.executemany(
            "INSERT OR REPLACE INTO jobs VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            rows,
        )
        self._conn.commit()

    # -- queries -----------------------------------------------------------------
    def count_events(self) -> int:
        """Number of event rows stored."""
        return int(self._conn.execute("SELECT COUNT(*) FROM events").fetchone()[0])

    def count_jobs(self, state: Optional[str] = None) -> int:
        """Number of job rows stored (optionally filtered by final state)."""
        if state is None:
            return int(self._conn.execute("SELECT COUNT(*) FROM jobs").fetchone()[0])
        return int(
            self._conn.execute("SELECT COUNT(*) FROM jobs WHERE state = ?", (state,)).fetchone()[0]
        )

    def events_for_site(self, site: str) -> List[tuple]:
        """Event rows for one site, ordered by event id."""
        return list(
            self._conn.execute(
                "SELECT * FROM events WHERE site = ? ORDER BY event_id", (site,)
            ).fetchall()
        )

    def mean_walltime(self) -> Optional[float]:
        """Mean simulated walltime over finished jobs (None when empty)."""
        row = self._conn.execute(
            "SELECT AVG(walltime) FROM jobs WHERE state = 'finished'"
        ).fetchone()
        return None if row[0] is None else float(row[0])

    # -- lifecycle -----------------------------------------------------------------
    def commit(self) -> None:
        """Flush pending writes."""
        self._conn.commit()

    def flush(self) -> None:
        """Commit pending writes, keeping the connection open.

        Uniform sink-pause protocol (see :class:`~repro.monitoring.csv_export.CSVSink`):
        a paused or aborted session flushes its live sinks without closing
        them, so the data written so far is durable and the run can resume.
        """
        self._conn.commit()

    def close(self) -> None:
        """Commit and close the underlying connection."""
        self._conn.commit()
        self._conn.close()

    def __enter__(self) -> "SQLiteStore":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.close()
