"""Plugin conformance suite: golden invariants for third-party extensions.

The plugin registry (:mod:`repro.plugins.registry`) is a published
extension surface -- anyone can ship an allocation policy, eviction policy
or replication strategy.  This package is the executable contract those
plugins must honour: :func:`run_conformance` drives any registered plugin
(or a dynamic ``module:Class`` spec) through a battery of checks --
repeat determinism, determinism under multiple ``PYTHONHASHSEED`` values
(fresh subprocesses), cache capacity/accounting bounds, victim and
placement contracts, metric-contract shape, snapshot/restore bit-identity
and a global-RNG watchdog -- and returns structured
:class:`ConformanceReport` objects that render as text or JSON.

Exposed via ``repro conformance run``; see ``docs/conformance.md`` for the
plugin-author guide and :mod:`repro.conformance.demo` for deliberately
broken examples every invariant catches.
"""

from repro.conformance.checks import CONFORMANCE_FAMILIES, behaviour_digest, family_checks
from repro.conformance.harness import run_conformance
from repro.conformance.report import CheckOutcome, ConformanceReport, render_reports

__all__ = [
    "CONFORMANCE_FAMILIES",
    "CheckOutcome",
    "ConformanceReport",
    "behaviour_digest",
    "family_checks",
    "render_reports",
    "run_conformance",
]
