"""The golden-invariant checks a conforming plugin must uphold.

Each plugin family gets a fixed battery of checks driven by deterministic
fixture workloads (all randomness flows through
:class:`repro.utils.rng.RandomSource`, never the global RNGs):

* **behaviour digest** -- every family has a canonical fixture drive whose
  full observable behaviour (decisions, snapshots, counters, metrics) is
  hashed into one SHA-256 digest.  Repeat-determinism compares two
  in-process digests; the harness additionally recomputes the digest in
  fresh subprocesses under several ``PYTHONHASHSEED`` values and compares
  them all, which catches iteration-order bugs invisible inside a single
  interpreter.
* **contract checks** -- family-specific: eviction victims must be resident
  and unpinned and the cache's capacity/accounting bounds must hold;
  replication placements must cover every dataset with unique known sites
  independent of input iteration order; allocation policies must yield a
  complete, sane metrics object from a real simulation run.
* **snapshot/restore** -- the PR 6 checkpoint contract: replaying the first
  half of the fixture drive must reproduce the mid-point snapshot
  bit-identically (verified via :func:`repro.state.diff_states`), and for
  allocation policies a full session checkpoint/restore must finish with an
  identical result fingerprint.
* **no stray global RNG** -- the fixture drive must leave ``random`` and
  ``numpy.random`` global state untouched; plugins must draw from seeded
  generators they own.

This module intentionally imports :mod:`random` -- it *reads* the global
RNG state to detect plugins that draw from it; the RNG-hygiene lint in
``tests/test_state.py`` allow-lists it for exactly that reason.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.conformance.report import CheckOutcome
from repro.state.protocol import canonical_state
from repro.utils.rng import RandomSource

__all__ = ["CONFORMANCE_FAMILIES", "behaviour_digest", "family_checks"]

#: Plugin families the conformance suite knows how to exercise.
CONFORMANCE_FAMILIES = ("allocation", "eviction", "replication")

#: Job-id counter base for allocation fixture runs (mirrors tests/test_state.py:
#: fingerprint-compared runs must allocate identical retry ids).
_COUNTER_BASE = 900_000


def _digest(payload: Any) -> str:
    """SHA-256 over the canonical JSON form of ``payload``."""
    blob = json.dumps(canonical_state(payload), sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _make(family: str, spec: str, options: Dict[str, Any]):
    from repro.plugins.registry import create_plugin

    return create_plugin(family, spec, **options)


def _global_rng_fingerprint() -> Tuple[Any, ...]:
    """Comparable fingerprint of both global RNGs (stdlib and NumPy legacy)."""
    np_state = np.random.get_state(legacy=True)
    return (random.getstate(), (np_state[0], np_state[1].tobytes()) + tuple(np_state[2:]))


# -- eviction fixtures -----------------------------------------------------------


def _drive_cache(policy, steps: int = 200, invariant_hook: Optional[Callable] = None):
    """Run the canonical mixed lookup/insert/touch workload against ``policy``.

    Returns ``(cache, trace)`` where the trace holds the full behaviour
    (event list + final cache snapshot); ``invariant_hook(cache)`` runs
    after every operation so the capacity check can assert bounds step-wise
    without re-driving.
    """
    from repro.data.cache import SiteCache

    cache = SiteCache("conformance", capacity=120.0, policy=policy)
    cache.insert("replica_a", 12.0, pinned=True)
    cache.insert("replica_b", 18.0, pinned=True)
    rng = RandomSource(2024).generator("conformance-eviction")
    datasets = [f"ds{i:02d}" for i in range(14)]
    sizes = [7.0 + 4.0 * (i % 5) for i in range(14)]
    events: List[List[Any]] = []
    for _ in range(steps):
        index = int(rng.integers(0, len(datasets)))
        dataset, size = datasets[index], sizes[index]
        if cache.lookup(dataset):
            events.append(["hit", dataset])
        else:
            accepted = cache.insert(dataset, size)
            events.append(["insert", dataset, bool(accepted)])
        if float(rng.random()) < 0.1:
            other = datasets[int(rng.integers(0, len(datasets)))]
            cache.touch(other)
            events.append(["touch", other])
        if invariant_hook is not None:
            invariant_hook(cache)
    return cache, {"events": events, "snapshot": cache.snapshot()}


def _eviction_digest(spec: str, options: Dict[str, Any]) -> str:
    return _digest(_drive_cache(_make("eviction", spec, options))[1])


def _check_eviction_victim_contract(spec: str, options: Dict[str, Any]) -> CheckOutcome:
    from repro.data.cache import SiteCache

    policy = _make("eviction", spec, options)
    cache = SiteCache("conformance", capacity=60.0, policy=policy)
    cache.insert("pinned_replica", 10.0, pinned=True)
    for index in range(5):
        cache.insert(f"ds{index:02d}", 10.0)
    for _ in range(4):
        victim = policy.victim(cache)
        if victim is None:
            break
        if victim not in cache:
            return CheckOutcome(
                "victim_contract", "fail",
                f"victim {victim!r} is not resident in the cache")
        if cache.entry(victim).pinned:
            return CheckOutcome(
                "victim_contract", "fail",
                f"victim {victim!r} is pinned (replicas of record are not evictable)")
        cache.evict(victim)
    return CheckOutcome("victim_contract", "pass")


def _check_eviction_capacity(spec: str, options: Dict[str, Any]) -> CheckOutcome:
    violations: List[str] = []

    def invariant(cache) -> None:
        resident = sum(entry.size for entry in (cache.entry(d) for d in cache.datasets()))
        if cache.used > cache.capacity + 1e-9:
            violations.append(f"used {cache.used:g} exceeds capacity {cache.capacity:g}")
        if abs(resident - cache.used) > 1e-9:
            violations.append(f"accounting drift: entries total {resident:g}, used {cache.used:g}")
        stats = cache.stats
        if len(cache) != stats.insertions - stats.evictions:
            violations.append(
                f"{len(cache)} residents but insertions-evictions = "
                f"{stats.insertions - stats.evictions}")

    _, trace = _drive_cache(_make("eviction", spec, options), invariant_hook=invariant)
    entries = trace["snapshot"]["entries"]
    for name in ("replica_a", "replica_b"):
        if name not in entries or not entries[name]["pinned"]:
            violations.append(f"pinned replica {name!r} was evicted")
    if violations:
        return CheckOutcome("capacity_bounds", "fail", violations[0])
    return CheckOutcome("capacity_bounds", "pass")


def _check_eviction_snapshot(spec: str, options: Dict[str, Any]) -> CheckOutcome:
    from repro.utils.errors import CheckpointError

    # PR 6 checkpoint contract: a cache rebuilt by replaying the same drive
    # must verify bit-identically against the mid-run snapshot.
    half = 100
    _, trace = _drive_cache(_make("eviction", spec, options), steps=half)
    replayed, _ = _drive_cache(_make("eviction", spec, options), steps=half)
    try:
        replayed.restore(trace["snapshot"])
    except CheckpointError as exc:
        return CheckOutcome("snapshot_restore", "fail", str(exc))
    return CheckOutcome("snapshot_restore", "pass")


# -- replication fixtures --------------------------------------------------------


def _replication_fixture(shuffled: bool = False) -> Tuple[List[str], Dict[str, float], Dict]:
    sites = [f"site_{i:02d}" for i in range(6)]
    datasets = {f"ds{i:02d}": float(i + 1) * 1e9 for i in range(10)}
    rng = RandomSource(7).generator("conformance-replication")
    demand: Dict[str, Dict[str, int]] = {}
    for dataset in datasets:
        demand[dataset] = {
            sites[int(rng.integers(0, len(sites)))]: int(rng.integers(1, 20))
            for _ in range(3)
        }
    if shuffled:
        # Same content, reversed insertion order: a strategy that depends on
        # dict/set iteration order produces a different placement here.
        # (Site *list* order stays fixed -- registration order is contractual.)
        datasets = dict(reversed(list(datasets.items())))
        demand = {k: dict(reversed(list(v.items()))) for k, v in reversed(list(demand.items()))}
    return sites, datasets, demand


def _place(strategy, shuffled: bool = False) -> Dict[str, List[str]]:
    from repro.data.replication import PlacementContext

    sites, datasets, demand = _replication_fixture(shuffled)
    context = PlacementContext(sites=sites, platform=None, demand=demand, seed=13)
    return strategy.place(datasets, context)


def _replication_digest(spec: str, options: Dict[str, Any]) -> str:
    return _digest(_place(_make("replication", spec, options)))


def _check_placement_contract(spec: str, options: Dict[str, Any]) -> CheckOutcome:
    sites, datasets, _ = _replication_fixture()
    placement = _place(_make("replication", spec, options))
    if set(placement) != set(datasets):
        missing = sorted(set(datasets) - set(placement))
        extra = sorted(set(placement) - set(datasets))
        return CheckOutcome(
            "placement_contract", "fail",
            f"placement keys mismatch (missing {missing}, extra {extra})")
    for dataset, replica_sites in placement.items():
        if not replica_sites:
            return CheckOutcome(
                "placement_contract", "fail", f"dataset {dataset!r} received no replicas")
        if len(set(replica_sites)) != len(replica_sites):
            return CheckOutcome(
                "placement_contract", "fail", f"duplicate replica sites for {dataset!r}")
        unknown = sorted(set(replica_sites) - set(sites))
        if unknown:
            return CheckOutcome(
                "placement_contract", "fail",
                f"dataset {dataset!r} placed on unknown sites {unknown}")
    return CheckOutcome("placement_contract", "pass")


def _check_order_independence(spec: str, options: Dict[str, Any]) -> CheckOutcome:
    straight = _place(_make("replication", spec, options))
    reversed_input = _place(_make("replication", spec, options), shuffled=True)
    if straight != reversed_input:
        changed = sorted(d for d in straight if straight[d] != reversed_input.get(d))[:3]
        return CheckOutcome(
            "order_independence", "fail",
            f"placement depends on input iteration order (differs for {changed})")
    return CheckOutcome("order_independence", "pass")


# -- allocation fixtures ---------------------------------------------------------


def _allocation_session(spec: str, options: Dict[str, Any]):
    from repro.config.execution import ExecutionConfig, MonitoringConfig
    from repro.config.generators import generate_grid
    from repro.core import Simulator
    from repro.workload.generator import SyntheticWorkloadGenerator
    from repro.workload.job import reset_job_id_counter

    reset_job_id_counter(_COUNTER_BASE)
    infrastructure, topology = generate_grid(3, seed=5)
    jobs = SyntheticWorkloadGenerator(infrastructure, seed=11).generate(40)
    execution = ExecutionConfig(
        plugin=spec,
        plugin_options=dict(options),
        seed=17,
        max_simulation_time=30 * 24 * 3600.0,  # bound runaway never-assigning plugins
        monitoring=MonitoringConfig(snapshot_interval=0.0),
    )
    simulator = Simulator(infrastructure, topology, execution)
    return simulator.session(jobs)


def _allocation_result(spec: str, options: Dict[str, Any]):
    session = _allocation_session(spec, options)
    session.advance_to_completion()
    return session.finalize()


def _allocation_digest(spec: str, options: Dict[str, Any]) -> str:
    from repro.state import fingerprint_result

    return fingerprint_result(_allocation_result(spec, options))


#: Metric keys every allocation run must report with finite numeric values.
_REQUIRED_METRICS = (
    "total_jobs", "finished_jobs", "failed_jobs", "makespan", "mean_walltime",
    "median_walltime", "mean_queue_time", "median_queue_time", "mean_total_time",
    "throughput", "failure_rate", "cpu_time",
)


def _check_metric_contract(spec: str, options: Dict[str, Any]) -> CheckOutcome:
    metrics = _allocation_result(spec, options).metrics.to_dict()
    for key in _REQUIRED_METRICS:
        if key not in metrics:
            return CheckOutcome("metric_contract", "fail", f"metrics missing {key!r}")
        value = metrics[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return CheckOutcome(
                "metric_contract", "fail", f"metric {key!r} is not numeric: {value!r}")
        if not np.isfinite(value) or value < 0:
            return CheckOutcome(
                "metric_contract", "fail", f"metric {key!r} is not a finite >= 0 number: {value!r}")
    if metrics["total_jobs"] != 40:
        return CheckOutcome(
            "metric_contract", "fail",
            f"total_jobs is {metrics['total_jobs']}, expected the 40 submitted jobs")
    if not 0.0 <= metrics["failure_rate"] <= 1.0:
        return CheckOutcome(
            "metric_contract", "fail", f"failure_rate {metrics['failure_rate']!r} outside [0, 1]")
    return CheckOutcome("metric_contract", "pass")


def _check_allocation_snapshot(spec: str, options: Dict[str, Any]) -> CheckOutcome:
    from repro.core import SimulationSession
    from repro.state import fingerprint_result
    from repro.utils.errors import CheckpointError

    expected = _allocation_digest(spec, options)
    session = _allocation_session(spec, options)
    session.advance_until(2000.0)
    try:
        restored = SimulationSession.restore(None, session.checkpoint())
        restored.advance_to_completion()
        digest = fingerprint_result(restored.finalize())
    except CheckpointError as exc:
        return CheckOutcome("snapshot_restore", "fail", f"restore verification failed: {exc}")
    if digest != expected:
        return CheckOutcome(
            "snapshot_restore", "fail",
            "checkpoint/restore run fingerprint differs from the uninterrupted run")
    return CheckOutcome("snapshot_restore", "pass")


# -- family dispatch -------------------------------------------------------------

_DIGESTS: Dict[str, Callable[[str, Dict[str, Any]], str]] = {
    "allocation": _allocation_digest,
    "eviction": _eviction_digest,
    "replication": _replication_digest,
}


def behaviour_digest(family: str, spec: str, options: Optional[Dict[str, Any]] = None) -> str:
    """The canonical behaviour digest of one plugin on its fixture workload.

    A SHA-256 hex digest over the plugin's full observable behaviour:
    eviction policies hash the cache event trace and final snapshot,
    replication strategies the placement mapping, allocation policies the
    result fingerprint of a real 40-job simulation.  Equal digests across
    repeats, fresh interpreters and ``PYTHONHASHSEED`` values are the
    determinism contract.
    """
    if family not in _DIGESTS:
        from repro.utils.errors import ConfigurationError

        raise ConfigurationError(
            f"unknown conformance family {family!r}; expected one of {CONFORMANCE_FAMILIES}")
    return _DIGESTS[family](spec, dict(options or {}))


def _check_repeat_determinism(family: str, spec: str, options: Dict[str, Any]) -> CheckOutcome:
    first = behaviour_digest(family, spec, options)
    second = behaviour_digest(family, spec, options)
    if first != second:
        return CheckOutcome(
            "repeat_determinism", "fail",
            "two identical in-process fixture runs produced different behaviour "
            f"digests ({first[:12]} vs {second[:12]}); the plugin draws on "
            "uncontrolled state")
    return CheckOutcome("repeat_determinism", "pass")


def _check_no_global_rng(family: str, spec: str, options: Dict[str, Any]) -> CheckOutcome:
    before = _global_rng_fingerprint()
    behaviour_digest(family, spec, options)
    if _global_rng_fingerprint() != before:
        return CheckOutcome(
            "no_global_rng", "fail",
            "the fixture run mutated global RNG state (random/numpy.random); "
            "plugins must draw from seeded generators they own "
            "(see repro.utils.rng.RandomSource)")
    return CheckOutcome("no_global_rng", "pass")


def _skip_stateless(spec: str, options: Dict[str, Any]) -> CheckOutcome:
    return CheckOutcome(
        "snapshot_restore", "skip",
        "replication strategies are stateless (placement happens once, before "
        "the run); there is no snapshot()/restore() surface to verify")


#: Ordered family-specific checks; each entry maps a check callable taking
#: ``(spec, options)``.  Family-agnostic checks are added by
#: :func:`family_checks`.
_FAMILY_CHECKS: Dict[str, List[Callable[[str, Dict[str, Any]], CheckOutcome]]] = {
    "eviction": [
        _check_eviction_victim_contract,
        _check_eviction_capacity,
        _check_eviction_snapshot,
    ],
    "replication": [
        _check_placement_contract,
        _check_order_independence,
        _skip_stateless,
    ],
    "allocation": [
        _check_metric_contract,
        _check_allocation_snapshot,
    ],
}


def family_checks(family: str) -> List[Callable[[str, Dict[str, Any]], CheckOutcome]]:
    """The ordered in-process check battery for ``family``.

    Every battery starts with repeat-determinism and ends with the
    global-RNG watchdog; the family-specific contract and snapshot checks
    sit in between.  The harness prepends instantiation and appends the
    subprocess ``PYTHONHASHSEED`` comparison itself.
    """
    if family not in _FAMILY_CHECKS:
        from repro.utils.errors import ConfigurationError

        raise ConfigurationError(
            f"unknown conformance family {family!r}; expected one of {CONFORMANCE_FAMILIES}")

    def repeat(spec: str, options: Dict[str, Any]) -> CheckOutcome:
        return _check_repeat_determinism(family, spec, options)

    def no_global(spec: str, options: Dict[str, Any]) -> CheckOutcome:
        return _check_no_global_rng(family, spec, options)

    return [repeat, *_FAMILY_CHECKS[family], no_global]
