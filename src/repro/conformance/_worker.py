"""Subprocess entry point recomputing behaviour digests in a fresh interpreter.

The conformance harness launches ``python -m repro.conformance._worker`` once
per ``PYTHONHASHSEED`` value, feeding a JSON document on stdin::

    {"targets": [{"family": "eviction", "spec": "lru", "options": {}}, ...]}

and reading one on stdout::

    {"results": [{"digest": "<sha256>", "error": null}, ...]}

One subprocess covers *all* targets for a given hash seed -- interpreter
start-up dominates the fixture drives, so batching keeps the whole
hash-randomisation sweep to three subprocess launches.  A target whose
plugin cannot be loaded in a fresh interpreter (e.g. a class registered
only in the parent process) reports an ``error`` string instead of a
digest; the harness converts that into a ``skip``, not a failure.
"""

from __future__ import annotations

import json
import sys


def main() -> int:
    """Compute digests for every stdin target; always exit 0 with a report."""
    from repro.conformance.checks import behaviour_digest

    request = json.load(sys.stdin)
    results = []
    for target in request["targets"]:
        try:
            digest = behaviour_digest(
                target["family"], target["spec"], target.get("options") or {})
            results.append({"digest": digest, "error": None})
        except Exception as exc:  # noqa: BLE001 - reported per-target, not fatal
            results.append({"digest": None, "error": f"{type(exc).__name__}: {exc}"})
    json.dump({"results": results}, sys.stdout)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
