"""Run the conformance battery over registered plugins and collect reports.

:func:`run_conformance` is the engine behind ``repro conformance run``: it
resolves the requested family/plugin selection against the live registry,
runs the in-process checks from :mod:`repro.conformance.checks` for every
target, then launches one fresh subprocess per ``PYTHONHASHSEED`` value
(covering *all* targets each) and compares the recomputed behaviour digests
-- the check that actually catches iteration-order bugs, which are
invisible inside a single interpreter.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.conformance.checks import CONFORMANCE_FAMILIES, family_checks
from repro.conformance.report import CheckOutcome, ConformanceReport
from repro.utils.errors import ConfigurationError

__all__ = ["run_conformance"]

#: Accepted spellings for the family selector (CLI ``--family``).
FAMILY_ALIASES = {"policy": "allocation", "scheduler": "allocation"}

#: Hash seeds the subprocess determinism sweep recomputes digests under.
DEFAULT_HASH_SEEDS = ("0", "1", "2")

#: Checks that cannot run when the plugin does not even instantiate.
_SKIP_ON_INSTANTIATION_FAILURE = "skipped: plugin failed to instantiate"


def _resolve_families(family: str) -> List[str]:
    if family == "all":
        return list(CONFORMANCE_FAMILIES)
    resolved = FAMILY_ALIASES.get(family, family)
    if resolved not in CONFORMANCE_FAMILIES:
        known = sorted(set(CONFORMANCE_FAMILIES) | set(FAMILY_ALIASES))
        raise ConfigurationError(
            f"unknown conformance family {family!r}; expected 'all' or one of {known}")
    return [resolved]


def _resolve_targets(
    families: List[str], plugin: Optional[str]
) -> List[Tuple[str, str]]:
    from repro.plugins.registry import available_plugins, load_plugin_class

    targets: List[Tuple[str, str]] = []
    for fam in families:
        names = available_plugins(fam)
        if plugin is None:
            targets.extend((fam, name) for name in names)
        elif plugin in names:
            targets.append((fam, plugin))
        elif ":" in plugin:
            # A "module.path:ClassName" spec; probe which family accepts it.
            try:
                load_plugin_class(fam, plugin)
            except Exception:
                continue
            targets.append((fam, plugin))
    if plugin is not None and not targets:
        registered = {fam: available_plugins(fam) for fam in families}
        raise ConfigurationError(
            f"unknown plugin {plugin!r} in families {families}; "
            f"registered plugins: {registered} (or use 'module.path:ClassName')")
    return targets


def _static_lint_check(family: str, spec: str) -> CheckOutcome:
    """Run the static determinism/pickle lint over the plugin's source module.

    The ``--lint`` pass resolves the plugin class back to its source file
    and runs :mod:`repro.lint`'s determinism and pickle families over it
    with *no* baseline -- the static complement of the dynamic battery, so
    a plugin drawing from the global RNG or picking from a ``set`` is
    flagged with file:line before any simulation runs.  Plugins without a
    reachable source file (e.g. defined in a REPL) are skipped.
    """
    import inspect

    from repro.plugins.registry import load_plugin_class

    try:
        cls = load_plugin_class(family, spec)
        source = inspect.getsourcefile(cls)
    except Exception as exc:  # noqa: BLE001 - unresolvable source = skip
        return CheckOutcome(
            "static_lint", "skip",
            f"skipped: cannot locate plugin source "
            f"({type(exc).__name__}: {exc})")
    if source is None:
        return CheckOutcome(
            "static_lint", "skip", "skipped: plugin has no source file")
    from repro.lint import run_lint

    report = run_lint([source], rules=["determinism", "pickle"], baseline=None)
    if report.findings:
        details = "; ".join(
            f"{f.location}: {f.rule} {f.message}" for f in report.findings)
        return CheckOutcome(
            "static_lint", "fail",
            f"{len(report.findings)} static finding(s): {details}")
    return CheckOutcome("static_lint", "pass")


def _instantiation_check(family: str, spec: str) -> CheckOutcome:
    from repro.plugins.registry import create_plugin

    try:
        create_plugin(family, spec)
    except Exception as exc:  # noqa: BLE001 - any constructor error is a finding
        return CheckOutcome(
            "instantiation", "fail", f"{type(exc).__name__}: {exc}")
    return CheckOutcome("instantiation", "pass")


def _subprocess_digests(
    targets: Sequence[Tuple[str, str]], hash_seed: str
) -> List[Dict[str, Any]]:
    """Recompute all target digests in one fresh interpreter under ``hash_seed``."""
    import repro

    src_root = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    env["PYTHONHASHSEED"] = hash_seed
    request = json.dumps({
        "targets": [
            {"family": family, "spec": spec, "options": {}}
            for family, spec in targets
        ]
    })
    proc = subprocess.run(
        [sys.executable, "-m", "repro.conformance._worker"],
        input=request, capture_output=True, text=True, env=env, check=False,
    )
    if proc.returncode != 0:
        raise ConfigurationError(
            f"conformance worker crashed under PYTHONHASHSEED={hash_seed}: "
            f"{proc.stderr.strip()[-500:]}")
    return json.loads(proc.stdout)["results"]


def _hashseed_outcomes(
    targets: Sequence[Tuple[str, str]],
    baselines: Sequence[Optional[str]],
    hash_seeds: Sequence[str],
) -> List[CheckOutcome]:
    """One ``hashseed_determinism`` outcome per target, batched per seed."""
    live = [i for i, digest in enumerate(baselines) if digest is not None]
    outcomes: List[Optional[CheckOutcome]] = [None] * len(targets)
    for i, digest in enumerate(baselines):
        if digest is None:
            outcomes[i] = CheckOutcome(
                "hashseed_determinism", "skip",
                "skipped: no baseline digest (earlier checks failed)")
    per_seed: Dict[int, List[Tuple[str, Optional[str], Optional[str]]]] = {
        i: [] for i in live}
    for seed in hash_seeds:
        results = _subprocess_digests([targets[i] for i in live], seed)
        for slot, result in zip(live, results):
            per_seed[slot].append((seed, result["digest"], result["error"]))
    for i in live:
        errors = [(seed, err) for seed, _, err in per_seed[i] if err]
        if errors:
            seed, err = errors[0]
            outcomes[i] = CheckOutcome(
                "hashseed_determinism", "skip",
                f"skipped: plugin not loadable in a fresh interpreter "
                f"(PYTHONHASHSEED={seed}: {err})")
            continue
        mismatched = [
            (seed, digest) for seed, digest, _ in per_seed[i]
            if digest != baselines[i]
        ]
        if mismatched:
            seed, digest = mismatched[0]
            outcomes[i] = CheckOutcome(
                "hashseed_determinism", "fail",
                f"behaviour digest changed under PYTHONHASHSEED={seed} "
                f"({baselines[i][:12]} -> {str(digest)[:12]}); the plugin "
                "depends on hash/iteration order")
        else:
            outcomes[i] = CheckOutcome("hashseed_determinism", "pass")
    return [outcome for outcome in outcomes if outcome is not None]


def run_conformance(
    family: str = "all",
    plugin: Optional[str] = None,
    hash_seeds: Sequence[str] = DEFAULT_HASH_SEEDS,
    subprocess_checks: bool = True,
    static_lint: bool = False,
) -> List[ConformanceReport]:
    """Exercise every selected plugin against the golden invariants.

    ``family`` is one of ``all``/``allocation``/``eviction``/``replication``
    (``policy`` aliases ``allocation``); ``plugin`` narrows the run to one
    registered name or ``module.path:ClassName`` spec.  Returns one
    :class:`~repro.conformance.report.ConformanceReport` per (family,
    plugin) target; unknown selections raise
    :class:`~repro.utils.errors.ConfigurationError`.  Set
    ``subprocess_checks=False`` to drop the ``PYTHONHASHSEED`` sweep (three
    interpreter launches) when iterating interactively; set
    ``static_lint=True`` (CLI ``--lint``) to add a ``static_lint`` outcome
    per plugin from :mod:`repro.lint`'s determinism + pickle rules over
    the plugin's source module (no baseline applied).
    """
    from repro.conformance.checks import behaviour_digest

    targets = _resolve_targets(_resolve_families(family), plugin)
    reports: List[ConformanceReport] = []
    baselines: List[Optional[str]] = []
    for fam, spec in targets:
        report = ConformanceReport(family=fam, plugin=spec)
        reports.append(report)
        first = _instantiation_check(fam, spec)
        report.checks.append(first)
        if first.status == "fail":
            baselines.append(None)
            for check_name in _battery_names(fam):
                report.checks.append(
                    CheckOutcome(check_name, "skip", _SKIP_ON_INSTANTIATION_FAILURE))
            continue
        failed = False
        for check in family_checks(fam):
            try:
                outcome = check(spec, {})
            except Exception as exc:  # noqa: BLE001 - crash inside a check = fail
                outcome = CheckOutcome(
                    _check_name(check), "fail",
                    f"check crashed: {type(exc).__name__}: {exc}")
            report.checks.append(outcome)
            failed = failed or outcome.status == "fail"
        if failed:
            baselines.append(None)
        else:
            baselines.append(behaviour_digest(fam, spec))
    if subprocess_checks:
        for report, outcome in zip(
            reports, _hashseed_outcomes(targets, baselines, hash_seeds)
        ):
            report.checks.append(outcome)
    if static_lint:
        for report, (fam, spec) in zip(reports, targets):
            report.checks.append(_static_lint_check(fam, spec))
    return reports


def _check_name(check) -> str:
    """Best-effort stable identifier for a check callable that crashed."""
    name = getattr(check, "__name__", "check")
    for prefix in ("_check_eviction_", "_check_allocation_", "_check_"):
        if name.startswith(prefix):
            return name[len(prefix):]
    return name


#: Check identifiers per family, used to emit skip rows for plugins that
#: never instantiated (their battery cannot run, but the report should
#: still show which invariants went unexercised).
def _battery_names(family: str) -> List[str]:
    names = {
        "eviction": ["repeat_determinism", "victim_contract", "capacity_bounds",
                     "snapshot_restore", "no_global_rng"],
        "replication": ["repeat_determinism", "placement_contract",
                        "order_independence", "snapshot_restore", "no_global_rng"],
        "allocation": ["repeat_determinism", "metric_contract",
                       "snapshot_restore", "no_global_rng"],
    }
    return names[family]
