"""Structured results of a plugin conformance run.

A conformance run produces one :class:`ConformanceReport` per (family,
plugin) pair, holding one :class:`CheckOutcome` per golden invariant with a
``pass``/``fail``/``skip`` status and a human-readable reason.  Reports
render both as text tables (``repro conformance run``) and as JSON
(``--json``), so CI and third-party plugin authors consume the same data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["CheckOutcome", "ConformanceReport", "render_reports"]

#: The statuses a check may report.
STATUSES = ("pass", "fail", "skip")


@dataclass(frozen=True)
class CheckOutcome:
    """Result of one conformance check against one plugin.

    ``check`` is the stable invariant identifier (``repeat_determinism``,
    ``capacity_bounds``, ...), ``status`` one of ``pass``/``fail``/``skip``
    and ``detail`` the reason -- mandatory for failures and skips, empty for
    ordinary passes.
    """

    check: str
    status: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"invalid check status {self.status!r}; expected {STATUSES}")

    def to_dict(self) -> dict:
        """JSON-friendly representation of this single check outcome."""
        return {"check": self.check, "status": self.status, "detail": self.detail}


@dataclass
class ConformanceReport:
    """All check outcomes for one plugin of one family.

    ``ok`` is True when no check failed (skips do not fail a plugin: a
    stateless replication strategy legitimately skips the snapshot check).
    :meth:`render` produces the human-readable block the CLI prints;
    :meth:`to_dict` the JSON document ``--json`` emits.
    """

    family: str
    plugin: str
    checks: List[CheckOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no check failed (skipped checks are not failures)."""
        return all(outcome.status != "fail" for outcome in self.checks)

    @property
    def counts(self) -> Dict[str, int]:
        """Number of checks per status (``{"pass": 5, "fail": 0, "skip": 1}``)."""
        return {
            status: sum(1 for outcome in self.checks if outcome.status == status)
            for status in STATUSES
        }

    def failures(self) -> List[CheckOutcome]:
        """The failed checks only, in execution order."""
        return [outcome for outcome in self.checks if outcome.status == "fail"]

    def to_dict(self) -> dict:
        """JSON-friendly representation (what ``--json`` emits per plugin)."""
        return {
            "family": self.family,
            "plugin": self.plugin,
            "ok": self.ok,
            "counts": self.counts,
            "checks": [outcome.to_dict() for outcome in self.checks],
        }

    def render(self) -> str:
        """Human-readable block: verdict line plus one line per check."""
        verdict = "PASS" if self.ok else "FAIL"
        lines = [f"{verdict}  {self.family}/{self.plugin}"]
        for outcome in self.checks:
            marker = {"pass": "ok", "fail": "FAIL", "skip": "skip"}[outcome.status]
            line = f"  [{marker:>4}] {outcome.check}"
            if outcome.detail:
                line += f": {outcome.detail}"
            lines.append(line)
        return "\n".join(lines)


def render_reports(reports: List[ConformanceReport]) -> str:
    """Render a full conformance run: per-plugin blocks plus a summary line.

    The summary counts plugins, not checks, and names every failing plugin
    so a red CI log leads straight to the offender.
    """
    blocks = [report.render() for report in reports]
    failed = [f"{r.family}/{r.plugin}" for r in reports if not r.ok]
    summary = f"{len(reports) - len(failed)}/{len(reports)} plugins conform"
    if failed:
        summary += "; failing: " + ", ".join(failed)
    return "\n\n".join(blocks + [summary])
