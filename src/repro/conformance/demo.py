"""Deliberately non-conforming demo plugins the conformance suite must catch.

These classes are **not** registered -- they are reached only through the
dynamic ``module:Class`` spec (``repro.conformance.demo:WobblyEviction``),
so bundled conformance runs stay green while the test suite and the docs
use them to demonstrate what a failing report looks like:

* :class:`WobblyEviction` draws its victim from the *global* NumPy RNG --
  two identical runs evict different datasets, so ``repeat_determinism``
  and ``no_global_rng`` both fail with reports naming the invariant.
* :class:`HashOrderedEviction` evicts the first element of a ``set`` --
  stable inside one interpreter, different across ``PYTHONHASHSEED``
  values, so only the subprocess ``hashseed_determinism`` sweep flags it.

Both patterns are also visible to the static analyzer: ``repro.lint``
flags the global-RNG call (``det-global-rng``) and the hash-ordered pick
(``det-set-iter``), which is exactly what ``cgsim conformance run --lint``
demonstrates against these plugins.  The repo's committed
``lint-baseline.json`` absorbs these two deliberate findings so
``cgsim lint src/repro`` stays at zero, while a baseline-free run (like
the conformance static pass) still reports them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.eviction import EvictionPolicy

__all__ = ["WobblyEviction", "HashOrderedEviction"]


class WobblyEviction(EvictionPolicy):
    """Demo policy that evicts a victim drawn from the global NumPy RNG.

    Fails ``repeat_determinism`` (two fixture runs disagree) and
    ``no_global_rng`` (the run advances ``numpy.random``'s global state);
    kept as the canonical "what a broken plugin looks like" example for
    ``docs/conformance.md`` and the conformance test suite.
    """

    name = "wobbly_demo"

    def victim(self, cache) -> Optional[str]:
        candidates = cache.evictable()
        if not candidates:
            return None
        return candidates[int(np.random.rand() * len(candidates))]


class HashOrderedEviction(EvictionPolicy):
    """Demo policy whose victim choice leaks Python hash-iteration order.

    ``set`` iteration order over strings depends on ``PYTHONHASHSEED``, so
    this policy is perfectly repeatable inside one interpreter and still
    fails ``hashseed_determinism``: the subprocess sweep recomputes the
    behaviour digest under several hash seeds and watches it change.
    """

    name = "hash_ordered_demo"

    def victim(self, cache) -> Optional[str]:
        candidates = set(cache.evictable())
        if not candidates:
            return None
        return next(iter(candidates))
