"""Replica-placement strategy plugin family.

Before a data-aware run starts, every shared dataset needs initial replicas
somewhere on the grid; *where* those replicas land decides how much WAN
traffic the workload generates.  A :class:`ReplicationStrategy` makes that
decision from a :class:`PlacementContext` (sites, optional platform routes,
optional per-dataset demand) and returns the placement mapping.  Strategies
are plugins of the ``"replication"`` family, so scenario packs select them
by name and users can ship their own as ``"module.path:ClassName"``.

All bundled strategies are deterministic: they iterate datasets in sorted
order and break every tie by site name, so a pack produces bit-identical
placements across runs and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.plugins.registry import register_family, register_plugin
from repro.utils.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.platform import Platform

__all__ = [
    "PlacementContext",
    "ReplicationStrategy",
    "StaticNReplication",
    "PopularityReplication",
    "TopologyAwareReplication",
]


@dataclass
class PlacementContext:
    """Everything a replication strategy may consult when placing replicas.

    ``sites`` is the candidate site list (registration order); ``platform``
    (when available) exposes inter-site routes for topology-aware placement;
    ``demand`` maps each dataset to per-site read counts derived from the
    workload, which popularity-driven strategies use; ``seed`` feeds any
    strategy that wants controlled randomness.
    """

    sites: Sequence[str]
    platform: Optional["Platform"] = None
    demand: Dict[str, Dict[str, int]] = field(default_factory=dict)
    seed: int = 0

    def popularity(self, dataset: str) -> int:
        """Total demand (reads across all sites) recorded for ``dataset``."""
        return sum(self.demand.get(dataset, {}).values())


class ReplicationStrategy(abc.ABC):
    """Base class every replica-placement plugin inherits from.

    Subclasses implement :meth:`place`, mapping each dataset to the ordered
    list of sites that receive an initial replica.  Returned site lists must
    be non-empty, duplicate-free subsets of ``context.sites``; the data
    manager registers a pinned, eviction-exempt replica at each.
    """

    #: Registry name; stamped by :func:`repro.plugins.registry.register_plugin`.
    name: str = "custom"

    def __init__(self, **options) -> None:
        #: Free-form options from the configuration (kept for introspection).
        self.options = dict(options)

    @abc.abstractmethod
    def place(
        self, dataset_sizes: Dict[str, float], context: PlacementContext
    ) -> Dict[str, List[str]]:
        """Return the placement: dataset name -> sites receiving a replica."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} options={self.options}>"


register_family("replication", ReplicationStrategy)


def _check_copies(copies: int) -> int:
    if not isinstance(copies, int) or isinstance(copies, bool) or copies < 1:
        raise SchedulingError(f"replication copies must be a positive integer, got {copies!r}")
    return copies


@register_plugin("replication", "static_n")
class StaticNReplication(ReplicationStrategy):
    """Exactly N copies per dataset, round-robin across the site list.

    Dataset *i* (in sorted-name order) gets its first copy at site
    ``i mod len(sites)`` and the remaining copies at the following sites, so
    replicas -- and therefore the initial load -- spread evenly over the
    grid regardless of dataset count.  ``copies`` (default 2) is clamped to
    the site count.
    """

    def __init__(self, copies: int = 2, **options) -> None:
        super().__init__(copies=copies, **options)
        self.copies = _check_copies(copies)

    def place(
        self, dataset_sizes: Dict[str, float], context: PlacementContext
    ) -> Dict[str, List[str]]:
        sites = list(context.sites)
        if not sites:
            raise SchedulingError("no sites to place replicas on")
        k = min(self.copies, len(sites))
        placement: Dict[str, List[str]] = {}
        for index, dataset in enumerate(sorted(dataset_sizes)):
            placement[dataset] = [sites[(index + offset) % len(sites)] for offset in range(k)]
        return placement


@register_plugin("replication", "popularity")
class PopularityReplication(ReplicationStrategy):
    """Demand-proportional replica counts, placed where the demand is.

    The most-read half of the datasets (by total demand in
    ``context.demand``) receives ``max_copies`` replicas, the rest
    ``min_copies``; each dataset's replicas go to the sites that read it
    most (ties by name), falling back to round-robin for datasets nobody
    reads.  This mimics dynamic data placement: popular data is spread wide,
    cold data kept minimal.
    """

    def __init__(self, min_copies: int = 1, max_copies: int = 3, **options) -> None:
        super().__init__(min_copies=min_copies, max_copies=max_copies, **options)
        self.min_copies = _check_copies(min_copies)
        self.max_copies = _check_copies(max_copies)
        if self.max_copies < self.min_copies:
            raise SchedulingError("max_copies must be >= min_copies")

    def place(
        self, dataset_sizes: Dict[str, float], context: PlacementContext
    ) -> Dict[str, List[str]]:
        sites = list(context.sites)
        if not sites:
            raise SchedulingError("no sites to place replicas on")
        names = sorted(dataset_sizes)
        # Median total demand separates "popular" from "cold" datasets.
        totals = sorted(context.popularity(name) for name in names)
        median = totals[len(totals) // 2] if totals else 0
        placement: Dict[str, List[str]] = {}
        for index, dataset in enumerate(names):
            popular = context.popularity(dataset) > median
            k = min(self.max_copies if popular else self.min_copies, len(sites))
            by_site = context.demand.get(dataset, {})
            ranked = sorted(
                (site for site in sites if by_site.get(site, 0) > 0),
                key=lambda site: (-by_site.get(site, 0), site),
            )
            chosen = ranked[:k]
            cursor = index
            while len(chosen) < k:  # cold datasets: deterministic round-robin fill
                candidate = sites[cursor % len(sites)]
                if candidate not in chosen:
                    chosen.append(candidate)
                cursor += 1
            placement[dataset] = chosen
        return placement


@register_plugin("replication", "topology_aware")
class TopologyAwareReplication(ReplicationStrategy):
    """Spread first copies, park extra copies at the best-connected hubs.

    Each dataset's first replica round-robins across the grid (locality for
    somebody, load spread for everybody); the remaining ``copies - 1``
    replicas go to the sites with the lowest mean route latency to the rest
    of the grid -- the topological hubs any site can fetch from cheaply.
    Without a platform in the context the strategy degrades to
    :class:`StaticNReplication` behaviour.
    """

    def __init__(self, copies: int = 2, **options) -> None:
        super().__init__(copies=copies, **options)
        self.copies = _check_copies(copies)

    def _hubs(self, context: PlacementContext) -> List[str]:
        sites = list(context.sites)
        if context.platform is None or len(sites) < 2:
            return sites
        def mean_latency(site: str) -> float:
            total = 0.0
            for other in sites:
                if other != site:
                    total += context.platform.route(site, other).latency
            return total / (len(sites) - 1)

        return sorted(sites, key=lambda site: (mean_latency(site), site))

    def place(
        self, dataset_sizes: Dict[str, float], context: PlacementContext
    ) -> Dict[str, List[str]]:
        sites = list(context.sites)
        if not sites:
            raise SchedulingError("no sites to place replicas on")
        k = min(self.copies, len(sites))
        hubs = self._hubs(context)
        placement: Dict[str, List[str]] = {}
        for index, dataset in enumerate(sorted(dataset_sizes)):
            chosen = [sites[index % len(sites)]]
            for hub in hubs:
                if len(chosen) >= k:
                    break
                if hub not in chosen:
                    chosen.append(hub)
            placement[dataset] = chosen
        return placement
