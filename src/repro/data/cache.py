"""Finite-capacity site caches with pluggable eviction.

A :class:`SiteCache` models the disk cache in front of one site's storage
element: datasets staged to the site land in the cache, later stage-ins of
the same dataset are *hits* (served locally, no WAN flow), and when the
cache is full an :class:`~repro.data.eviction.EvictionPolicy` decides which
resident dataset to drop.  Replicas placed by a replication strategy before
the run are inserted *pinned* -- they are the grid's replicas of record and
never evicted.

The cache keeps the full counter set the monitoring layer reports:
hits/misses/evictions/insertions/rejections plus bytes moved by tier
(served from cache vs. fetched over the WAN vs. evicted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.data.eviction import EvictionPolicy, LRUEviction
from repro.utils.errors import SchedulingError

__all__ = ["CacheEntry", "CacheStats", "SiteCache"]


@dataclass
class CacheEntry:
    """One dataset resident in a :class:`SiteCache`.

    Tracks the bookkeeping eviction policies rank victims by: the byte
    ``size``, the monotonic ``last_access`` sequence number, the total
    ``accesses`` count (insertion included) and whether the entry is
    ``pinned`` (a replica of record, never evictable).
    """

    dataset: str
    size: float
    pinned: bool = False
    last_access: int = 0
    accesses: int = 1


@dataclass
class CacheStats:
    """Counter snapshot of one site cache (flattened into run metrics).

    ``hits``/``misses`` count lookups, ``evictions`` policy-driven drops,
    ``insertions`` successful inserts and ``rejections`` refused ones;
    ``bytes_from_cache``/``bytes_inserted``/``bytes_evicted`` account the
    moved bytes per tier.  :meth:`to_row` flattens everything (plus the
    derived ``hit_rate``) for tables and JSON.
    """

    site: str
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    insertions: int = 0
    rejections: int = 0
    #: Misses served by piggy-backing on an in-flight fetch of the same
    #: dataset to this site (no extra WAN flow was started).
    coalesced: int = 0
    bytes_from_cache: float = 0.0
    bytes_inserted: float = 0.0
    bytes_evicted: float = 0.0

    @property
    def lookups(self) -> int:
        """Total lookups observed (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_row(self) -> dict:
        """Flatten for CSV/reporting tables."""
        return {
            "site": self.site,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "insertions": self.insertions,
            "rejections": self.rejections,
            "coalesced": self.coalesced,
            "bytes_from_cache": self.bytes_from_cache,
            "bytes_inserted": self.bytes_inserted,
            "bytes_evicted": self.bytes_evicted,
        }


class SiteCache:
    """Finite dataset cache of one site, fronting its storage element.

    Parameters
    ----------
    site:
        Name of the site (zone) this cache belongs to.
    capacity:
        Capacity in bytes (``inf`` for an unbounded cache).
    policy:
        Eviction policy instance; each cache owns its own (policies keep
        per-cache state).  Defaults to a fresh :class:`LRUEviction`.
    on_evict:
        Optional callback invoked with ``(dataset, size)`` after an entry is
        evicted; the data manager uses it to deregister the replica from the
        catalogue and release the site storage.
    """

    def __init__(
        self,
        site: str,
        capacity: float = float("inf"),
        policy: Optional[EvictionPolicy] = None,
        on_evict: Optional[Callable[[str, float], None]] = None,
    ) -> None:
        if capacity <= 0:
            raise SchedulingError(f"cache at {site!r}: capacity must be positive")
        self.site = site
        self.capacity = float(capacity)
        self.policy = policy if policy is not None else LRUEviction()
        self.on_evict = on_evict
        self._entries: Dict[str, CacheEntry] = {}
        self._used = 0.0
        self._clock = 0  # monotonic access sequence (determinism anchor)
        self.stats = CacheStats(site=site)

    # -- checkpoint support ----------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture the cache's checkpointable state: residents, usage, counters.

        Part of the :class:`repro.state.Snapshottable` protocol.  Resident
        datasets (with pin flags), occupied bytes, the deterministic access
        clock and the full :class:`CacheStats` counter set are all rebuilt
        by replaying the event stream, so this snapshot is what a restored
        run's caches are verified against.
        """
        return {
            "entries": {
                name: {"size": entry.size, "pinned": bool(entry.pinned)}
                for name, entry in sorted(self._entries.items())
            },
            "used": self._used,
            "clock": self._clock,
            "stats": self.stats.to_row(),
        }

    def restore(self, state: dict) -> None:
        """Verify the replayed cache matches a snapshot (replay-derived state).

        Residency, usage and counters are reconstructed by replay;
        ``restore`` compares them against the snapshot and raises
        :class:`~repro.utils.errors.CheckpointError` naming every divergent
        field instead of mutating the cache.
        """
        from repro.state.protocol import diff_states
        from repro.utils.errors import CheckpointError

        diffs = diff_states(state, self.snapshot())
        if diffs:
            raise CheckpointError(
                f"cache at {self.site!r} diverged during replay: " + "; ".join(diffs)
            )

    # -- introspection --------------------------------------------------------------
    @property
    def used(self) -> float:
        """Bytes currently cached."""
        return self._used

    @property
    def free(self) -> float:
        """Bytes still available."""
        return self.capacity - self._used

    def __contains__(self, dataset: str) -> bool:
        return dataset in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def datasets(self) -> List[str]:
        """Resident dataset names in insertion order."""
        return list(self._entries)

    def entry(self, dataset: str) -> CacheEntry:
        """The resident entry for ``dataset`` (raises if absent)."""
        try:
            return self._entries[dataset]
        except KeyError:
            raise SchedulingError(
                f"cache at {self.site!r} does not hold {dataset!r}"
            ) from None

    def evictable(self) -> List[str]:
        """Names of the entries the policy may evict (unpinned), in insertion order."""
        return [name for name, entry in self._entries.items() if not entry.pinned]

    # -- operations ----------------------------------------------------------------
    def lookup(self, dataset: str) -> bool:
        """Record a stage-in lookup; True (and a freshness bump) on a hit."""
        entry = self._entries.get(dataset)
        if entry is None:
            self.stats.misses += 1
            return False
        self._clock += 1
        entry.last_access = self._clock
        entry.accesses += 1
        self.stats.hits += 1
        self.stats.bytes_from_cache += entry.size
        self.policy.on_access(dataset)
        return True

    def touch(self, dataset: str) -> None:
        """Bump a resident entry's recency/frequency without hit accounting.

        Used for coalesced reads: the lookup already counted a miss, but the
        waiter did consume the entry, so eviction policies must see the
        access (no-op when the dataset is absent).
        """
        entry = self._entries.get(dataset)
        if entry is None:
            return
        self._clock += 1
        entry.last_access = self._clock
        entry.accesses += 1
        self.policy.on_access(dataset)

    def insert(self, dataset: str, size: float, pinned: bool = False) -> bool:
        """Insert ``dataset``, evicting until it fits; False when refused.

        An entry larger than the whole cache, or one the policy refuses to
        make room for, is rejected (counted in ``stats.rejections``) and the
        cache is left unchanged except for any evictions already performed.
        Re-inserting a resident dataset refreshes it (and can pin it).
        """
        size = float(size)
        if size < 0:
            raise SchedulingError("cached dataset size must be >= 0")
        existing = self._entries.get(dataset)
        if existing is not None:
            self._clock += 1
            existing.last_access = self._clock
            existing.pinned = existing.pinned or pinned
            return True
        if size > self.capacity:
            self.stats.rejections += 1
            return False
        while self._used + size > self.capacity:
            victim = self.policy.victim(self)
            # A refusal -- or an invalid victim (absent or pinned) from a
            # buggy policy -- rejects the insert; anything else would either
            # loop forever or break the pinned-replicas-survive guarantee.
            if (
                victim is None
                or victim not in self._entries
                or self._entries[victim].pinned
            ):
                self.stats.rejections += 1
                return False
            self.evict(victim)
        self._clock += 1
        self._entries[dataset] = CacheEntry(
            dataset=dataset, size=size, pinned=pinned, last_access=self._clock
        )
        self._used += size
        self.stats.insertions += 1
        self.stats.bytes_inserted += size
        self.policy.on_insert(dataset, size)
        return True

    def evict(self, dataset: str) -> None:
        """Drop ``dataset`` (policy decision or forced), firing ``on_evict``."""
        entry = self._entries.pop(dataset, None)
        if entry is None:
            return
        self._used -= entry.size
        self.stats.evictions += 1
        self.stats.bytes_evicted += entry.size
        self.policy.on_evict(dataset)
        if self.on_evict is not None:
            self.on_evict(dataset, entry.size)

    def remove(self, dataset: str) -> None:
        """Silently drop ``dataset`` without eviction accounting or callbacks."""
        entry = self._entries.pop(dataset, None)
        if entry is not None:
            self._used -= entry.size
            self.policy.on_evict(dataset)

    def __repr__(self) -> str:
        return (
            f"<SiteCache {self.site} used={self._used:g}/{self.capacity:g} "
            f"entries={len(self._entries)} policy={self.policy.name!r}>"
        )
