"""Declarative description of a run's cache/replication configuration.

:class:`DataCacheSpec` is the picklable, validation-friendly bridge between
the scenario-pack schema (the ``data.cache`` section) and the live objects:
the :class:`~repro.core.simulator.Simulator` forwards it to the
:class:`~repro.core.data_manager.DataManager`, which builds one
:class:`~repro.data.cache.SiteCache` per site from it, and the scenario
runner builds the :class:`~repro.data.replication.ReplicationStrategy` it
names to place the initial replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.data.eviction import EvictionPolicy
from repro.data.replication import ReplicationStrategy
from repro.plugins.registry import create_plugin, load_plugin_class
from repro.utils.errors import SchedulingError

__all__ = ["DataCacheSpec"]


@dataclass
class DataCacheSpec:
    """Cache + replication configuration of one data-aware run.

    ``capacity`` is the per-site cache capacity in bytes (``None`` means
    unbounded -- the pre-cache behaviour with full accounting); ``policy``
    and ``replication`` name plugins of the ``"eviction"`` and
    ``"replication"`` families (or ``"module:Class"`` specs) instantiated
    with their ``*_options``; ``prewarm`` asks the runner to pre-populate
    each site's cache with the datasets its jobs will read, turning a
    cold-start study into a warm-cache one.
    """

    capacity: Optional[float] = None
    policy: str = "lru"
    policy_options: Dict[str, Any] = field(default_factory=dict)
    replication: str = "static_n"
    replication_options: Dict[str, Any] = field(default_factory=dict)
    prewarm: bool = False

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity <= 0:
            raise SchedulingError("cache capacity must be positive (or None for unbounded)")

    def validate(self) -> None:
        """Resolve both plugin references eagerly (fail at validate time)."""
        load_plugin_class("eviction", self.policy)
        load_plugin_class("replication", self.replication)

    def build_policy(self) -> EvictionPolicy:
        """A fresh eviction-policy instance (one per site cache)."""
        return create_plugin("eviction", self.policy, **self.policy_options)

    def build_strategy(self, default_copies: Optional[int] = None) -> ReplicationStrategy:
        """The replica-placement strategy instance this spec names.

        ``default_copies`` (typically the pack's ``replication_factor``) is
        passed as the strategy's ``copies`` option when the strategy accepts
        one and ``replication_options`` does not already set it.
        """
        import inspect

        cls = load_plugin_class("replication", self.replication)
        options = dict(self.replication_options)
        if (
            default_copies is not None
            and "copies" not in options
            and "copies" in inspect.signature(cls.__init__).parameters
        ):
            options["copies"] = default_copies
        return cls(**options)

    def effective_capacity(self) -> float:
        """The per-site byte capacity as a float (``inf`` when unbounded)."""
        return float("inf") if self.capacity is None else float(self.capacity)

    def to_dict(self) -> dict:
        """JSON-friendly representation (round-trips through the pack schema)."""
        data: Dict[str, Any] = {"policy": self.policy, "replication": self.replication}
        if self.capacity is not None:
            data["capacity"] = self.capacity
        if self.policy_options:
            data["policy_options"] = dict(self.policy_options)
        if self.replication_options:
            data["replication_options"] = dict(self.replication_options)
        if self.prewarm:
            data["prewarm"] = True
        return data
