"""Cache-aware data subsystem: site caches, eviction, replica placement.

The paper's headline studies hinge on data movement -- data-aware vs naive
placement, WAN transfer overheads -- and this package turns the flat replica
catalogue of :mod:`repro.core.data_manager` into a first-class, pluggable
data layer:

* :class:`SiteCache` -- a finite-capacity dataset cache per site, fronting
  the site's storage element, with hit/miss/eviction/bytes-by-tier counters;
* :class:`EvictionPolicy` plugins (family ``"eviction"``): bundled
  :class:`LRUEviction`, :class:`LFUEviction`, :class:`SizeWeightedEviction`
  and :class:`PinnedEviction`;
* :class:`ReplicationStrategy` plugins (family ``"replication"``): bundled
  :class:`StaticNReplication`, :class:`PopularityReplication` and
  :class:`TopologyAwareReplication` decide where initial replicas land;
* :class:`DataCacheSpec` -- the declarative configuration the scenario-pack
  ``data.cache`` section validates into and the simulator consumes.

All bundled policies and strategies are deterministic (sorted iteration,
name tie-breaks, sequence-number recency), so cache studies reproduce
bit-identically across runs and ``PYTHONHASHSEED`` values.  See
``docs/plugins.md`` for the authoring guide.
"""

from repro.data.cache import CacheEntry, CacheStats, SiteCache
from repro.data.eviction import (
    EvictionPolicy,
    LFUEviction,
    LRUEviction,
    PinnedEviction,
    SizeWeightedEviction,
)
from repro.data.replication import (
    PlacementContext,
    PopularityReplication,
    ReplicationStrategy,
    StaticNReplication,
    TopologyAwareReplication,
)
from repro.data.spec import DataCacheSpec

__all__ = [
    "SiteCache",
    "CacheEntry",
    "CacheStats",
    "EvictionPolicy",
    "LRUEviction",
    "LFUEviction",
    "SizeWeightedEviction",
    "PinnedEviction",
    "ReplicationStrategy",
    "PlacementContext",
    "StaticNReplication",
    "PopularityReplication",
    "TopologyAwareReplication",
    "DataCacheSpec",
]
