"""Eviction-policy plugin family for site caches.

A :class:`~repro.data.cache.SiteCache` holds finitely many bytes; when an
insert does not fit, the cache repeatedly asks its eviction policy for a
*victim* until enough space is free (or the policy declines, in which case
the insert is refused and the dataset stays remote).  Policies are plugins
of the ``"eviction"`` family: bundled ones register by name, user policies
are referenced as ``"module.path:ClassName"``, exactly like allocation
policies.

Every policy is deterministic: ties break on the dataset name, and recency
is tracked with a per-cache monotonic sequence number rather than wall or
simulated time, so identical operation sequences produce identical eviction
orders under any ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional

from repro.plugins.registry import register_family, register_plugin

if TYPE_CHECKING:  # pragma: no cover
    from repro.data.cache import SiteCache

__all__ = [
    "EvictionPolicy",
    "LRUEviction",
    "LFUEviction",
    "SizeWeightedEviction",
    "PinnedEviction",
]


class EvictionPolicy(abc.ABC):
    """Base class every cache-eviction plugin inherits from.

    A policy is attached to exactly one :class:`~repro.data.cache.SiteCache`
    (one fresh instance per site) and observes the cache's lifecycle through
    the ``on_*`` hooks; :meth:`victim` is the single mandatory decision
    hook: given the owning cache, return the name of the entry to drop next,
    or ``None`` to refuse eviction (the insert is then rejected).

    Pinned entries are never offered as victims -- the cache filters them
    before calling :meth:`victim` via :meth:`SiteCache.evictable`.
    """

    #: Registry name; stamped by :func:`repro.plugins.registry.register_plugin`.
    name: str = "custom"

    def __init__(self, **options) -> None:
        #: Free-form options from the configuration (kept for introspection).
        self.options = dict(options)

    @abc.abstractmethod
    def victim(self, cache: "SiteCache") -> Optional[str]:
        """Name of the entry to evict next, or ``None`` to refuse."""

    # -- optional lifecycle hooks ---------------------------------------------------
    def on_insert(self, dataset: str, size: float) -> None:
        """Called after ``dataset`` enters the cache."""

    def on_access(self, dataset: str) -> None:
        """Called on every cache hit for ``dataset``."""

    def on_evict(self, dataset: str) -> None:
        """Called after ``dataset`` left the cache (evicted or removed)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} options={self.options}>"


register_family("eviction", EvictionPolicy)


@register_plugin("eviction", "lru")
class LRUEviction(EvictionPolicy):
    """Evict the least-recently-used entry.

    Recency is the cache's monotonic access sequence (insertion counts as an
    access), so the policy is fully deterministic for a given operation
    order; ties -- only possible for entries never touched after a bulk
    prewarm -- break on the dataset name.
    """

    def victim(self, cache: "SiteCache") -> Optional[str]:
        candidates = cache.evictable()
        if not candidates:
            return None
        return min(candidates, key=lambda name: (cache.entry(name).last_access, name))


@register_plugin("eviction", "lfu")
class LFUEviction(EvictionPolicy):
    """Evict the least-frequently-used entry.

    The access count includes the initial insert; ties break on the
    least-recent access and then the dataset name, so a cold entry loses to
    an equally-cold but more recently touched one.
    """

    def victim(self, cache: "SiteCache") -> Optional[str]:
        candidates = cache.evictable()
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda name: (
                cache.entry(name).accesses,
                cache.entry(name).last_access,
                name,
            ),
        )


@register_plugin("eviction", "size_weighted")
class SizeWeightedEviction(EvictionPolicy):
    """Evict the largest entry first (greatest space recovered per eviction).

    Large, rarely-reused bulk datasets are the cheapest way to make room for
    many small hot files; ties break on least-recent access then name.
    """

    def victim(self, cache: "SiteCache") -> Optional[str]:
        candidates = cache.evictable()
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda name: (
                -cache.entry(name).size,
                cache.entry(name).last_access,
                name,
            ),
        )


@register_plugin("eviction", "pinned")
class PinnedEviction(EvictionPolicy):
    """Never evict: whatever enters the cache stays (admission-controlled).

    With this policy a full cache simply refuses further inserts (the
    transfer still happens, the dataset just stays remote and the refusal is
    counted as a *rejection*), modelling a disk-resident replica store that
    operators prune manually rather than an automatic cache.
    """

    def victim(self, cache: "SiteCache") -> Optional[str]:
        return None
