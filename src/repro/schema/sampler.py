"""Draw random schema-conforming scenario packs for property testing.

:func:`sample_pack` generates structurally diverse pack mappings whose
enumerated choices (plugin names, grid kinds, optimizers, ...) are read
from the *generated schema document itself* rather than hard-coded -- so a
plugin added to the registry automatically enters the sampled space, and a
sampler/schema disagreement shows up as a failing round-trip property test
rather than silently narrowing coverage.

The Hypothesis suite in ``tests/test_schema.py`` asserts, for every sampled
pack: the subset validator accepts it, the eager
:meth:`~repro.scenarios.ScenarioPack.from_dict` accepts it, and the
re-emitted :meth:`~repro.scenarios.ScenarioPack.to_dict` canonical form
validates again and is a fixed point.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

__all__ = ["sample_pack"]


def _enum(schema: Dict[str, Any], *path: Any) -> List[Any]:
    """Walk ``path`` through the schema document and return the enum there."""
    node: Any = schema
    for step in path:
        node = node[step]
    if not isinstance(node, list):
        raise KeyError(f"no enum at {path!r}")
    return node


def _choice(rng: np.random.Generator, options: List[Any]) -> Any:
    return options[int(rng.integers(0, len(options)))]


def _maybe(rng: np.random.Generator, probability: float = 0.5) -> bool:
    return float(rng.random()) < probability


def sample_pack(schema: Dict[str, Any], rng: np.random.Generator) -> Dict[str, Any]:
    """One random scenario-pack mapping conforming to ``schema``.

    ``rng`` drives every draw, so equal seeds give equal packs (the
    Hypothesis tests shrink over the seed).  The sampled space exercises all
    three pack modes (single run, sweep, calibration), optional fault and
    data sections, unit-string and plain-number quantities, and plugin
    names pulled from the schema's registry-derived enums.
    """
    defs = schema["$defs"]
    allocation = _enum(defs, "execution", "properties", "plugin", "anyOf", 0, "enum")
    eviction = _enum(defs, "cache", "properties", "policy", "anyOf", 0, "enum")
    replication = _enum(defs, "cache", "properties", "replication", "anyOf", 0, "enum")

    pack: Dict[str, Any] = {"name": f"sampled-{int(rng.integers(0, 10**9))}"}
    if _maybe(rng, 0.3):
        pack["title"] = "Sampled property-test pack"
    if _maybe(rng, 0.2):
        pack["tags"] = ["sampled", "property-test"]

    pack["grid"] = _sample_grid(defs, rng)
    pack["workload"] = _sample_workload(defs, rng)
    pack["execution"] = _sample_execution(rng, allocation)

    mode = _choice(rng, ["single", "single", "sweep", "calibration"])
    if mode == "calibration":
        pack["calibration"] = {
            "optimizer": _choice(rng, _enum(defs, "calibration", "properties", "optimizer", "enum")),
            "budget": int(rng.integers(1, 10)),
            "mode": _choice(rng, _enum(defs, "calibration", "properties", "mode", "enum")),
            "seed": int(rng.integers(0, 1000)),
            "workers": int(rng.integers(0, 3)),
        }
        return pack

    if _maybe(rng, 0.4):
        pack["faults"] = _sample_faults(rng)
    if _maybe(rng, 0.4):
        pack["data"] = _sample_data(defs, rng, eviction, replication)
    if mode == "sweep":
        pack["sweep"] = _sample_sweep(rng, allocation, has_data="data" in pack)
    return pack


def _sample_grid(defs: Dict[str, Any], rng: np.random.Generator) -> Dict[str, Any]:
    # The "files" kind needs config files on disk, so sampled packs stick to
    # the generated sources the validator can check self-contained.
    kind = _choice(rng, ["synthetic", "synthetic", "wlcg"])
    grid: Dict[str, Any] = {"kind": kind, "sites": int(rng.integers(1, 12))}
    if kind == "synthetic":
        grid["layout"] = _choice(rng, _enum(defs, "grid", "properties", "layout", "enum"))
        grid["seed"] = int(rng.integers(0, 1000))
    return grid


def _sample_workload(defs: Dict[str, Any], rng: np.random.Generator) -> Dict[str, Any]:
    generator = _choice(rng, _enum(defs, "workload", "properties", "generator", "enum"))
    workload: Dict[str, Any] = {"generator": generator, "seed": int(rng.integers(0, 1000))}
    if generator == "synthetic" and _maybe(rng, 0.3):
        workload["per_site_jobs"] = int(rng.integers(1, 50))
    else:
        workload["jobs"] = int(rng.integers(1, 400))
    if _maybe(rng, 0.5):
        spec: Dict[str, Any] = {}
        if _maybe(rng):
            spec["multicore_fraction"] = round(float(rng.uniform(0.0, 1.0)), 3)
        if _maybe(rng):
            spec["walltime_sigma"] = round(float(rng.uniform(0.0, 2.0)), 3)
        if _maybe(rng):
            spec["arrival_rate"] = round(float(rng.uniform(0.01, 5.0)), 4)
        if _maybe(rng, 0.3):
            spec["multicore_cores"] = int(rng.integers(2, 16))
        if spec:
            workload["spec"] = spec
    if generator == "panda" and _maybe(rng, 0.5):
        workload["mean_task_size"] = float(rng.integers(1, 60))
    return workload


def _sample_execution(rng: np.random.Generator, allocation: List[str]) -> Dict[str, Any]:
    execution: Dict[str, Any] = {
        "plugin": _choice(rng, allocation),
        "seed": int(rng.integers(0, 1000)),
    }
    if _maybe(rng, 0.4):
        # Quantities appear both as plain seconds and as unit strings.
        execution["dispatch_interval"] = (
            f"{int(rng.integers(1, 10))}m" if _maybe(rng) else round(float(rng.uniform(0, 30)), 2)
        )
    if _maybe(rng, 0.3):
        execution["max_simulation_time"] = f"{int(rng.integers(1, 48))}h"
    if _maybe(rng, 0.3):
        execution["max_retries"] = int(rng.integers(0, 4))
    if _maybe(rng, 0.2):
        execution["monitoring"] = {
            "snapshot_interval": float(_choice(rng, [0.0, 60.0, 300.0])),
            "detail": _choice(rng, ["full", "aggregate"]),
        }
    if _maybe(rng, 0.2):
        execution["stop"] = (
            {"max_finished_jobs": int(rng.integers(1, 200))}
            if _maybe(rng)
            else {"metric": "failure_rate", "op": ">=", "value": round(float(rng.uniform(0, 1)), 3)}
        )
    return execution


def _sample_faults(rng: np.random.Generator) -> Dict[str, Any]:
    faults: Dict[str, Any] = {}
    if _maybe(rng, 0.7):
        faults["job_failures"] = {
            "default_rate": round(float(rng.uniform(0.0, 1.0)), 3),
            "seed": int(rng.integers(0, 100)),
        }
    if _maybe(rng, 0.4):
        start = int(rng.integers(0, 5000))
        faults["outages"] = [
            {"site": f"site_{int(rng.integers(0, 5)):02d}",
             "start": start, "end": start + int(rng.integers(1, 5000))}
        ]
    if _maybe(rng, 0.3):
        faults["outage_model"] = {
            "mean_time_between_failures": f"{int(rng.integers(1, 72))}h",
            "mean_time_to_repair": f"{int(rng.integers(1, 12))}h",
            "horizon": f"{int(rng.integers(1, 14))}d",
            "seed": int(rng.integers(0, 100)),
        }
    if not faults:
        faults["job_failures"] = {"default_rate": 0.05}
    return faults


def _sample_data(defs: Dict[str, Any], rng: np.random.Generator,
                 eviction: List[str], replication: List[str]) -> Dict[str, Any]:
    data: Dict[str, Any] = {
        "datasets": int(rng.integers(1, 30)),
        "dataset_size": f"{int(rng.integers(1, 200))}GB" if _maybe(rng) else float(rng.integers(1, 200)) * 1e9,
        "replication_factor": int(rng.integers(1, 4)),
        "seed": int(rng.integers(0, 100)),
    }
    if _maybe(rng, 0.4):
        data["assignment"] = "zipf"
        data["zipf_exponent"] = round(float(rng.uniform(0.5, 2.5)), 3)
    if _maybe(rng, 0.6):
        cache: Dict[str, Any] = {
            "policy": _choice(rng, eviction),
            "replication": _choice(rng, replication),
        }
        if _maybe(rng, 0.7):
            cache["capacity"] = f"{int(rng.integers(10, 500))}GB"
        if _maybe(rng, 0.3):
            cache["prewarm"] = True
        data["cache"] = cache
    return data


def _sample_sweep(rng: np.random.Generator, allocation: List[str],
                  has_data: bool) -> Dict[str, Any]:
    axes: Dict[str, List[Any]] = {}
    kind = _choice(rng, ["plugin", "jobs", "sites", "seed"] + (["datasets"] if has_data else []))
    if kind == "plugin":
        count = min(len(allocation), 2 + int(rng.integers(0, 2)))
        start = int(rng.integers(0, max(1, len(allocation) - count + 1)))
        axes["execution.plugin"] = list(allocation[start:start + count])
    elif kind == "jobs":
        axes["workload.jobs"] = sorted({int(rng.integers(1, 400)) for _ in range(3)})
    elif kind == "sites":
        axes["grid.sites"] = sorted({int(rng.integers(1, 12)) for _ in range(2)})
    elif kind == "datasets":
        axes["data.datasets"] = sorted({int(rng.integers(1, 30)) for _ in range(2)})
    else:
        axes["execution.seed"] = [int(s) for s in rng.integers(0, 1000, size=2)]
    sweep: Dict[str, Any] = {"axes": axes, "replications": int(rng.integers(1, 3))}
    if _maybe(rng, 0.3):
        sweep["workers"] = int(rng.integers(0, 3))
    if _maybe(rng, 0.3):
        sweep["metrics"] = ["makespan", "throughput"]
    return sweep
